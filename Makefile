# Convenience targets for the Knock-and-Talk reproduction.

PYTHON ?= python

# Campaign artefacts audited by `make fsck` (override on the command line).
DB ?= crawl.db
NETLOG_DIR ?= netlogs

# Self-test service defaults (make serve PORT=9000 SERVE_DB=jobs.sqlite).
PORT ?= 8734
SERVE_DB ?= serve-jobs.sqlite

.PHONY: install test lint bench bench-quick obs-bench pipeline-bench pipeline-throughput shard-bench serve serve-bench webrtc-bench chaos-conformance report validate fsck examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

lint:             ## style/correctness lint (pip install ruff)
	$(PYTHON) -m ruff check src/ tests/ benchmarks/ examples/

bench:            ## full-scale: regenerates every paper table and figure
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:      ## 1%-filler variant for fast iteration
	REPRO_BENCH_SCALE=0.01 $(PYTHON) -m pytest benchmarks/ --benchmark-only

obs-bench:        ## observability ablation: results invariant, overhead <= 5%
	$(PYTHON) -m pytest benchmarks/test_ablation_observability.py --benchmark-disable -q

pipeline-bench:   ## streaming-pipeline ablation: byte-invariant, bounded memory
	$(PYTHON) -m pytest benchmarks/test_ablation_pipeline.py --benchmark-disable -q

pipeline-throughput: ## dual-format codec matrix: binary parse >= 3x JSON, BENCH_pipeline.json
	$(PYTHON) -m pytest benchmarks/test_pipeline_throughput.py --benchmark-disable -q

shard-bench:      ## sharded-fabric ablation: scaling curve + kill-9 chaos, byte-identical merge
	$(PYTHON) -m pytest benchmarks/test_ablation_sharding.py --benchmark-disable -q

serve:            ## run the local-traffic self-test daemon (make serve PORT=9000)
	$(PYTHON) -m repro.cli serve --port $(PORT) --db $(SERVE_DB) --resume

serve-bench:      ## serve ablation: closed-loop chaos load, byte-exact reports, crash restart
	$(PYTHON) -m pytest benchmarks/test_ablation_serve.py --benchmark-disable -q

webrtc-bench:     ## webrtc ablation: era leak tables byte-stable, channel-off overhead <= 1%
	$(PYTHON) -m pytest benchmarks/test_ablation_webrtc.py --benchmark-disable -q

chaos-conformance: ## coverage-guided conformance sweep: exit 1 on uncovered seams or violations
	mkdir -p benchmarks/output
	$(PYTHON) -m repro.cli chaos run \
		--report benchmarks/output/chaos-coverage.json \
		--repro-dir benchmarks/output/chaos-repros

report:
	$(PYTHON) -m repro.cli report -o report.txt

validate:
	$(PYTHON) -m repro.cli validate

fsck:             ## audit campaign data integrity (make fsck DB=crawl.db NETLOG_DIR=netlogs)
	$(PYTHON) -m repro.cli fsck --db $(DB) $(if $(wildcard $(NETLOG_DIR)),--netlog-dir $(NETLOG_DIR))

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f >/dev/null || exit 1; done

clean:
	rm -rf benchmarks/output .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
