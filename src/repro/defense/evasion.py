"""The anti-abuse arms race: port-moving evasion (paper §5.1).

The paper hypothesises that "attackers could evade this detection with
relative ease by modifying the ports they operate on" — e.g. a bot's
remote-control server on a non-standard port — and that the resulting
arms race tilts toward attackers because web-based scans are fully
visible to them.  This module makes the hypothesis measurable:

* :class:`AttackerHost` — a machine running remote-control/malware
  services, with a configurable port-selection strategy;
* :func:`detection_rate` — how often a fixed scan profile (the
  ThreatMetrix / BIG-IP port lists, which any visitor can read out of
  the page source) still flags such hosts.

The arms race cuts the other way too: the *sites* running scans can
fingerprint visitors for automation tells (a headless UA string, an
empty plugin list, the webdriver flag) and withhold the scan from
anything that looks like a measurement crawler — which is exactly the
blind spot a study like this one has to bound.  :class:`VisitorProfile`,
:class:`FingerprintGate` and :func:`fingerprinting_sweep` quantify the
visibility gap between what a crawler observes and what real users
experience as gating adoption spreads.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..browser.network import LocalServiceTable, SimulatedNetwork


class PortStrategy(enum.Enum):
    """How an attacker-controlled service picks its listening port."""

    STANDARD = "standard"  # default ports — what the scanners expect
    SHIFTED = "shifted"  # standard + fixed offset (lazy evasion)
    RANDOMIZED = "randomized"  # uniformly random ephemeral port


@dataclass(frozen=True, slots=True)
class AttackerHost:
    """A compromised/remote-controlled machine."""

    label: str
    services: tuple[int, ...]  # the *standard* ports of what it runs
    strategy: PortStrategy = PortStrategy.STANDARD
    seed: int = 0

    def listening_ports(self) -> frozenset[int]:
        """Actual ports after applying the evasion strategy."""
        if self.strategy is PortStrategy.STANDARD:
            return frozenset(self.services)
        if self.strategy is PortStrategy.SHIFTED:
            return frozenset(
                port + 10_000 if port + 10_000 <= 65_535 else port - 10_000
                for port in self.services
            )
        rng = random.Random(f"{self.label}:{self.seed}")
        return frozenset(
            rng.randrange(49_152, 65_536) for _ in self.services
        )

    def service_table(self) -> LocalServiceTable:
        table = LocalServiceTable()
        for port in self.listening_ports():
            table.open_service("127.0.0.1", port)
        return table


def host_is_flagged(host: AttackerHost, scan_ports: Sequence[int]) -> bool:
    """Would a scan of ``scan_ports`` observe any open port on the host?"""
    network = SimulatedNetwork(services=host.service_table())
    return any(
        network.connect("127.0.0.1", port).ok for port in scan_ports
    )


def detection_rate(
    hosts: Iterable[AttackerHost], scan_ports: Sequence[int]
) -> float:
    """Fraction of attacker hosts a fixed scan profile still flags."""
    hosts = list(hosts)
    if not hosts:
        return 0.0
    flagged = sum(1 for host in hosts if host_is_flagged(host, scan_ports))
    return flagged / len(hosts)


@dataclass(frozen=True, slots=True)
class EvasionSweepPoint:
    """One point of the evasion ablation: x% of attackers evade."""

    evading_fraction: float
    detection_rate: float


def evasion_sweep(
    *,
    population: int,
    services: tuple[int, ...],
    scan_ports: Sequence[int],
    strategy: PortStrategy = PortStrategy.RANDOMIZED,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    seed: int = 3,
) -> list[EvasionSweepPoint]:
    """Sweep the fraction of attackers that adopt an evasion strategy.

    Models the arms race's trajectory: as word spreads that a visible,
    fixed scan profile exists, attackers move ports and the profile's
    detection rate collapses toward its false-negative floor.
    """
    if population <= 0:
        raise ValueError("population must be positive")
    points = []
    for fraction in fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fractions must be probabilities")
        evading = int(round(population * fraction))
        hosts = [
            AttackerHost(
                label=f"bot-{index:04d}",
                services=services,
                strategy=strategy if index < evading else PortStrategy.STANDARD,
                seed=seed,
            )
            for index in range(population)
        ]
        points.append(
            EvasionSweepPoint(
                evading_fraction=fraction,
                detection_rate=detection_rate(hosts, scan_ports),
            )
        )
    return points


# -- automation fingerprinting: scans hidden from crawlers -------------------


class AutomationSignal(enum.Enum):
    """A visitor trait a fingerprinting script reads as "this is a bot"."""

    HEADLESS_UA = "headless-ua"  # "HeadlessChrome" in the UA string
    MISSING_PLUGINS = "missing-plugins"  # navigator.plugins is empty
    WEBDRIVER_FLAG = "webdriver-flag"  # navigator.webdriver === true


@dataclass(frozen=True, slots=True)
class VisitorProfile:
    """What a page's fingerprinting script can read about a visitor."""

    label: str
    user_agent: str
    plugins: tuple[str, ...] = ()
    webdriver: bool = False

    def signals(self) -> frozenset[AutomationSignal]:
        """The automation tells this profile exposes."""
        found = set()
        if "HeadlessChrome" in self.user_agent:
            found.add(AutomationSignal.HEADLESS_UA)
        if not self.plugins:
            found.add(AutomationSignal.MISSING_PLUGINS)
        if self.webdriver:
            found.add(AutomationSignal.WEBDRIVER_FLAG)
        return frozenset(found)


_CHROME_86_UA = (
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
    "(KHTML, like Gecko) Chrome/86.0.4240.75 Safari/537.36"
)

#: An ordinary interactive Chrome 86 session (the paper's crawl era).
REAL_USER_PROFILE = VisitorProfile(
    label="real-user",
    user_agent=_CHROME_86_UA,
    plugins=("Chrome PDF Plugin", "Chrome PDF Viewer", "Native Client"),
)

#: An out-of-the-box headless measurement crawler: every tell exposed.
HEADLESS_CRAWLER_PROFILE = VisitorProfile(
    label="headless-crawler",
    user_agent=_CHROME_86_UA.replace("Chrome/", "HeadlessChrome/"),
    webdriver=True,
)

#: A crawler with UA and plugin spoofing applied but the webdriver flag
#: left exposed — the common half-measure stealth configuration.
STEALTH_CRAWLER_PROFILE = VisitorProfile(
    label="stealth-crawler",
    user_agent=_CHROME_86_UA,
    plugins=("Chrome PDF Plugin", "Chrome PDF Viewer", "Native Client"),
    webdriver=True,
)


@dataclass(frozen=True, slots=True)
class FingerprintGate:
    """Site-side gate: fire the local scan only for human-looking visitors.

    ``max_signals`` is the site's tolerance: 0 means any automation tell
    suppresses the scan; higher values model sloppier gates that only
    react to multiple corroborating signals.
    """

    max_signals: int = 0

    def scan_fires(self, profile: VisitorProfile) -> bool:
        return len(profile.signals()) <= self.max_signals


@dataclass(frozen=True, slots=True)
class FingerprintSweepPoint:
    """One point of the fingerprinting ablation: x% of sites gate."""

    gating_fraction: float
    #: Fraction of scanning sites whose scan a crawler visit observes.
    crawler_observed_rate: float
    #: Fraction of scanning sites whose scan a real user experiences.
    user_observed_rate: float

    @property
    def visibility_gap(self) -> float:
        """How much of the real-user scan surface the crawler misses."""
        return self.user_observed_rate - self.crawler_observed_rate


def fingerprinting_sweep(
    *,
    sites: int,
    crawler: VisitorProfile = HEADLESS_CRAWLER_PROFILE,
    user: VisitorProfile = REAL_USER_PROFILE,
    gate: FingerprintGate = FingerprintGate(),
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> list[FingerprintSweepPoint]:
    """Sweep the fraction of scanning sites that adopt fingerprint gating.

    Models the measurement-validity half of the arms race: as sites gate
    their scans on automation tells, a headless crawl's observed scan
    rate collapses while real users keep being scanned — so the study's
    leak tables become a *lower bound*.  Deterministic by construction
    (the first ``round(sites * fraction)`` sites gate).
    """
    if sites <= 0:
        raise ValueError("sites must be positive")
    points = []
    for fraction in fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fractions must be probabilities")
        gating = int(round(sites * fraction))
        crawler_hits = 0
        user_hits = 0
        for index in range(sites):
            gated = index < gating
            if not gated or gate.scan_fires(crawler):
                crawler_hits += 1
            if not gated or gate.scan_fires(user):
                user_hits += 1
        points.append(
            FingerprintSweepPoint(
                gating_fraction=fraction,
                crawler_observed_rate=crawler_hits / sites,
                user_observed_rate=user_hits / sites,
            )
        )
    return points
