"""The anti-abuse arms race: port-moving evasion (paper §5.1).

The paper hypothesises that "attackers could evade this detection with
relative ease by modifying the ports they operate on" — e.g. a bot's
remote-control server on a non-standard port — and that the resulting
arms race tilts toward attackers because web-based scans are fully
visible to them.  This module makes the hypothesis measurable:

* :class:`AttackerHost` — a machine running remote-control/malware
  services, with a configurable port-selection strategy;
* :func:`detection_rate` — how often a fixed scan profile (the
  ThreatMetrix / BIG-IP port lists, which any visitor can read out of
  the page source) still flags such hosts.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..browser.network import LocalServiceTable, SimulatedNetwork


class PortStrategy(enum.Enum):
    """How an attacker-controlled service picks its listening port."""

    STANDARD = "standard"  # default ports — what the scanners expect
    SHIFTED = "shifted"  # standard + fixed offset (lazy evasion)
    RANDOMIZED = "randomized"  # uniformly random ephemeral port


@dataclass(frozen=True, slots=True)
class AttackerHost:
    """A compromised/remote-controlled machine."""

    label: str
    services: tuple[int, ...]  # the *standard* ports of what it runs
    strategy: PortStrategy = PortStrategy.STANDARD
    seed: int = 0

    def listening_ports(self) -> frozenset[int]:
        """Actual ports after applying the evasion strategy."""
        if self.strategy is PortStrategy.STANDARD:
            return frozenset(self.services)
        if self.strategy is PortStrategy.SHIFTED:
            return frozenset(
                port + 10_000 if port + 10_000 <= 65_535 else port - 10_000
                for port in self.services
            )
        rng = random.Random(f"{self.label}:{self.seed}")
        return frozenset(
            rng.randrange(49_152, 65_536) for _ in self.services
        )

    def service_table(self) -> LocalServiceTable:
        table = LocalServiceTable()
        for port in self.listening_ports():
            table.open_service("127.0.0.1", port)
        return table


def host_is_flagged(host: AttackerHost, scan_ports: Sequence[int]) -> bool:
    """Would a scan of ``scan_ports`` observe any open port on the host?"""
    network = SimulatedNetwork(services=host.service_table())
    return any(
        network.connect("127.0.0.1", port).ok for port in scan_ports
    )


def detection_rate(
    hosts: Iterable[AttackerHost], scan_ports: Sequence[int]
) -> float:
    """Fraction of attacker hosts a fixed scan profile still flags."""
    hosts = list(hosts)
    if not hosts:
        return 0.0
    flagged = sum(1 for host in hosts if host_is_flagged(host, scan_ports))
    return flagged / len(hosts)


@dataclass(frozen=True, slots=True)
class EvasionSweepPoint:
    """One point of the evasion ablation: x% of attackers evade."""

    evading_fraction: float
    detection_rate: float


def evasion_sweep(
    *,
    population: int,
    services: tuple[int, ...],
    scan_ports: Sequence[int],
    strategy: PortStrategy = PortStrategy.RANDOMIZED,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    seed: int = 3,
) -> list[EvasionSweepPoint]:
    """Sweep the fraction of attackers that adopt an evasion strategy.

    Models the arms race's trajectory: as word spreads that a visible,
    fixed scan profile exists, attackers move ports and the profile's
    detection rate collapses toward its false-negative floor.
    """
    if population <= 0:
        raise ValueError("population must be positive")
    points = []
    for fraction in fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fractions must be probabilities")
        evading = int(round(population * fraction))
        hosts = [
            AttackerHost(
                label=f"bot-{index:04d}",
                services=services,
                strategy=strategy if index < evading else PortStrategy.STANDARD,
                seed=seed,
            )
            for index in range(population)
        ]
        points.append(
            EvasionSweepPoint(
                evading_fraction=fraction,
                detection_rate=detection_rate(hosts, scan_ports),
            )
        )
    return points
