"""Defenses against web-based local traffic: Private Network Access (§5.3)."""

from .evaluate import (
    ClassImpact,
    PolicyEvaluation,
    evaluate_policy,
    native_app_directory,
)
from .devlint import LintFinding, LintReport, LintSeverity, lint_website
from .evasion import (
    AttackerHost,
    EvasionSweepPoint,
    PortStrategy,
    detection_rate,
    evasion_sweep,
    host_is_flagged,
)
from .pna import (
    AddressSpace,
    Decision,
    PnaServiceDirectory,
    PrivateNetworkAccessPolicy,
    Verdict,
    is_private_network_request,
)

__all__ = [
    "LintFinding",
    "LintReport",
    "LintSeverity",
    "lint_website",
    "AttackerHost",
    "EvasionSweepPoint",
    "PortStrategy",
    "detection_rate",
    "evasion_sweep",
    "host_is_flagged",
    "ClassImpact",
    "PolicyEvaluation",
    "evaluate_policy",
    "native_app_directory",
    "AddressSpace",
    "Decision",
    "PnaServiceDirectory",
    "PrivateNetworkAccessPolicy",
    "Verdict",
    "is_private_network_request",
]
