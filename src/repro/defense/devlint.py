"""Developer-error linting — the §5.4 recommendation, as a tool.

The paper closes its developer-error analysis with advice: "we recommend
that web developers check for such local network behavior through either
analyzing the website code base or examining network traffic generated
by the website during testing … different user-agents should be
evaluated, as we observed different behavior across OSes."

This linter does exactly that for a :class:`~repro.web.website.Website`
(or any set of page scripts): it plans the site's requests under *every*
OS, flags everything locally bound, classifies each finding, and says
what to do about it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from ..browser.page import PageScript, ScriptContext
from ..browser.useragent import ALL_OSES, identity_for
from ..core.addresses import Locality, TargetParseError, parse_target
from ..core.classifier import BehaviorClassifier
from ..core.detector import LocalRequest
from ..core.signatures import BehaviorClass
from ..web.website import Website


class LintSeverity(enum.Enum):
    """How urgently a flagged request needs developer attention."""

    ERROR = "error"  # broken functionality: dev-remnant fetches
    WARNING = "warning"  # unexplained local traffic
    INFO = "info"  # intentional (anti-abuse vendor, native app)


_ADVICE: dict[BehaviorClass, tuple[LintSeverity, str]] = {
    BehaviorClass.DEVELOPER_ERROR: (
        LintSeverity.ERROR,
        "development remnant: point the URL at the public server or "
        "remove the fetch",
    ),
    BehaviorClass.UNKNOWN: (
        LintSeverity.WARNING,
        "unexplained local traffic: identify the responsible script "
        "before shipping",
    ),
    BehaviorClass.INTERNAL_ATTACK: (
        LintSeverity.WARNING,
        "LAN sweep detected: this should not ship from a legitimate site",
    ),
    BehaviorClass.FRAUD_DETECTION: (
        LintSeverity.INFO,
        "third-party anti-fraud scan: intentional, but document the "
        "vendor and consider Private Network Access readiness",
    ),
    BehaviorClass.BOT_DETECTION: (
        LintSeverity.INFO,
        "third-party bot-defense scan: intentional, but document the "
        "vendor and consider Private Network Access readiness",
    ),
    BehaviorClass.NATIVE_APPLICATION: (
        LintSeverity.INFO,
        "native-application integration: ensure the app acknowledges "
        "Private Network Access preflights",
    ),
}


@dataclass(frozen=True, slots=True)
class LintFinding:
    """One flagged local request."""

    url: str
    locality: Locality
    oses: tuple[str, ...]
    page: str
    initiator: str | None
    behavior: BehaviorClass
    severity: LintSeverity
    advice: str

    def render(self) -> str:
        oses = ",".join(self.oses)
        return (
            f"{self.severity.value.upper():<8} {self.url}  "
            f"[page {self.page}; OS {oses}; {self.behavior.value}] — "
            f"{self.advice}"
        )


@dataclass(slots=True)
class LintReport:
    """All findings for one site."""

    domain: str
    findings: list[LintFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def count(self, severity: LintSeverity) -> int:
        return sum(1 for f in self.findings if f.severity is severity)

    def render(self) -> str:
        if self.clean:
            return f"{self.domain}: no local network requests found"
        lines = [
            f"{self.domain}: {len(self.findings)} local request(s) — "
            f"{self.count(LintSeverity.ERROR)} error(s), "
            f"{self.count(LintSeverity.WARNING)} warning(s), "
            f"{self.count(LintSeverity.INFO)} informational"
        ]
        lines.extend(f"  {finding.render()}" for finding in self.findings)
        return "\n".join(lines)


def _plan_local_urls(
    scripts: Sequence[PageScript], page_url: str
) -> dict[str, tuple[set[str], str | None]]:
    """url -> (OSes that would fire it, initiator), across all OSes.

    The per-OS sweep is the paper's §5.4 point: a lint run under one
    user-agent misses OS-conditional remnants.
    """
    planned: dict[str, tuple[set[str], str | None]] = {}
    for os_name in ALL_OSES:
        context = ScriptContext(
            os_name=os_name,
            user_agent=identity_for(os_name).user_agent,
            page_url=page_url,
        )
        for script in scripts:
            for request in script.plan(context):
                for url in (request.url, *request.redirect_to):
                    try:
                        target = parse_target(url)
                    except TargetParseError:
                        continue
                    if not target.is_local:
                        continue
                    oses, initiator = planned.setdefault(
                        url, (set(), request.initiator or script.name)
                    )
                    oses.add(os_name)
    return planned


def lint_website(
    website: Website, *, classifier: BehaviorClassifier | None = None
) -> LintReport:
    """Lint a website's landing and internal pages for local requests."""
    classifier = classifier if classifier is not None else BehaviorClassifier()
    report = LintReport(domain=website.domain)
    pages: list[tuple[str, Sequence[PageScript]]] = [
        ("/", website.behaviors)
    ]
    pages.extend(website.internal_pages.items())

    for page_path, scripts in pages:
        planned = _plan_local_urls(scripts, website.landing_url)
        if not planned:
            continue
        # Classify the page's local traffic as a whole, then attach the
        # verdict to each URL (classification needs the full context —
        # one probe of a scan is meaningless alone).
        requests = [
            LocalRequest(
                target=parse_target(url),
                time=0.0,
                source_id=index + 1,
                initiator=initiator,
            )
            for index, (url, (_oses, initiator)) in enumerate(planned.items())
        ]
        verdict = classifier.classify(requests)
        severity, advice = _ADVICE[verdict.behavior]
        for url, (oses, initiator) in sorted(planned.items()):
            target = parse_target(url)
            report.findings.append(
                LintFinding(
                    url=url,
                    locality=target.locality,
                    oses=tuple(
                        os_name for os_name in ALL_OSES if os_name in oses
                    ),
                    page=page_path,
                    initiator=initiator,
                    behavior=verdict.behavior,
                    severity=severity,
                    advice=advice,
                )
            )
    return report
