"""Evaluate PNA policies against measured website behaviour (§5.3).

The paper's requirement for any defense: block the unwanted local traffic
(scans, developer-error leaks) while *preserving the legitimate native-
application use case*.  This module replays a campaign's findings through
a :class:`~repro.defense.pna.PrivateNetworkAccessPolicy` and reports, per
behaviour class, how many sites' local requests survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.addresses import Locality
from ..core.report import SiteFinding
from ..core.signatures import BehaviorClass
from .pna import PnaServiceDirectory, PrivateNetworkAccessPolicy


@dataclass(slots=True)
class ClassImpact:
    """Policy impact on one behaviour class."""

    behavior: BehaviorClass
    sites: int = 0
    sites_fully_blocked: int = 0
    requests: int = 0
    requests_blocked: int = 0

    @property
    def block_rate(self) -> float:
        return self.requests_blocked / self.requests if self.requests else 0.0

    @property
    def preserved_sites(self) -> int:
        return self.sites - self.sites_fully_blocked


@dataclass(slots=True)
class PolicyEvaluation:
    """Full evaluation result."""

    policy_label: str
    impacts: dict[BehaviorClass, ClassImpact] = field(default_factory=dict)

    def impact(self, behavior: BehaviorClass) -> ClassImpact:
        if behavior not in self.impacts:
            self.impacts[behavior] = ClassImpact(behavior=behavior)
        return self.impacts[behavior]

    @property
    def total_requests_blocked(self) -> int:
        return sum(i.requests_blocked for i in self.impacts.values())

    def render(self) -> str:
        lines = [
            f"PNA policy evaluation — {self.policy_label}",
            f"{'Behaviour':<22}{'sites':>6}{'fully blocked':>15}"
            f"{'requests':>10}{'blocked':>9}{'rate':>8}",
        ]
        for behavior, impact in sorted(
            self.impacts.items(), key=lambda kv: kv[0].value
        ):
            lines.append(
                f"{behavior.value:<22}{impact.sites:>6}"
                f"{impact.sites_fully_blocked:>15}{impact.requests:>10}"
                f"{impact.requests_blocked:>9}{impact.block_rate:>8.1%}"
            )
        return "\n".join(lines)


def native_app_directory(
    findings: Iterable[SiteFinding],
) -> PnaServiceDirectory:
    """A directory where every *native-application* endpoint opted in.

    Models the adoption scenario the paper calls the promising path:
    native-app vendors ship the PNA response header; scanners and stale
    dev endpoints obviously do not.
    """
    directory = PnaServiceDirectory()
    for finding in findings:
        if finding.behavior is not BehaviorClass.NATIVE_APPLICATION:
            continue
        for request in finding.requests():
            directory.opt_in(request.host, request.port)
    return directory


def evaluate_policy(
    findings: Sequence[SiteFinding],
    policy: PrivateNetworkAccessPolicy,
    *,
    label: str,
    locality: Locality | None = None,
) -> PolicyEvaluation:
    """Replay all local requests of a campaign through a policy.

    Page security is inferred from the landing scheme the campaign used
    (top-list sites crawl over https → secure; the malicious population
    crawls over http → insecure, so under PNA *all* its local traffic
    dies on rule 1).
    """
    evaluation = PolicyEvaluation(policy_label=label)
    for finding in findings:
        behavior = finding.behavior or BehaviorClass.UNKNOWN
        impact = evaluation.impact(behavior)
        requests = finding.requests(locality)
        if not requests:
            continue
        impact.sites += 1
        secure = finding.population != "malicious"
        blocked_here = 0
        for request in requests:
            decision = policy.evaluate(
                request.target, initiator_secure=secure
            )
            impact.requests += 1
            if not decision.allowed:
                impact.requests_blocked += 1
                blocked_here += 1
        if blocked_here == len(requests):
            impact.sites_fully_blocked += 1
    return evaluation
