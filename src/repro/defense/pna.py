"""Private Network Access (PNA) policy model — the §5.3 defense.

Implements the WICG "Private Network Access" proposal the paper discusses
as the promising mitigation: a document in a *more public* address space
may fetch from a *more private* one only if

1. the document was delivered over a secure channel (https/wss), and
2. a CORS preflight to the target succeeds carrying
   ``Access-Control-Request-Private-Network: true``, with the target
   responding ``Access-Control-Allow-Private-Network: true``.

The model adds the interim *prompt* mode the paper suggests (ask the user
before any locally-bound request) so policies can be compared.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..core.addresses import Locality, RequestTarget


class AddressSpace(enum.Enum):
    """The three IP address spaces of the PNA specification."""

    PUBLIC = "public"
    PRIVATE = "private"  # RFC1918 / link-local: the LAN
    LOCAL = "local"  # loopback

    @classmethod
    def of(cls, locality: Locality) -> "AddressSpace":
        if locality is Locality.LOCALHOST:
            return cls.LOCAL
        if locality is Locality.LAN:
            return cls.PRIVATE
        return cls.PUBLIC


#: Ordering from most public to most private; a request "descends" when the
#: target space is strictly more private than the initiator's.
_PRIVACY_RANK = {
    AddressSpace.PUBLIC: 0,
    AddressSpace.PRIVATE: 1,
    AddressSpace.LOCAL: 2,
}


def is_private_network_request(
    initiator_space: AddressSpace, target_space: AddressSpace
) -> bool:
    """True when the request crosses into a more private address space."""
    return _PRIVACY_RANK[target_space] > _PRIVACY_RANK[initiator_space]


class Verdict(enum.Enum):
    ALLOWED = "allowed"
    BLOCKED_INSECURE_CONTEXT = "blocked: initiator not a secure context"
    BLOCKED_PREFLIGHT_FAILED = "blocked: PNA preflight not acknowledged"
    BLOCKED_USER_DENIED = "blocked: user denied the prompt"


@dataclass(frozen=True, slots=True)
class Decision:
    """Outcome of evaluating one request under a policy."""

    verdict: Verdict
    preflight_sent: bool = False

    @property
    def allowed(self) -> bool:
        return self.verdict is Verdict.ALLOWED


@dataclass(slots=True)
class PnaServiceDirectory:
    """Which local services acknowledge PNA preflights.

    Adoption is the crux of the paper's discussion: the policy preserves
    exactly the local endpoints whose owners ship the response header.
    Keys are (host, port); ``opt_in(host, port)`` marks a service as
    PNA-aware.
    """

    acknowledged: set[tuple[str, int]] = field(default_factory=set)

    def opt_in(self, host: str, port: int) -> None:
        self.acknowledged.add((host.lower(), port))

    def acknowledges(self, host: str, port: int) -> bool:
        return (host.lower(), port) in self.acknowledged


@dataclass(slots=True)
class PrivateNetworkAccessPolicy:
    """The WICG proposal, with a switchable interim prompt mode.

    ``prompt_mode`` replaces the preflight requirement with a user prompt
    (section 5.3's human-in-the-loop interim); ``prompt_grants`` is the
    simulated user's answer per target host.
    """

    directory: PnaServiceDirectory = field(default_factory=PnaServiceDirectory)
    prompt_mode: bool = False
    prompt_grants: dict[str, bool] = field(default_factory=dict)
    decisions: int = 0
    blocked: int = 0

    def evaluate(
        self,
        target: RequestTarget,
        *,
        initiator_secure: bool,
        initiator_space: AddressSpace = AddressSpace.PUBLIC,
    ) -> Decision:
        """Decide one request."""
        self.decisions += 1
        target_space = AddressSpace.of(target.locality)
        if not is_private_network_request(initiator_space, target_space):
            return Decision(Verdict.ALLOWED)
        if self.prompt_mode:
            granted = self.prompt_grants.get(target.host, False)
            if granted:
                return Decision(Verdict.ALLOWED)
            self.blocked += 1
            return Decision(Verdict.BLOCKED_USER_DENIED)
        if not initiator_secure:
            self.blocked += 1
            return Decision(Verdict.BLOCKED_INSECURE_CONTEXT)
        if self.directory.acknowledges(target.host, target.port):
            return Decision(Verdict.ALLOWED, preflight_sent=True)
        self.blocked += 1
        return Decision(Verdict.BLOCKED_PREFLIGHT_FAILED, preflight_sent=True)
