"""repro — reproduction of "Knock and Talk: Investigating Local Network
Communications on Websites" (Kuchhal & Li, ACM IMC 2021).

The package splits into:

* :mod:`repro.core` — the reusable contribution: local-traffic detection
  and behaviour classification over Chrome NetLog telemetry;
* :mod:`repro.netlog` — the NetLog event model, writer, and parser;
* :mod:`repro.browser` — a simulated Chrome (network stack, DNS, SOP);
* :mod:`repro.web` — simulated websites, seeded from the paper's tables;
* :mod:`repro.toplists` — Tranco-style lists and blocklists;
* :mod:`repro.crawler` — the measurement harness (per-OS crawls, campaigns);
* :mod:`repro.storage` — SQLite telemetry store;
* :mod:`repro.analysis` — RQ1/RQ2/RQ3 analyses, table and figure renderers;
* :mod:`repro.defense` — Private Network Access policy evaluation (§5.3).
"""

__version__ = "1.0.0"

from . import core, netlog

__all__ = ["core", "netlog", "__version__"]
