"""``repro serve``: local-traffic detection as a long-running service.

The paper's pipeline is batch; production means serving *clients*: an
HTTP daemon accepts NetLog uploads (real Chrome dumps or our checksummed
archives), streams each through the PR-5 :class:`DetectionSink`, and
returns the RQ1/RQ2/RQ3 classification report — the self-test-service
shape, where a client hits the service to audit its own behaviour.

Layers, bottom up:

* :mod:`repro.serve.report` — the canonical byte-stable report document
  (shared with ``repro analyze --json``; the service's correctness
  contract is byte-identity with the batch CLI);
* :mod:`repro.serve.engine` — the admission-controlled job engine:
  bounded queue with fast 429 backpressure, watchdog-supervised workers,
  digest-keyed result cache, crash-safe journal, overload breaker,
  graceful drain;
* :mod:`repro.serve.http` — the stdlib ``http.server`` surface
  (``POST /v1/analyze``, ``GET /v1/jobs/<id>``, ``/healthz``,
  ``/readyz``, ``/metricsz``);
* :mod:`repro.serve.bench` — the closed-loop load generator behind
  ``make serve-bench``.
"""

from .engine import (
    Degraded,
    Draining,
    EngineConfig,
    JobEngine,
    Overloaded,
    RejectedUpload,
)
from .http import ReproServer, ServerConfig
from .report import (
    ReportError,
    analyze_report,
    job_id_for,
    render_report,
    upload_digest,
)

__all__ = [
    "Degraded",
    "Draining",
    "EngineConfig",
    "JobEngine",
    "Overloaded",
    "RejectedUpload",
    "ReportError",
    "ReproServer",
    "ServerConfig",
    "analyze_report",
    "job_id_for",
    "render_report",
    "upload_digest",
]
