"""Admission-controlled job engine behind ``repro serve``.

The robustness core of the service.  Every upload becomes a *job* and
flows through a small, fully-bounded machine:

* **admission** — a bounded submission queue; when it is full the
  submitter gets :class:`Overloaded` *immediately* (the HTTP layer turns
  it into 429 + ``Retry-After``).  The retry hint is derived from queue
  depth and the observed (EWMA) service rate, so clients back off
  proportionally to the actual backlog, never a magic constant.
* **bounded workers** — a fixed thread pool supervised by the PR-2
  :class:`~repro.crawler.watchdog.Watchdog`: each analysis runs under a
  wall deadline with a cancel token threaded into the parse loop, so a
  wedged or poisoned upload is cancelled instead of starving the pool.
* **result cache** — reports are cached by upload digest; repeat
  submissions are free and byte-identical, and cache hits keep serving
  even in degraded mode.
* **crash-safe journal** — every state change is journalled through
  :class:`~repro.storage.jobs.JobJournal` before it is acted on; a
  SIGKILLed server restarted with ``--resume`` re-runs interrupted jobs
  exactly once from their spooled bytes and serves completed ones from
  the warmed cache.
* **breaker** — repeated worker crashes/cancellations inside a sliding
  window flip the engine into degraded mode: new analysis is shed
  (:class:`Degraded` → 503) while health endpoints and cache hits keep
  serving; after a cooldown the breaker half-opens and a successful
  probe job closes it again.
* **drain** — :meth:`JobEngine.drain` stops admission, lets in-flight
  jobs finish (or checkpoints them back to ``queued`` in the journal if
  the deadline expires), and flushes the journal — the PR-6 fabric
  drain contract, applied to a daemon.
"""

from __future__ import annotations

import collections
import math
import os
import queue
import threading
import time
from dataclasses import dataclass, field

from .. import obs
from ..crawler.watchdog import CancelToken, Watchdog
from ..faults import FaultInjector, FaultKind, InjectedDiskFullError
from ..storage.jobs import (
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    JobJournal,
    JournalStateError,
)
from .report import ReportError, analyze_report_text, job_id_for, upload_digest

_SUBMITTED = obs.counter(
    "repro_serve_submissions_total",
    "upload submissions by admission outcome",
    ("outcome",),
)
_JOBS = obs.counter(
    "repro_serve_jobs_total",
    "analysis jobs by terminal outcome",
    ("outcome",),
)
_JOB_SECONDS = obs.histogram(
    "repro_serve_job_seconds",
    "wall-clock analysis time per completed job",
)
_QUEUE_DEPTH = obs.gauge(
    "repro_serve_queue_depth",
    "jobs waiting in the bounded submission queue",
)
_BREAKER_OPEN = obs.gauge(
    "repro_serve_breaker_open",
    "1 while the overload breaker is open (degraded mode)",
)


class RejectedUpload(RuntimeError):
    """Base: the engine refused to accept an upload right now."""

    retry_after_s: int = 1


class Overloaded(RejectedUpload):
    """The submission queue is full — back off and retry (HTTP 429)."""

    def __init__(self, retry_after_s: int) -> None:
        super().__init__(f"submission queue full; retry after {retry_after_s}s")
        self.retry_after_s = retry_after_s


class Degraded(RejectedUpload):
    """The breaker is open: analysis is shed until it recovers (HTTP 503)."""

    def __init__(self, retry_after_s: int) -> None:
        super().__init__(f"service degraded; retry after {retry_after_s}s")
        self.retry_after_s = retry_after_s


class Draining(RejectedUpload):
    """The server is shutting down and no longer admits work (HTTP 503)."""

    def __init__(self) -> None:
        super().__init__("server is draining")


@dataclass(slots=True)
class EngineConfig:
    """Tuning for the job engine; defaults suit a laptop-scale daemon."""

    workers: int = 2
    #: Bounded submission queue depth — the total in-flight admission
    #: budget beyond the workers themselves.
    backlog: int = 8
    #: Wall-clock seconds one analysis may take before the watchdog
    #: cancels it (wedged parse, pathological upload).
    job_deadline_s: float = 10.0
    #: Re-run budget: a job whose worker crashes/cancels this many times
    #: is quarantined (poison upload), never retried again.
    quarantine_after: int = 3
    #: Breaker: this many worker failures within ``breaker_window_s``
    #: flip the engine into degraded mode for ``breaker_cooldown_s``.
    breaker_threshold: int = 5
    breaker_window_s: float = 30.0
    breaker_cooldown_s: float = 2.0
    watchdog_poll_s: float = 0.05
    #: Retry-After clamp (seconds) for 429/503 responses.
    retry_after_min_s: int = 1
    retry_after_max_s: int = 60
    #: Seed for the EWMA of observed service time until real jobs land.
    default_service_time_s: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.backlog < 1:
            raise ValueError("backlog must be >= 1")
        if self.job_deadline_s <= 0:
            raise ValueError("job_deadline_s must be > 0")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")


@dataclass(slots=True)
class _Job:
    """Runtime view of one job (the journal is the durable twin)."""

    job_id: str
    digest: str
    state: str = QUEUED
    attempts: int = 0
    error: str | None = None
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED, QUARANTINED)


class _Breaker:
    """Sliding-window failure breaker: closed -> open -> half-open."""

    def __init__(self, threshold: int, window_s: float, cooldown_s: float) -> None:
        self._threshold = threshold
        self._window_s = window_s
        self._cooldown_s = cooldown_s
        self._failures: collections.deque[float] = collections.deque()
        self._opened_at: float | None = None
        self._lock = threading.Lock()

    def record_failure(self) -> None:
        now = time.monotonic()
        with self._lock:
            self._failures.append(now)
            while self._failures and self._failures[0] < now - self._window_s:
                self._failures.popleft()
            if self._opened_at is not None:
                # A failed half-open probe re-opens the cooldown window.
                self._opened_at = now
            elif len(self._failures) >= self._threshold:
                self._opened_at = now
                _BREAKER_OPEN.set(1)

    def record_success(self) -> None:
        with self._lock:
            self._failures.clear()
            if self._opened_at is not None:
                self._opened_at = None
                _BREAKER_OPEN.set(0)

    @property
    def open(self) -> bool:
        """True while shedding: open and still inside the cooldown."""
        with self._lock:
            if self._opened_at is None:
                return False
            # Past the cooldown the breaker half-opens: submissions flow
            # again, and their outcome closes or re-opens it.
            return time.monotonic() - self._opened_at < self._cooldown_s

    def cooldown_remaining_s(self) -> float:
        with self._lock:
            if self._opened_at is None:
                return 0.0
            return max(
                0.0, self._cooldown_s - (time.monotonic() - self._opened_at)
            )


class JobEngine:
    """Bounded, supervised, crash-recoverable analysis engine."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        journal: JobJournal | None = None,
        spool_dir: str | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.journal = journal
        self.injector = injector
        self._spool_dir = spool_dir
        if spool_dir is not None:
            os.makedirs(spool_dir, exist_ok=True)
        #: In-memory spool fallback when no directory is configured.
        self._spool_mem: dict[str, bytes] = {}
        self._queue: queue.Queue[str | None] = queue.Queue(
            maxsize=self.config.backlog
        )
        self._jobs: dict[str, _Job] = {}
        self._cache: dict[str, str] = {}
        self._lock = threading.Lock()
        self._draining = False
        self._started = False
        self._ewma_s = self.config.default_service_time_s
        self._breaker = _Breaker(
            self.config.breaker_threshold,
            self.config.breaker_window_s,
            self.config.breaker_cooldown_s,
        )
        #: Durability losses observed writing the journal (disk full);
        #: surfaced on /metricsz and the status endpoint, never fatal.
        self.journal_errors = 0
        #: Per-digest hang-strike counters (the engine drives ``hang``
        #: faults itself, like the supervised executor does).
        self._hang_attempts: dict[str, int] = {}
        self._watchdog = Watchdog(poll_interval_s=self.config.watchdog_poll_s)
        self._workers: list[threading.Thread] = []

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._watchdog.start()
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)

    def resume(self) -> tuple[int, int]:
        """Recover journalled state after a crash; call before ``start``.

        Returns ``(recovered_jobs, cached_reports)``.  ``done`` rows warm
        the result cache; ``queued``/``running`` rows — the jobs a killed
        server still owes — are re-queued to run exactly once more from
        their spooled bytes.  A recoverable job whose spool file did not
        survive the crash is failed explicitly rather than silently
        dropped: the client polling its id sees a verdict either way.
        """
        if self.journal is None:
            return (0, 0)
        self._cache.update(self.journal.completed_reports())
        recovered = 0
        for row in self.journal.recoverable():
            if row.state == RUNNING:
                # The SIGKILL signature: no clean shutdown leaves a
                # running row.  Check it back in before re-queueing.
                self._journal_write(
                    lambda r=row: self.journal.requeue(
                        r.job_id, "recovered after restart"
                    )
                )
            job = _Job(job_id=row.job_id, digest=row.digest,
                       attempts=row.attempts)
            if self._spool_read(row.digest) is None:
                now = time.time()
                self._journal_write(
                    lambda r=row: self.journal.mark_running(r.job_id, now=now)
                )
                self._journal_write(
                    lambda r=row: self.journal.mark_failed(
                        r.job_id, "upload spool lost in crash", now=now
                    )
                )
                job.state = FAILED
                job.error = "upload spool lost in crash"
                job.done.set()
                self._jobs[row.job_id] = job
                continue
            self._jobs[row.job_id] = job
            self._queue.put(row.job_id)
            recovered += 1
        _QUEUE_DEPTH.set(self._queue.qsize())
        return (recovered, len(self._cache))

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Graceful shutdown: stop admitting, finish in-flight, flush.

        Queued-but-unstarted jobs stay ``queued`` in the journal — the
        checkpoint a ``--resume`` restart picks up.  Returns True when
        every worker exited within the deadline.
        """
        with self._lock:
            if self._draining:
                return True
            self._draining = True
        for _ in self._workers:
            self._queue.put(None)
        deadline = time.monotonic() + timeout_s
        drained = True
        for thread in self._workers:
            remaining = deadline - time.monotonic()
            thread.join(timeout=max(remaining, 0.0))
            drained = drained and not thread.is_alive()
        self._watchdog.stop()
        if self.journal is not None:
            self._journal_write(self.journal.store.flush)
        return drained

    def close(self) -> None:
        self.drain()

    def __enter__(self) -> "JobEngine":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def degraded(self) -> bool:
        return self._breaker.open

    @property
    def ready(self) -> bool:
        return self._started and not self._draining and not self.degraded

    # -- admission ----------------------------------------------------------

    def submit(self, data: bytes) -> tuple[str, str | None]:
        """Admit one upload; returns ``(job_id, cached_report_or_None)``.

        Raises :class:`Draining`, :class:`Degraded` or
        :class:`Overloaded` when the upload cannot be accepted — always
        *before* any work is queued, so a rejected client never consumes
        a worker.
        """
        digest = upload_digest(data)
        job_id = job_id_for(digest)
        report = self._cache.get(digest)
        if report is not None:
            # Cache hits serve even while draining or degraded: they are
            # O(1) and byte-identical by construction.
            _SUBMITTED.inc(labels=("cached",))
            return job_id, report
        if self._draining:
            _SUBMITTED.inc(labels=("draining",))
            raise Draining()
        if self.degraded:
            _SUBMITTED.inc(labels=("degraded",))
            raise Degraded(self._degraded_retry_after_s())
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None and not existing.terminal:
                # Idempotent resubmission: same bytes, same in-flight job.
                _SUBMITTED.inc(labels=("coalesced",))
                return job_id, None
            # A "spool lost" failure is a verdict about the crash, not
            # the upload — this request re-supplies the bytes, so the
            # job runs again instead of replaying the infra failure.
            resurrect = (
                existing is not None
                and existing.state == FAILED
                and "spool lost" in (existing.error or "")
            )
            if (
                existing is not None
                and existing.state in (FAILED, QUARANTINED)
                and not resurrect
            ):
                # Terminal verdicts are stable: the same poison upload
                # gets the same answer, not another crash loop.
                _SUBMITTED.inc(labels=("replayed",))
                return job_id, None
            if self._queue.full():
                _SUBMITTED.inc(labels=("overloaded",))
                raise Overloaded(self._overload_retry_after_s())
            self._spool_write(digest, data)
            if self.journal is not None:
                now = time.time()
                if resurrect:
                    self._journal_write(
                        lambda: self.journal.resubmit_lost(job_id, now=now)
                    )
                self._journal_write(
                    lambda: self.journal.submit(
                        job_id, digest, len(data), now=now
                    )
                )
            self._jobs[job_id] = _Job(job_id=job_id, digest=digest)
            self._queue.put_nowait(job_id)
        _SUBMITTED.inc(labels=("accepted",))
        _QUEUE_DEPTH.set(self._queue.qsize())
        return job_id, None

    def _overload_retry_after_s(self) -> int:
        """Retry hint from queue depth and the observed service rate."""
        depth = self._queue.qsize() + self.config.workers
        eta = depth * self._ewma_s / self.config.workers
        return int(
            min(
                max(math.ceil(eta), self.config.retry_after_min_s),
                self.config.retry_after_max_s,
            )
        )

    def _degraded_retry_after_s(self) -> int:
        return int(
            min(
                max(
                    math.ceil(self._breaker.cooldown_remaining_s()),
                    self.config.retry_after_min_s,
                ),
                self.config.retry_after_max_s,
            )
        )

    # -- status -------------------------------------------------------------

    def job_status(self, job_id: str) -> dict | None:
        """Public status document for ``GET /v1/jobs/<id>`` (None = 404)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None and self.journal is not None:
            row = self.journal.get(job_id)
            if row is not None:
                return {
                    "job": row.job_id,
                    "digest": row.digest,
                    "state": row.state,
                    "attempts": row.attempts,
                    "error": row.error,
                }
        if job is None:
            return None
        return {
            "job": job.job_id,
            "digest": job.digest,
            "state": job.state,
            "attempts": job.attempts,
            "error": job.error,
        }

    def report_for(self, job_id: str) -> str | None:
        """The canonical report text for a completed job, else None."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is not None:
            return self._cache.get(job.digest)
        if self.journal is not None:
            row = self.journal.get(job_id)
            if row is not None and row.state == DONE:
                return row.report
        return None

    def wait(self, job_id: str, timeout_s: float) -> bool:
        """Block until the job reaches a terminal state (True) or timeout."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return False
        return job.done.wait(timeout_s)

    def stats(self) -> dict:
        """Engine counters for the status/metrics surface."""
        return {
            "queue_depth": self._queue.qsize(),
            "workers": self.config.workers,
            "draining": self._draining,
            "degraded": self.degraded,
            "cache_size": len(self._cache),
            "journal_errors": self.journal_errors,
        }

    # -- spool --------------------------------------------------------------

    def _spool_path(self, digest: str) -> str:
        assert self._spool_dir is not None
        return os.path.join(self._spool_dir, digest.split(":", 1)[1] + ".netlog")

    def _spool_write(self, digest: str, data: bytes) -> None:
        if self._spool_dir is None:
            self._spool_mem[digest] = data
            return
        path = self._spool_path(digest)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fp:
            fp.write(data)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)

    def _spool_read(self, digest: str) -> bytes | None:
        if self._spool_dir is None:
            return self._spool_mem.get(digest)
        try:
            with open(self._spool_path(digest), "rb") as fp:
                return fp.read()
        except OSError:
            return None

    def _spool_discard(self, digest: str) -> None:
        if self._spool_dir is None:
            self._spool_mem.pop(digest, None)
            return
        try:
            os.unlink(self._spool_path(digest))
        except OSError:
            pass

    # -- journal ------------------------------------------------------------

    def _journal_write(self, operation) -> None:
        """Run one journal mutation, absorbing injected disk-full faults.

        Durability degrades (counted, surfaced on the status endpoints);
        correctness does not — the in-memory job still completes and its
        report is still byte-identical.  A dropped write also desyncs the
        mirror for the rest of that job's life (a later transition finds
        no row, or the wrong state, and raises ``JournalStateError``) —
        that cascade is the same durability loss, so it is absorbed the
        same way rather than killing the worker.
        """
        if self.journal is None:
            return
        try:
            operation()
        except (InjectedDiskFullError, JournalStateError):
            self.journal_errors += 1

    # -- workers ------------------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        while True:
            try:
                job_id = self._queue.get(timeout=0.2)
            except queue.Empty:
                if self._draining:
                    return
                continue
            if job_id is None:
                return
            _QUEUE_DEPTH.set(self._queue.qsize())
            self._run_job(index, job_id)

    def _maybe_hang(self, digest: str, token: CancelToken) -> None:
        """Drive a scheduled ``hang`` fault: wedge until the watchdog
        cancels this attempt (the serve twin of the executor's strike)."""
        if self.injector is None:
            return
        depth = self.injector.plan.fail_depth(FaultKind.HANG, digest)
        if depth == 0:
            return
        with self._lock:
            count = self._hang_attempts.get(digest, 0) + 1
            self._hang_attempts[digest] = count
        if count > depth:
            return
        self.injector.record_injection(FaultKind.HANG)
        while not token.wait(0.05):
            pass
        token.checkpoint()  # raises VisitCancelled

    def _run_job(self, worker_index: int, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return
        data = self._spool_read(job.digest)
        now = time.time()
        job.state = RUNNING
        job.attempts += 1
        self._journal_write(
            lambda: self.journal.mark_running(job_id, now=now)
        )
        if data is None:
            self._finish(job, FAILED, error="upload spool lost")
            return
        token = CancelToken()
        started = time.monotonic()
        try:
            with self._watchdog.watch(
                worker_index, job_id, self.config.job_deadline_s, token
            ):
                self._maybe_hang(job.digest, token)
                if self.injector is not None:
                    self.injector.worker_crash_hook(job.digest)
                report = analyze_report_text(data, checkpoint=token.checkpoint)
        except ReportError as exc:
            # A stable verdict, not a service failure: the same upload
            # always fails the same way, so the breaker is not charged.
            self._finish(job, FAILED, error=str(exc))
            self._breaker.record_success()
            return
        except Exception as exc:  # noqa: BLE001 — any worker death
            # (injected crash, wedge cancelled by the watchdog via
            # VisitCancelled, a genuine bug) takes the bounded re-run path.
            self._breaker.record_failure()
            self._retry_or_quarantine(job, exc)
            return
        elapsed = time.monotonic() - started
        self._observe_service_time(elapsed)
        _JOB_SECONDS.observe(elapsed)
        self._cache[job.digest] = report
        self._journal_write(
            lambda: self.journal.mark_done(job_id, report, now=time.time())
        )
        self._spool_discard(job.digest)
        self._finish(job, DONE, journal=False)
        self._breaker.record_success()

    def _retry_or_quarantine(self, job: _Job, exc: BaseException) -> None:
        reason = f"{type(exc).__name__}: {exc}"
        if job.attempts >= self.config.quarantine_after:
            self._finish(job, QUARANTINED, error=reason)
            return
        self._journal_write(
            lambda: self.journal.requeue(job.job_id, reason)
        )
        job.state = QUEUED
        job.error = reason
        _JOBS.inc(labels=("requeued",))
        try:
            self._queue.put_nowait(job.job_id)
        except queue.Full:
            # Re-running must never block a worker behind admission; a
            # full queue under crash-storm conditions quarantines early.
            self._finish(job, QUARANTINED, error=f"requeue under overload: {reason}")

    def _finish(
        self,
        job: _Job,
        state: str,
        *,
        error: str | None = None,
        journal: bool = True,
    ) -> None:
        if journal:
            now = time.time()
            if state == FAILED:
                self._journal_write(
                    lambda: self.journal.mark_failed(
                        job.job_id, error or "", now=now
                    )
                )
            elif state == QUARANTINED:
                self._journal_write(
                    lambda: self.journal.mark_quarantined(
                        job.job_id, error or "", now=now
                    )
                )
        if state in (FAILED, QUARANTINED):
            self._spool_discard(job.digest)
        job.state = state
        job.error = error
        _JOBS.inc(labels=(state,))
        job.done.set()

    def _observe_service_time(self, elapsed_s: float) -> None:
        # EWMA with alpha 0.3: reactive to load shifts, stable under noise.
        self._ewma_s = 0.7 * self._ewma_s + 0.3 * elapsed_s
