"""Closed-loop load generator for the serve daemon.

Each simulated client owns a goal list of uploads and *closes the loop*:
it submits, honours every backpressure signal the server emits (429/503
``Retry-After``, 202 poll locations, 408 re-sends), and does not move on
until it holds the report for its current upload.  That makes the bench
a correctness instrument first and a latency instrument second — every
report obtained under chaos is compared byte-for-byte against the
expected batch-CLI output, and **any** divergence (wrong bytes, a
partial document, a 200 that should have been impossible) is counted as
a wrong report.  The acceptance bar is zero.

Latency per acquired report (submit → report in hand, including backoff)
feeds both the local percentile summary and the obs registry histogram,
so ``BENCH_serve.json`` carries the full distribution in
``repro-metrics-v1`` form.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from .. import obs
from .report import upload_digest

_BENCH_LATENCY = obs.histogram(
    "repro_serve_bench_latency_seconds",
    "closed-loop client latency: submit to report in hand",
    buckets=(
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
        0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    ),
)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty sample set."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(int(round(q / 100.0 * len(ordered) + 0.5)) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


@dataclass(slots=True)
class BenchItem:
    """One upload with its expected canonical report."""

    name: str
    body: bytes
    expected: str


@dataclass(slots=True)
class BenchResult:
    """What the closed-loop run observed."""

    clients: int = 0
    duration_s: float = 0.0
    reports: int = 0
    wrong_reports: int = 0
    unrecovered: int = 0
    cache_hits: int = 0
    #: 200s whose report digest proved the upload arrived torn; the
    #: closed loop resubmits these rather than accepting a salvage
    #: report for bytes it never meant to send.
    torn_retries: int = 0
    status_counts: dict[str, int] = field(default_factory=dict)
    latencies_s: list[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.reports / self.duration_s

    def summary(self) -> dict:
        return {
            "clients": self.clients,
            "duration_s": round(self.duration_s, 4),
            "reports": self.reports,
            "wrong_reports": self.wrong_reports,
            "unrecovered": self.unrecovered,
            "cache_hits": self.cache_hits,
            "torn_retries": self.torn_retries,
            "throughput_rps": round(self.throughput_rps, 2),
            "status_counts": dict(sorted(self.status_counts.items())),
            "latency_s": {
                "p50": round(percentile(self.latencies_s, 50), 6),
                "p95": round(percentile(self.latencies_s, 95), 6),
                "p99": round(percentile(self.latencies_s, 99), 6),
                "max": round(max(self.latencies_s, default=0.0), 6),
            },
        }


def _post(
    url: str, body: bytes, client_id: str, timeout_s: float
) -> tuple[int, dict, bytes]:
    """POST one upload; returns (status, headers, body) without raising
    on HTTP error statuses — backpressure codes are data, not errors."""
    request = urllib.request.Request(
        f"{url}/v1/analyze",
        data=body,
        method="POST",
        headers={
            "Content-Type": "application/json",
            "X-Client-Id": client_id,
        },
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _get(url: str, path: str, timeout_s: float) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(
            f"{url}{path}", timeout=timeout_s
        ) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


class _Client(threading.Thread):
    """One closed-loop submitter."""

    def __init__(
        self,
        url: str,
        client_id: str,
        items: list[BenchItem],
        result: BenchResult,
        lock: threading.Lock,
        *,
        request_timeout_s: float,
        max_backoff_s: float,
        give_up_after_s: float,
    ) -> None:
        super().__init__(name=client_id, daemon=True)
        self._url = url
        self._client_id = client_id
        self._items = items
        self._result = result
        self._lock = lock
        self._request_timeout_s = request_timeout_s
        self._max_backoff_s = max_backoff_s
        self._give_up_after_s = give_up_after_s

    def _count(self, status: int) -> None:
        with self._lock:
            key = str(status)
            self._result.status_counts[key] = (
                self._result.status_counts.get(key, 0) + 1
            )

    def _acquire_report(self, item: BenchItem) -> None:
        """Closed loop for one upload: retry/poll until the report is in
        hand or the give-up deadline expires (counted as unrecovered)."""
        started = time.monotonic()
        deadline = started + self._give_up_after_s
        while time.monotonic() < deadline:
            status, headers, body = _post(
                self._url, item.body, self._client_id, self._request_timeout_s
            )
            self._count(status)
            if status == 200:
                if self._settle(item, body, started, headers):
                    return
                continue  # torn delivery detected by digest: resubmit
            if status == 202:
                location = headers.get("Location", "")
                if self._poll(item, location, started, deadline):
                    return
                continue
            if status in (408, 429, 503):
                retry_after = headers.get("Retry-After")
                try:
                    backoff = float(retry_after) if retry_after else 0.05
                except ValueError:
                    backoff = 0.05
                time.sleep(min(backoff, self._max_backoff_s))
                continue
            if status in (422, 500):
                # A terminal verdict is a *wrong* outcome for a corpus of
                # valid uploads — the bench corpus never contains poison.
                with self._lock:
                    self._result.wrong_reports += 1
                return
            with self._lock:
                self._result.wrong_reports += 1
            return
        with self._lock:
            self._result.unrecovered += 1

    def _poll(
        self, item: BenchItem, location: str, started: float, deadline: float
    ) -> bool:
        if not location:
            return False
        while time.monotonic() < deadline:
            status, body = _get(
                self._url, location + "/report", self._request_timeout_s
            )
            if status == 200:
                # A torn delivery (False) falls back to the outer loop's
                # resubmission path.
                return self._settle(item, body, started, {})
            if status == 409:
                try:
                    state = json.loads(body.decode()).get("state", "")
                except ValueError:
                    state = ""
                if state in ("failed", "quarantined"):
                    return False  # terminal: resubmit replays the verdict
                time.sleep(0.02)
                continue
            return False  # job vanished or went terminal: resubmit
        return False

    def _settle(
        self, item: BenchItem, body: bytes, started: float, headers: dict
    ) -> bool:
        """Account one 200 body; False = torn delivery, caller resubmits.

        A digest in the report that is not the digest of the bytes we
        sent proves the upload arrived torn — the server's answer is
        correct *for what it received*, so the closed loop resubmits
        instead of scoring it wrong.  Any other divergence from the
        expected bytes is a wrong report: the acceptance bar is zero.
        """
        text = body.decode()
        if text != item.expected:
            try:
                digest = json.loads(text).get("digest")
            except ValueError:
                digest = None
            if digest is not None and digest != upload_digest(item.body):
                with self._lock:
                    self._result.torn_retries += 1
                return False
            with self._lock:
                self._result.wrong_reports += 1
            return True
        elapsed = time.monotonic() - started
        _BENCH_LATENCY.observe(elapsed)
        with self._lock:
            self._result.latencies_s.append(elapsed)
            self._result.reports += 1
            if headers.get("X-Cache") == "hit":
                self._result.cache_hits += 1
        return True

    def run(self) -> None:
        for item in self._items:
            self._acquire_report(item)


def run_load(
    url: str,
    corpus: list[BenchItem],
    *,
    clients: int = 8,
    rounds: int = 3,
    request_timeout_s: float = 30.0,
    max_backoff_s: float = 0.25,
    give_up_after_s: float = 60.0,
) -> BenchResult:
    """Drive ``clients`` closed-loop submitters over the corpus.

    Every client works through ``rounds`` passes of the full corpus (so
    later passes measure the cache path); the returned result carries
    byte-correctness counters and the latency distribution.
    """
    result = BenchResult(clients=clients)
    lock = threading.Lock()
    workers = [
        _Client(
            url,
            f"bench-client-{index}",
            [item for _ in range(rounds) for item in corpus],
            result,
            lock,
            request_timeout_s=request_timeout_s,
            max_backoff_s=max_backoff_s,
            give_up_after_s=give_up_after_s,
        )
        for index in range(clients)
    ]
    started = time.monotonic()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    result.duration_s = time.monotonic() - started
    return result


def render_summary(result: BenchResult) -> str:
    """One human-readable block for logs and CI output."""
    return json.dumps(result.summary(), indent=2, sort_keys=True)
