"""The stdlib HTTP surface of ``repro serve``.

``http.server`` + threads, no new dependencies.  The handler is a thin
adapter: every policy decision (admission, backpressure, degraded mode,
recovery) lives in the :class:`~repro.serve.engine.JobEngine`; this
module only maps engine outcomes onto status codes:

========================  =============================================
``POST /v1/analyze``      200 report (fresh or cache hit) · 202 queued
                          (poll ``Location``) · 408 read deadline ·
                          411 length required · 413 too large · 422 not
                          a NetLog · 429 overloaded (+ ``Retry-After``)
                          · 500 quarantined poison upload · 503
                          draining/degraded (+ ``Retry-After``)
``GET /v1/jobs/<id>``     job status document (404 unknown id)
``GET /v1/jobs/<id>/report``  the canonical report (409 until done)
``GET /healthz``          process liveness: 200 while the process runs
``GET /readyz``           admission readiness: 503 while draining or
                          degraded — load balancers stop routing, while
                          in-flight work finishes behind it
``GET /metricsz``         Prometheus text exposition (obs registry)
========================  =============================================

Uploads are read in bounded chunks under a wall read-deadline: a client
that trickles bytes (the ``slow-client`` fault) gets 408 instead of
holding a handler thread hostage, and a connection that drops mid-upload
(the ``torn-upload`` fault, or a real EOF) hands whatever arrived to the
salvage parser — the report for torn bytes is byte-identical to
``repro analyze`` over the same torn bytes.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .. import obs
from ..faults import FaultInjector
from ..obs.export import prometheus_text
from .engine import Degraded, Draining, JobEngine, Overloaded

_HTTP_REQUESTS = obs.counter(
    "repro_serve_http_requests_total",
    "HTTP requests by route and status code",
    ("route", "code"),
)
_UPLOAD_BYTES = obs.histogram(
    "repro_serve_upload_bytes",
    "received upload sizes in bytes",
)


@dataclass(slots=True)
class ServerConfig:
    """HTTP-layer limits; engine policy lives in ``EngineConfig``."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Hard per-request upload cap (413 beyond it).
    max_bytes: int = 32 * 1024 * 1024
    #: Upload read chunk; small enough that the read deadline is checked
    #: often, large enough to not dominate syscall overhead.
    read_chunk_bytes: int = 64 * 1024
    #: Wall deadline for receiving one upload body (408 beyond it).
    read_timeout_s: float = 10.0
    #: How long POST waits for the job inline before answering 202.
    sync_wait_s: float = 10.0
    #: Log requests to stderr (quiet by default: a daemon's stdout/stderr
    #: belong to its supervisor, not to per-request chatter).
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if self.read_chunk_bytes < 1:
            raise ValueError("read_chunk_bytes must be >= 1")
        if self.read_timeout_s <= 0:
            raise ValueError("read_timeout_s must be > 0")


class _ReadDeadlineExceeded(RuntimeError):
    """The upload body did not arrive within the read deadline."""


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "_Server"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.app.config.verbose:
            super().log_message(format, *args)

    def _reply(
        self,
        code: int,
        body: bytes,
        *,
        route: str,
        content_type: str = "application/json",
        headers: dict[str, str] | None = None,
    ) -> None:
        _HTTP_REQUESTS.inc(labels=(route, str(code)))
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(
        self,
        code: int,
        document: dict,
        *,
        route: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode()
        self._reply(code, body, route=route, headers=headers)

    def _client_key(self) -> str:
        """Stable per-client fault key: explicit header, else peer host."""
        return self.headers.get("X-Client-Id") or self.client_address[0]

    # -- upload ingest ------------------------------------------------------

    def _read_body(self, length: int) -> bytes:
        """Read up to ``length`` bytes under the wall read-deadline.

        EOF before ``length`` is a torn upload: return what arrived (the
        salvage parser owns partial documents).  A client still trickling
        at the deadline raises :class:`_ReadDeadlineExceeded` (→ 408).
        """
        config = self.server.app.config
        injector = self.server.app.injector
        dwell_s = 0.0
        if injector is not None:
            dwell_s = injector.slow_client_hook(self._client_key())
        deadline = time.monotonic() + config.read_timeout_s
        # The socket timeout bounds each individual read so a silent
        # client cannot park the thread past the overall deadline.
        self.connection.settimeout(config.read_timeout_s)
        received = bytearray()
        while len(received) < length:
            if time.monotonic() >= deadline:
                raise _ReadDeadlineExceeded()
            if dwell_s:
                # Injected slow client: the bytes exist but trickle in.
                time.sleep(dwell_s)
                if time.monotonic() >= deadline:
                    raise _ReadDeadlineExceeded()
            want = min(config.read_chunk_bytes, length - len(received))
            try:
                chunk = self.rfile.read(want)
            except TimeoutError as exc:
                raise _ReadDeadlineExceeded() from exc
            if not chunk:
                break  # torn upload: the connection dropped mid-body
            received.extend(chunk)
        return bytes(received)

    # -- routes -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path != "/v1/analyze":
            self._reply_json(404, {"error": "unknown route"}, route="other")
            return
        app = self.server.app
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else None
        except ValueError:
            length = None
        if length is None or length < 0:
            self._reply_json(
                411, {"error": "Content-Length required"}, route="analyze"
            )
            return
        if length > app.config.max_bytes:
            self._reply_json(
                413,
                {
                    "error": "upload too large",
                    "max_bytes": app.config.max_bytes,
                },
                route="analyze",
            )
            self.close_connection = True
            return
        try:
            body = self._read_body(length)
        except _ReadDeadlineExceeded:
            self._reply_json(
                408, {"error": "upload read deadline exceeded"}, route="analyze"
            )
            self.close_connection = True
            return
        if app.injector is not None:
            body = app.injector.torn_upload_hook(body, self._client_key())
        _UPLOAD_BYTES.observe(len(body))
        try:
            job_id, cached = app.engine.submit(body)
        except Overloaded as exc:
            self._reply_json(
                429,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                route="analyze",
                headers={"Retry-After": str(exc.retry_after_s)},
            )
            return
        except (Degraded, Draining) as exc:
            self._reply_json(
                503,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                route="analyze",
                headers={"Retry-After": str(exc.retry_after_s)},
            )
            return
        if cached is not None:
            self._reply(
                200,
                cached.encode(),
                route="analyze",
                headers={"X-Cache": "hit"},
            )
            return
        app.engine.wait(job_id, app.config.sync_wait_s)
        self._answer_for_job(job_id, route="analyze")

    def _answer_for_job(self, job_id: str, *, route: str) -> None:
        """Map a job's current state onto an HTTP answer."""
        app = self.server.app
        status = app.engine.job_status(job_id)
        if status is None:
            self._reply_json(404, {"error": "unknown job"}, route=route)
            return
        state = status["state"]
        if state == "done":
            report = app.engine.report_for(job_id)
            if report is not None:
                self._reply(200, report.encode(), route=route)
                return
        if state == "failed":
            self._reply_json(
                422, {"error": status["error"], "job": job_id}, route=route
            )
            return
        if state == "quarantined":
            self._reply_json(
                500,
                {
                    "error": "analysis quarantined after repeated failures",
                    "detail": status["error"],
                    "job": job_id,
                },
                route=route,
            )
            return
        # Still queued/running: hand back a poll location.
        self._reply_json(
            202,
            status,
            route=route,
            headers={"Location": f"/v1/jobs/{job_id}"},
        )

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        app = self.server.app
        if self.path == "/healthz":
            self._reply(200, b"ok\n", route="healthz", content_type="text/plain")
            return
        if self.path == "/readyz":
            if app.engine.ready:
                self._reply(
                    200, b"ready\n", route="readyz", content_type="text/plain"
                )
            else:
                reason = (
                    "draining" if app.engine.draining
                    else "degraded" if app.engine.degraded
                    else "starting"
                )
                self._reply(
                    503,
                    f"unavailable: {reason}\n".encode(),
                    route="readyz",
                    content_type="text/plain",
                    headers={"Retry-After": "5"},
                )
            return
        if self.path == "/metricsz":
            registry = obs.registry()
            text = (
                prometheus_text(registry.collect())
                if registry is not None
                else "# observability disabled\n"
            )
            self._reply(
                200,
                text.encode(),
                route="metricsz",
                content_type="text/plain; version=0.0.4",
            )
            return
        if self.path.startswith("/v1/jobs/"):
            tail = self.path[len("/v1/jobs/"):]
            if tail.endswith("/report"):
                job_id = tail[: -len("/report")]
                status = app.engine.job_status(job_id)
                if status is None:
                    self._reply_json(404, {"error": "unknown job"}, route="jobs")
                    return
                report = app.engine.report_for(job_id)
                if report is None:
                    self._reply_json(
                        409,
                        {"error": "report not ready", "state": status["state"]},
                        route="jobs",
                    )
                    return
                self._reply(200, report.encode(), route="jobs")
                return
            status = app.engine.job_status(tail)
            if status is None:
                self._reply_json(404, {"error": "unknown job"}, route="jobs")
                return
            self._reply_json(200, status, route="jobs")
            return
        self._reply_json(404, {"error": "unknown route"}, route="other")


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    app: "ReproServer"


class ReproServer:
    """Owns the HTTP listener and its engine; drives graceful drain."""

    def __init__(
        self,
        engine: JobEngine,
        config: ServerConfig | None = None,
        *,
        injector: FaultInjector | None = None,
    ) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        self.injector = injector
        self._httpd = _Server(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.app = self
        self._thread: threading.Thread | None = None
        self._serving = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port resolved when config said 0."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve in a background thread (tests, bench, embedding)."""
        self.engine.start()
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI daemon path)."""
        self.engine.start()
        self._serving = True
        self._httpd.serve_forever()

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Graceful shutdown: stop admitting → finish in-flight → stop.

        The listener keeps answering while the engine drains, so
        ``/readyz`` reports 503 (load balancers stop routing) and
        late-arriving submissions get an explicit 503, never a connection
        reset; only then does the HTTP loop stop.
        """
        drained = self.engine.drain(timeout_s)
        if self._serving:
            # shutdown() blocks on serve_forever's acknowledgement, so it
            # must only run when the serve loop actually started.
            self._httpd.shutdown()
            self._serving = False
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        return drained

    def close(self) -> None:
        self.drain()

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
