"""The canonical analysis-report document — the service's unit of truth.

One upload (a serialised NetLog document, possibly damaged) maps to one
JSON report carrying the paper's three research questions: does the page
talk to the local network (RQ1), to which ports/schemes (RQ2), and what
behaviour class does the traffic signature match (RQ3).

The rendering is **byte-stable**: sorted keys, compact separators, a
trailing newline, and only deterministic content (the upload's own
digest, parse accounting, detection output) — never a timestamp or
hostname.  ``repro analyze --json`` and every serve path (fresh
analysis, cache hit, journal recovery after a kill -9) emit this exact
byte sequence for the same upload, which is what lets the chaos bench
assert the service never returns a wrong or partial report: any
divergence is a content difference, not formatting noise.

Salvage semantics follow the batch CLI: a damaged document (truncated
upload, NUL-padded tail, checksum failures) is parsed for whatever is
recoverable and reported with its damage accounted in ``parse``; only a
well-formed document that is not a NetLog at all raises
:class:`ReportError`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable

from ..core.classifier import BehaviorClassifier
from ..core.detector import LocalTrafficDetector
from ..netlog import NetLogParseError, ParseStats
from ..netlog.streaming import iter_events_streaming

#: Format tag embedded in (and required of) every report document.
REPORT_FORMAT = "repro-report-v1"

#: Digest algorithm prefix for upload content addresses.
DIGEST_ALGORITHM = "sha256"

#: How many parsed events between cancellation checkpoints: small enough
#: that a watchdog-cancelled worker reacts within its poll interval on
#: any realistic document, large enough to stay off the hot path.
CHECKPOINT_EVERY = 256


class ReportError(ValueError):
    """The upload cannot produce a report (not a NetLog document)."""


def upload_digest(data: bytes) -> str:
    """Content address of an upload: ``sha256:<hex>``.

    This is the result-cache key and the journal's digest column;
    repeat submissions of the same bytes are free and byte-identical.
    """
    return f"{DIGEST_ALGORITHM}:{hashlib.sha256(data).hexdigest()}"


def job_id_for(digest: str) -> str:
    """Deterministic job id for an upload digest.

    Digest-derived so resubmitting the same bytes lands on the same
    journal row (idempotent submission) and a restarted server computes
    identical ids for the jobs it recovers.
    """
    return "j" + digest.split(":", 1)[1][:16]


def analyze_report(
    data: bytes, *, checkpoint: Callable[[], None] | None = None
) -> dict:
    """Analyze one upload into the canonical report document.

    ``checkpoint`` is called every :data:`CHECKPOINT_EVERY` parsed
    events; the serve worker passes its cancel token's ``checkpoint`` so
    a wedged or oversized parse is abandoned at the wall deadline
    instead of starving the pool.
    """
    digest = upload_digest(data)
    stats = ParseStats()
    sink = LocalTrafficDetector().sink()
    seen = 0
    try:
        # The streaming layer sniffs the upload's format from its magic
        # byte: binary documents take the zero-copy scanner, JSON is
        # decoded with errors="replace" so torn multi-byte sequences at
        # a truncation point degrade to U+FFFD and the salvage parser
        # drops that record, exactly as the batch CLI does reading the
        # file.  Reports stay content-addressed by the upload bytes, so
        # the same events uploaded in the two formats are two cache
        # entries with identical analysis sections.
        for event in iter_events_streaming(
            data, strict=False, stats=stats, require_events=True
        ):
            sink.accept(event)
            seen += 1
            if checkpoint is not None and seen % CHECKPOINT_EVERY == 0:
                checkpoint()
    except NetLogParseError as exc:
        raise ReportError(f"not a NetLog document: {exc}") from exc
    detection = sink.finish()
    verdict = BehaviorClassifier().classify(detection.requests)
    return {
        "format": REPORT_FORMAT,
        "digest": digest,
        "bytes": len(data),
        "parse": {
            "events": stats.parsed,
            "dropped_unknown_type": stats.dropped_unknown_type,
            "dropped_malformed": stats.dropped_malformed,
            "checksum_failures": stats.checksum_failures,
            "chain_breaks": stats.chain_breaks,
            "truncated": stats.truncated,
            "damaged": stats.damaged,
        },
        "flows": detection.total_flows,
        "page_load_time": detection.page_load_time,
        "rq1": {
            "local_activity": detection.has_local_activity,
            "localhost_requests": len(detection.localhost_requests),
            "lan_requests": len(detection.lan_requests),
        },
        "rq2": {
            "ports": sorted(detection.ports()),
            "schemes": sorted(detection.schemes()),
        },
        "rq3": {
            "behavior": verdict.behavior.value,
            "signature": verdict.signature_name,
            "confidence": (
                verdict.match.confidence if verdict.match is not None else None
            ),
            "detail": verdict.match.detail if verdict.match is not None else None,
        },
        "requests": [
            {
                "locality": request.locality.value,
                "scheme": request.scheme,
                "host": request.host,
                "port": request.port,
                "path": request.path,
                "time": request.time,
                "method": request.method,
                "via_redirect": request.via_redirect,
                "initiator": request.initiator,
                "source_id": request.source_id,
            }
            for request in detection.requests
        ],
    }


def render_report(document: dict) -> str:
    """Serialise a report document to its canonical byte-stable text."""
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def analyze_report_text(
    data: bytes, *, checkpoint: Callable[[], None] | None = None
) -> str:
    """``analyze_report`` + ``render_report`` in one step."""
    return render_report(analyze_report(data, checkpoint=checkpoint))
