"""Behaviour signatures for classifying website local-network activity.

Section 4.3 of the paper attributes each observed site's local traffic to
one of four causes — fraud detection, bot detection, native-application
communication, developer error — or marks it unknown.  The attribution was
manual in the paper; here we encode the distinguishing characteristics the
authors describe (port sets, schemes, URL paths, which OSes the behaviour
appears on) as matchable signatures, so the classification is reproducible
and applicable to new telemetry.

Signatures match against the set of :class:`~repro.core.detector.LocalRequest`
records for one (site, OS) page load.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .detector import LocalRequest
from .ports import BIGIP_ASM_PORTS, THREATMETRIX_PORTS


class BehaviorClass(enum.Enum):
    """The paper's RQ3 taxonomy of local-traffic causes.

    ``INTERNAL_ATTACK`` extends the taxonomy with the class the paper
    explicitly searched for and did not find: web-based discovery/attack
    sweeps of the LAN (section 2.1's threat model).  Keeping it in the
    classifier means the pipeline *would* flag such behaviour, and the
    measured count of zero across all crawls is a finding, not a blind
    spot.
    """

    INTERNAL_ATTACK = "Internal Network Attack"
    FRAUD_DETECTION = "Fraud Detection"
    BOT_DETECTION = "Bot Detection"
    NATIVE_APPLICATION = "Native Application"
    DEVELOPER_ERROR = "Developer Errors"
    UNKNOWN = "Unknown"


class DeveloperErrorKind(enum.Enum):
    """Sub-taxonomy of developer errors (paper Appendix B / Table 11)."""

    LOCAL_FILE_SERVER = "Local file server"
    PEN_TEST = "Pen test"
    LIVERELOAD = "LiveReload.js"
    REDIRECT = "Redirect"
    SOCKJS_NODE = "SocksJS-Node"
    OTHER_LOCAL_SERVICE = "Other local services"


@dataclass(frozen=True, slots=True)
class SignatureMatch:
    """The outcome of matching one signature against a page's requests."""

    behavior: BehaviorClass
    signature: str
    confidence: float
    detail: str = ""
    dev_error_kind: DeveloperErrorKind | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must be within [0, 1]")


class Signature:
    """Base class: a named matcher over a page's local requests.

    Subclasses provide ``name`` and ``behavior`` (as dataclass fields or
    class attributes) and implement :meth:`match`.
    """

    name: str
    behavior: BehaviorClass

    def match(self, requests: Sequence[LocalRequest]) -> SignatureMatch | None:
        raise NotImplementedError


@dataclass(frozen=True)
class PortScanSignature(Signature):
    """Matches a port-scan profile: scheme + port set + path pattern.

    ``min_ports`` guards against over-triggering: the anti-abuse scanners
    probe many ports in one burst, so seeing a single coinciding port (for
    example a developer-error fetch to port 4444) must not match.
    """

    name: str
    behavior: BehaviorClass
    scheme: str
    ports: frozenset[int]
    path_pattern: str = r"^/$"
    min_ports: int = 4
    host_must_be_localhost: bool = True

    def match(self, requests: Sequence[LocalRequest]) -> SignatureMatch | None:
        pattern = re.compile(self.path_pattern)
        hit_ports = {
            r.port
            for r in requests
            if r.scheme == self.scheme
            and r.port in self.ports
            and pattern.match(r.path)
        }
        if len(hit_ports) < self.min_ports:
            return None
        coverage = len(hit_ports) / len(self.ports)
        return SignatureMatch(
            behavior=self.behavior,
            signature=self.name,
            confidence=min(1.0, 0.5 + 0.5 * coverage),
            detail=f"{len(hit_ports)}/{len(self.ports)} profile ports probed over {self.scheme}",
        )


@dataclass(frozen=True)
class EndpointSignature(Signature):
    """Matches a native-application control endpoint.

    Native apps expose fixed local ports and characteristic URL paths
    (e.g. Discord's ``/?v=1`` on 6463–6472, Thunder's
    ``/get_thunder_version/``).  One matching request suffices.
    """

    name: str
    app: str
    ports: frozenset[int]
    path_pattern: str
    schemes: frozenset[str] = frozenset({"http", "https", "ws", "wss"})
    behavior: BehaviorClass = BehaviorClass.NATIVE_APPLICATION

    def match(self, requests: Sequence[LocalRequest]) -> SignatureMatch | None:
        pattern = re.compile(self.path_pattern)
        for request in requests:
            if (
                request.scheme in self.schemes
                and request.port in self.ports
                and pattern.match(request.path)
            ):
                return SignatureMatch(
                    behavior=self.behavior,
                    signature=self.name,
                    confidence=0.9,
                    detail=f"{self.app} endpoint {request.target.url()}",
                )
        return None


#: The ThreatMetrix (LexisNexis) fraud-detection profile: 14 WSS probes of
#: remote-desktop ports with path "/", observed only on Windows.
THREATMETRIX_SIGNATURE = PortScanSignature(
    name="threatmetrix",
    behavior=BehaviorClass.FRAUD_DETECTION,
    scheme="wss",
    ports=frozenset(THREATMETRIX_PORTS),
    path_pattern=r"^/$",
    min_ports=6,
)

#: The F5 BIG-IP ASM Bot Defense profile: 7 HTTP probes of malware /
#: automation ports with path "/", observed only on Windows.
BIGIP_ASM_SIGNATURE = PortScanSignature(
    name="bigip-asm-bot-defense",
    behavior=BehaviorClass.BOT_DETECTION,
    scheme="http",
    ports=frozenset(BIGIP_ASM_PORTS),
    path_pattern=r"^/$",
    min_ports=4,
)


def _native_app_signatures() -> list[EndpointSignature]:
    """Native-application endpoints catalogued in section 4.3.3/Appendix A
    and Table 7 (2021 additions)."""
    return [
        EndpointSignature(
            name="discord-client",
            app="Discord",
            ports=frozenset(range(6463, 6473)),
            path_pattern=r"^/\?v=1$",
            schemes=frozenset({"ws"}),
        ),
        EndpointSignature(
            name="faceit-client",
            app="FACEIT anti-cheat client",
            ports=frozenset({28337}),
            path_pattern=r"^/$",
            schemes=frozenset({"ws"}),
        ),
        EndpointSignature(
            name="nprotect-online-security",
            app="INCA nProtect Online Security",
            ports=frozenset(range(14440, 14450)),
            path_pattern=r"^/(\?code=.*)?$",
            schemes=frozenset({"https"}),
        ),
        EndpointSignature(
            name="anysign",
            app="Hancom AnySign for PC",
            ports=frozenset({10531, 31027, 31029}),
            path_pattern=r"^/$",
            schemes=frozenset({"wss"}),
        ),
        EndpointSignature(
            name="gamehouse-client",
            app="GameHouse / Zylom game manager",
            ports=frozenset({12071, 12072, 17021, 27021}),
            path_pattern=r"^/v1/init\.json",
            schemes=frozenset({"http"}),
        ),
        EndpointSignature(
            name="iwin-client",
            app="iWin Games client",
            ports=frozenset({2080, 2081, 2082}),
            path_pattern=r"^/version",
            schemes=frozenset({"http"}),
        ),
        EndpointSignature(
            name="gameslol-client",
            app="Games.lol client",
            ports=frozenset({60202}),
            path_pattern=r"^/check$",
            schemes=frozenset({"ws"}),
        ),
        EndpointSignature(
            name="screenleap-client",
            app="Screenleap screen-sharing client",
            ports=frozenset({5320}),
            path_pattern=r"^/(status|.+/up)$",
            schemes=frozenset({"http"}),
        ),
        EndpointSignature(
            name="acestream-client",
            app="Ace Stream media client",
            ports=frozenset({6878}),
            path_pattern=r"^/webui/api/service",
            schemes=frozenset({"http"}),
        ),
        EndpointSignature(
            name="trustdice-client",
            app="TrustDice helper",
            ports=frozenset({50005, 51505, 53005, 54505, 56005}),
            path_pattern=r"^/(socket\.io.*)?$",
            schemes=frozenset({"http"}),
        ),
        EndpointSignature(
            name="iqiyi-client",
            app="iQIYI video client",
            ports=frozenset({16422, 16423}),
            path_pattern=r"^/get_client_ver",
            schemes=frozenset({"http"}),
        ),
        EndpointSignature(
            name="thunder-client",
            app="Thunder (Xunlei) download manager",
            ports=frozenset({28317, 36759}),
            path_pattern=r"^/get_thunder_version",
            schemes=frozenset({"http"}),
        ),
        EndpointSignature(
            name="eimzo-cryptapi",
            app="E-IMZO digital signature service",
            ports=frozenset({64443}),
            path_pattern=r"^/service/cryptapi",
            schemes=frozenset({"wss"}),
        ),
        EndpointSignature(
            name="gnway-client",
            app="GNWay remote access client",
            ports=frozenset(range(38681, 38688)),
            path_pattern=r"^/$",
            schemes=frozenset({"ws"}),
        ),
        EndpointSignature(
            name="mcgeeandco-socketio",
            app="McGee & Co companion service",
            ports=frozenset({4000}),
            path_pattern=r"^/socket\.io/",
            schemes=frozenset({"https"}),
        ),
    ]


NATIVE_APP_SIGNATURES: tuple[EndpointSignature, ...] = tuple(_native_app_signatures())


#: Paths whose presence identifies a developer-error sub-kind.  Order
#: matters: the first matching rule wins, and more specific artefacts
#: (pen-test framework files, livereload, sockjs) precede the generic
#: static-file heuristic.
_DEV_ERROR_RULES: tuple[tuple[DeveloperErrorKind, re.Pattern[str]], ...] = (
    (DeveloperErrorKind.PEN_TEST, re.compile(r"/xook\.js$")),
    (DeveloperErrorKind.LIVERELOAD, re.compile(r"/livereload\.js(\?.*)?$")),
    (DeveloperErrorKind.SOCKJS_NODE, re.compile(r"^/sockjs-node/info")),
    (
        DeveloperErrorKind.LOCAL_FILE_SERVER,
        re.compile(
            r"(/wp-content/|/wp-includes/"
            r"|\.(?:jpg|jpeg|png|gif|ico|css|js|mp4|ogg|svg|woff2?|html?|txt)(\?.*)?$)",
            re.IGNORECASE,
        ),
    ),
)

#: Local service paths seen as development remnants ("other local
#: services"): API-ish endpoints that are neither static files nor known
#: native apps.
_OTHER_LOCAL_SERVICE = re.compile(
    r"^/(record/state|setuid|avisos-portal|getCertificados|graphql|"
    r"app/getLicenseKey|floor-domains|news-ticker\.json|getversionjpg.*|"
    r"core/js/api/web-rules|MyPhone/.*|usershare/.*)$"
)


class DeveloperErrorSignature(Signature):
    """Heuristic matcher for development/testing remnants.

    Matches static-file fetches, tool artefacts (LiveReload, SockJS-node,
    pen-test frameworks), bare-root redirects to 127.0.0.1, and leftover
    local service endpoints.  Runs after the specific scanner/native-app
    signatures so it only sees traffic those did not explain.
    """

    name = "developer-error"
    behavior = BehaviorClass.DEVELOPER_ERROR

    def match(self, requests: Sequence[LocalRequest]) -> SignatureMatch | None:
        kinds: list[tuple[DeveloperErrorKind, str]] = []
        for request in requests:
            kind = self._classify_request(request)
            if kind is not None:
                kinds.append((kind, request.path))
        if not kinds:
            lone = self._lone_root_service(requests)
            if lone is not None:
                return lone
            return None
        # Report the most specific kind observed (enum order: pen test and
        # tool artefacts before the generic file-server bucket).
        priority = {
            DeveloperErrorKind.PEN_TEST: 0,
            DeveloperErrorKind.LIVERELOAD: 1,
            DeveloperErrorKind.SOCKJS_NODE: 2,
            DeveloperErrorKind.OTHER_LOCAL_SERVICE: 3,
            DeveloperErrorKind.LOCAL_FILE_SERVER: 4,
            DeveloperErrorKind.REDIRECT: 5,
        }
        kind, path = min(kinds, key=lambda item: priority[item[0]])
        return SignatureMatch(
            behavior=BehaviorClass.DEVELOPER_ERROR,
            signature=f"dev-error:{kind.name.lower()}",
            confidence=0.7,
            detail=f"development remnant request to {path}",
            dev_error_kind=kind,
        )

    @staticmethod
    def _lone_root_service(
        requests: Sequence[LocalRequest],
    ) -> SignatureMatch | None:
        """A single bare-root HTTP(S) fetch of one localhost port.

        Distinguishes a leftover local control service (filemail.com's
        ``http://localhost:56666/``) from multi-port scans and from the
        LAN censorship iframes, both of which are excluded here.
        """
        from .addresses import Locality

        if not requests or any(
            r.locality is not Locality.LOCALHOST for r in requests
        ):
            return None
        # Distinct endpoints, not raw request count: the same probe seen
        # across several OS crawls is still one endpoint.
        endpoints = {(r.scheme, r.port, r.path) for r in requests}
        if len(endpoints) != 1:
            return None
        request = requests[0]
        if (
            request.path == "/"
            and request.scheme in ("http", "https")
            and not request.via_redirect
        ):
            return SignatureMatch(
                behavior=BehaviorClass.DEVELOPER_ERROR,
                signature="dev-error:other_local_service",
                confidence=0.4,
                detail=f"lone root fetch of localhost:{request.port}",
                dev_error_kind=DeveloperErrorKind.OTHER_LOCAL_SERVICE,
            )
        return None

    @staticmethod
    def _classify_request(request: LocalRequest) -> DeveloperErrorKind | None:
        for kind, pattern in _DEV_ERROR_RULES:
            if pattern.search(request.path):
                return kind
        if _OTHER_LOCAL_SERVICE.match(request.path):
            return DeveloperErrorKind.OTHER_LOCAL_SERVICE
        if request.via_redirect and request.path == "/":
            return DeveloperErrorKind.REDIRECT
        return None


DEVELOPER_ERROR_SIGNATURE = DeveloperErrorSignature()


#: The LAN blackhole addresses Raman et al. associate with Iranian
#: censorship middleboxes (Appendix C: 403 pages embedding an iframe at
#: http://10.10.34.35:80).
CENSORSHIP_BLACKHOLES = frozenset({"10.10.34.34", "10.10.34.35"})


class CensorshipIframeSignature(Signature):
    """Detects censorship-injected iframes pointed at LAN blackholes.

    The behaviour class stays UNKNOWN — the paper could not confidently
    classify these — but the named signature lets analyses separate the
    suspected-censorship cases from the genuinely unexplained residue.
    """

    name = "censorship-lan-iframe"
    behavior = BehaviorClass.UNKNOWN

    def match(self, requests: Sequence[LocalRequest]) -> SignatureMatch | None:
        for request in requests:
            if request.host in CENSORSHIP_BLACKHOLES and request.path == "/":
                return SignatureMatch(
                    behavior=BehaviorClass.UNKNOWN,
                    signature=self.name,
                    confidence=0.6,
                    detail=f"iframe sourced at http://{request.host}:{request.port}/",
                )
        return None


CENSORSHIP_SIGNATURE = CensorshipIframeSignature()


@dataclass(frozen=True)
class LanSweepSignature(Signature):
    """Detects web-based LAN discovery sweeps (the hypothesised attack).

    The proof-of-concept scanners in the literature (sonar.js, lan-js,
    the Acar et al. IoT attack) share one unmistakable trait: probes to
    *many distinct private addresses* in one page load, walking a subnet.
    Legitimate LAN traffic in the wild (Tables 6/9/10) touches exactly
    one address; the censorship iframes touch one blackhole.  The
    distinct-host threshold separates the two cleanly.
    """

    name: str = "lan-sweep"
    behavior: BehaviorClass = BehaviorClass.INTERNAL_ATTACK
    min_hosts: int = 5

    def match(self, requests: Sequence[LocalRequest]) -> SignatureMatch | None:
        from .addresses import Locality

        hosts = {
            r.host for r in requests if r.locality is Locality.LAN
        }
        if len(hosts) < self.min_hosts:
            return None
        sample = ", ".join(sorted(hosts)[:4])
        return SignatureMatch(
            behavior=BehaviorClass.INTERNAL_ATTACK,
            signature=self.name,
            confidence=min(1.0, 0.6 + 0.05 * len(hosts)),
            detail=f"swept {len(hosts)} distinct LAN hosts ({sample}, …)",
        )


LAN_SWEEP_SIGNATURE = LanSweepSignature()


@dataclass(frozen=True)
class GenericPortScanSignature(Signature):
    """Profile-agnostic localhost port-scan detector (§5.1 hardening).

    The deployed ThreatMetrix/BIG-IP signatures match *fixed* port sets —
    and the paper predicts vendors (and attackers) will change ports once
    observed.  This matcher keys on scan *shape* instead: many distinct
    localhost ports probed with one scheme and one path in a burst.

    Deliberately NOT part of :func:`default_signatures`: the paper's
    taxonomy keeps shape-only scanners (hola.org, wowreality.info) in the
    Unknown class, and the reproduction follows the paper.  Users
    monitoring for *future* scan variants can prepend this to their
    chain.
    """

    name: str = "generic-localhost-portscan"
    behavior: BehaviorClass = BehaviorClass.UNKNOWN
    min_ports: int = 8

    def match(self, requests: Sequence[LocalRequest]) -> SignatureMatch | None:
        from .addresses import Locality

        by_profile: dict[tuple[str, str], set[int]] = {}
        for request in requests:
            if request.locality is not Locality.LOCALHOST:
                continue
            key = (request.scheme, request.path)
            by_profile.setdefault(key, set()).add(request.port)
        for (scheme, path), ports in by_profile.items():
            if len(ports) >= self.min_ports:
                return SignatureMatch(
                    behavior=self.behavior,
                    signature=self.name,
                    confidence=0.5,
                    detail=(
                        f"{len(ports)} distinct localhost ports probed over "
                        f"{scheme} at {path}"
                    ),
                )
        return None


GENERIC_PORTSCAN_SIGNATURE = GenericPortScanSignature()


def default_signatures() -> list[Signature]:
    """The full signature chain in evaluation order.

    Specific, high-confidence signatures run first; the developer-error
    heuristic runs last as a catch-all before UNKNOWN.
    """
    chain: list[Signature] = [
        LAN_SWEEP_SIGNATURE,
        THREATMETRIX_SIGNATURE,
        BIGIP_ASM_SIGNATURE,
    ]
    chain.extend(NATIVE_APP_SIGNATURES)
    chain.append(CENSORSHIP_SIGNATURE)
    chain.append(DEVELOPER_ERROR_SIGNATURE)
    return chain


def iter_signature_names(signatures: Iterable[Signature]) -> list[str]:
    """Names of the signatures in a chain (diagnostics/reporting)."""
    return [s.name for s in signatures]
