"""Findings records: the per-site artefacts the analysis layer consumes.

A :class:`SiteFinding` aggregates everything measured about one website
across the OSes it was crawled on — the detected local requests, the
behaviour classification, and convenience accessors for the groupings the
paper's tables use (OS flags, protocol/port sets, delay to first local
request).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .addresses import Locality
from .classifier import Classification
from .detector import DetectionResult, LocalRequest
from .signatures import BehaviorClass, DeveloperErrorKind

#: Canonical OS key order used throughout reporting (matches the paper's
#: column order W / L / M).
OS_ORDER: tuple[str, ...] = ("windows", "linux", "mac")


@dataclass(slots=True)
class SiteFinding:
    """Measured local-network behaviour of one website."""

    domain: str
    rank: int | None = None
    population: str = ""
    category: str | None = None
    per_os: dict[str, DetectionResult] = field(default_factory=dict)
    classification: Classification | None = None

    # -- basic accessors -------------------------------------------------

    def oses_with_activity(self, locality: Locality) -> tuple[str, ...]:
        """OSes on which the site generated traffic of the given locality."""
        return tuple(
            os_name
            for os_name in OS_ORDER
            if os_name in self.per_os
            and any(r.locality is locality for r in self.per_os[os_name].requests)
        )

    def has_activity(self, locality: Locality) -> bool:
        return bool(self.oses_with_activity(locality))

    @property
    def has_localhost_activity(self) -> bool:
        return self.has_activity(Locality.LOCALHOST)

    @property
    def has_lan_activity(self) -> bool:
        return self.has_activity(Locality.LAN)

    @property
    def behavior(self) -> BehaviorClass | None:
        return self.classification.behavior if self.classification else None

    @property
    def dev_error_kind(self) -> DeveloperErrorKind | None:
        return self.classification.dev_error_kind if self.classification else None

    # -- request-level views ----------------------------------------------

    def requests(
        self, locality: Locality | None = None, os_name: str | None = None
    ) -> list[LocalRequest]:
        """Flattened local requests, optionally filtered."""
        out: list[LocalRequest] = []
        for key in OS_ORDER:
            if os_name is not None and key != os_name:
                continue
            result = self.per_os.get(key)
            if result is None:
                continue
            for request in result.requests:
                if locality is None or request.locality is locality:
                    out.append(request)
        return out

    def ports(self, locality: Locality, os_name: str | None = None) -> set[int]:
        return {r.port for r in self.requests(locality, os_name)}

    def schemes(self, locality: Locality, os_name: str | None = None) -> set[str]:
        return {r.scheme for r in self.requests(locality, os_name)}

    def lan_addresses(self) -> set[str]:
        """Distinct private IPs the site contacted (Tables 6/9/10)."""
        return {r.host for r in self.requests(Locality.LAN)}

    def first_request_delay_ms(
        self, locality: Locality, os_name: str
    ) -> float | None:
        result = self.per_os.get(os_name)
        if result is None:
            return None
        return result.first_local_request_delay_ms(locality)


def findings_with_activity(
    findings: Iterable[SiteFinding], locality: Locality
) -> list[SiteFinding]:
    """Filter findings down to sites with activity of the given locality."""
    return [f for f in findings if f.has_activity(locality)]


def os_overlap_partition(
    findings: Iterable[SiteFinding], locality: Locality
) -> dict[frozenset[str], int]:
    """Partition active sites by the exact OS subset showing activity.

    This is the data behind Figure 2's Venn diagrams: keys are frozensets
    of OS names, values are site counts.  Sites without activity are not
    represented.
    """
    partition: dict[frozenset[str], int] = {}
    for finding in findings:
        oses = frozenset(finding.oses_with_activity(locality))
        if not oses:
            continue
        partition[oses] = partition.get(oses, 0) + 1
    return partition


def per_os_totals(
    findings: Iterable[SiteFinding], locality: Locality
) -> dict[str, int]:
    """Sites-with-activity count per OS (Figure 2 circle sizes)."""
    totals = {os_name: 0 for os_name in OS_ORDER}
    for finding in findings:
        for os_name in finding.oses_with_activity(locality):
            totals[os_name] += 1
    return totals
