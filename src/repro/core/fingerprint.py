"""Host-fingerprinting potential of local network scans (paper §5.2).

The paper's discussion section argues that the host profiling performed
for fraud/bot detection "can naturally be extended for user
fingerprinting and tracking": the set of localhost services and LAN
devices visible to a webpage is a high-entropy, fairly stable feature
vector.  This module quantifies that claim:

* :class:`HostProfile` — what a scan observes on one machine;
* :func:`scan_host` — run a scan profile (a port list) against a
  simulated machine's service table, producing the observable vector;
* :class:`FingerprintStudy` — given a population of host profiles,
  compute anonymity-set sizes, uniqueness, and Shannon entropy of the
  scan observable — the standard fingerprinting metrics (Eckersley-style).

This is reproduction *extension* code: the paper hypothesises the risk,
we make it measurable.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..browser.network import LocalServiceTable, SimulatedNetwork


@dataclass(frozen=True, slots=True)
class HostProfile:
    """One machine's locally visible services."""

    label: str
    open_ports: frozenset[int]
    lan_devices: frozenset[str] = frozenset()

    def service_table(self) -> LocalServiceTable:
        table = LocalServiceTable()
        for port in self.open_ports:
            table.open_service("127.0.0.1", port)
        for device in self.lan_devices:
            table.open_service(device, 80)
        return table


@dataclass(frozen=True, slots=True)
class ScanObservation:
    """What one scan of one host observes — the fingerprint feature."""

    open_ports: tuple[int, ...]
    reachable_devices: tuple[str, ...] = ()

    def as_key(self) -> tuple:
        """Hashable feature vector for anonymity-set grouping."""
        return (self.open_ports, self.reachable_devices)

    @property
    def bits_observed(self) -> int:
        """Number of positive signals in the observation."""
        return len(self.open_ports) + len(self.reachable_devices)


def scan_host(
    profile: HostProfile,
    ports: Sequence[int],
    *,
    devices: Sequence[str] = (),
) -> ScanObservation:
    """Run a web-based scan against one host profile.

    Only liveness is recorded — the signal available even to SOP-bound
    HTTP probes via the timing side channel (section 4.3.2).
    """
    network = SimulatedNetwork(services=profile.service_table())
    open_ports = tuple(
        port for port in sorted(set(ports))
        if network.connect("127.0.0.1", port).ok
    )
    reachable = tuple(
        device for device in sorted(set(devices))
        if network.connect(device, 80).ok
    )
    return ScanObservation(open_ports=open_ports, reachable_devices=reachable)


@dataclass(slots=True)
class FingerprintStudy:
    """Fingerprinting metrics over a population of scan observations."""

    observations: list[ScanObservation] = field(default_factory=list)

    def add(self, observation: ScanObservation) -> None:
        self.observations.append(observation)

    # -- metrics -----------------------------------------------------------

    def anonymity_sets(self) -> dict[tuple, int]:
        """Observation vector -> number of hosts sharing it."""
        return dict(Counter(o.as_key() for o in self.observations))

    def entropy_bits(self) -> float:
        """Shannon entropy of the observable over the population.

        The paper's claim is that local scans yield "high entropy
        features"; this is that number.  0.0 for an empty or uniform
        population.
        """
        n = len(self.observations)
        if n == 0:
            return 0.0
        entropy = 0.0
        for count in self.anonymity_sets().values():
            p = count / n
            entropy -= p * math.log2(p)
        return entropy

    def max_entropy_bits(self) -> float:
        """Upper bound: log2 of the population size."""
        n = len(self.observations)
        return math.log2(n) if n else 0.0

    def unique_fraction(self) -> float:
        """Fraction of hosts whose observation is population-unique."""
        n = len(self.observations)
        if n == 0:
            return 0.0
        unique = sum(
            count for count in self.anonymity_sets().values() if count == 1
        )
        return unique / n

    def median_anonymity_set(self) -> float:
        """Median size of the anonymity set a host lands in."""
        n = len(self.observations)
        if n == 0:
            return 0.0
        sets = self.anonymity_sets()
        sizes = sorted(sets[o.as_key()] for o in self.observations)
        mid = n // 2
        if n % 2:
            return float(sizes[mid])
        return (sizes[mid - 1] + sizes[mid]) / 2.0


def run_study(
    profiles: Iterable[HostProfile],
    ports: Sequence[int],
    *,
    devices: Sequence[str] = (),
) -> FingerprintStudy:
    """Scan every host profile and collect the fingerprint study."""
    study = FingerprintStudy()
    for profile in profiles:
        study.add(scan_host(profile, ports, devices=devices))
    return study


def synthetic_host_population(
    size: int,
    *,
    seed: int = 7,
    service_pool: Sequence[int] = (),
    adoption: Sequence[float] = (),
) -> list[HostProfile]:
    """Generate a deterministic population of host profiles.

    ``service_pool[i]`` is installed on a host with probability
    ``adoption[i]`` — modelling e.g. "30% of users run Discord, 5% run
    TeamViewer".  A seeded PRNG keeps populations reproducible.
    """
    import random

    if len(service_pool) != len(adoption):
        raise ValueError("service_pool and adoption must align")
    if any(not 0.0 <= p <= 1.0 for p in adoption):
        raise ValueError("adoption rates must be probabilities")
    rng = random.Random(seed)
    profiles = []
    for index in range(size):
        open_ports = frozenset(
            port
            for port, rate in zip(service_pool, adoption)
            if rng.random() < rate
        )
        profiles.append(HostProfile(label=f"host-{index:05d}", open_ports=open_ports))
    return profiles


#: A realistic localhost service pool with adoption rates, assembled from
#: the native applications and remote-control software the paper
#: encountered (Tables 4/5 and Appendix A).
DEFAULT_SERVICE_POOL: tuple[tuple[int, float], ...] = (
    (3389, 0.08),   # Windows RDP enabled
    (5900, 0.04),   # VNC
    (5939, 0.06),   # TeamViewer
    (7070, 0.03),   # AnyDesk
    (6463, 0.30),   # Discord client
    (28337, 0.05),  # FACEIT anti-cheat
    (12071, 0.02),  # GameHouse manager
    (5320, 0.01),   # Screenleap
    (6878, 0.01),   # Ace Stream
    (16422, 0.04),  # iQIYI
    (28317, 0.03),  # Thunder
    (17556, 0.02),  # Edge WebDriver (developers)
    (35729, 0.02),  # LiveReload (developers)
    (8080, 0.07),   # local dev HTTP server
    (3000, 0.06),   # local dev node server
)
