"""Behaviour classification of a site's local-network activity (RQ3).

The classifier runs the signature chain from
:mod:`repro.core.signatures` over the local requests observed for a site,
merging evidence gathered across OSes (the paper classifies the *site*,
while individual behaviours may only manifest on some OSes — e.g.
ThreatMetrix only on Windows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .detector import LocalRequest
from .signatures import (
    BehaviorClass,
    DeveloperErrorKind,
    Signature,
    SignatureMatch,
    default_signatures,
)


@dataclass(frozen=True, slots=True)
class Classification:
    """The verdict for one site."""

    behavior: BehaviorClass
    match: SignatureMatch | None = None

    @property
    def signature_name(self) -> str | None:
        return self.match.signature if self.match else None

    @property
    def dev_error_kind(self) -> DeveloperErrorKind | None:
        return self.match.dev_error_kind if self.match else None


@dataclass(slots=True)
class ClassifierStats:
    """Counters over a classification run, for reporting and tests."""

    total: int = 0
    by_behavior: dict[BehaviorClass, int] = field(default_factory=dict)

    def record(self, verdict: Classification) -> None:
        self.total += 1
        self.by_behavior[verdict.behavior] = (
            self.by_behavior.get(verdict.behavior, 0) + 1
        )


class BehaviorClassifier:
    """Signature-chain classifier over per-site local requests.

    The chain is evaluated in order and the first match wins; sites whose
    traffic matches nothing are classified UNKNOWN — exactly the residual
    category the paper could not explain (Appendix C).
    """

    def __init__(self, signatures: Sequence[Signature] | None = None) -> None:
        self._signatures: tuple[Signature, ...] = tuple(
            signatures if signatures is not None else default_signatures()
        )
        self.stats = ClassifierStats()

    @property
    def signatures(self) -> tuple[Signature, ...]:
        return self._signatures

    def classify(self, requests: Sequence[LocalRequest]) -> Classification:
        """Classify the merged local requests of one site.

        Candidate-derived WebRTC requests are excluded before the chain
        runs: the signatures encode HTTP/WS probing behaviours (port
        scans, LAN sweeps, native-app endpoints), and ICE candidate
        traffic would otherwise tip host-count thresholds and move sites
        between paper-table categories whenever the channel is enabled.
        """
        requests = [r for r in requests if r.scheme != "webrtc"]
        for signature in self._signatures:
            match = signature.match(requests)
            if match is not None:
                verdict = Classification(behavior=match.behavior, match=match)
                self.stats.record(verdict)
                return verdict
        verdict = Classification(behavior=BehaviorClass.UNKNOWN)
        self.stats.record(verdict)
        return verdict

    def classify_per_os(
        self, per_os_requests: Mapping[str, Sequence[LocalRequest]]
    ) -> Classification:
        """Classify a site from evidence split across OSes.

        All requests are pooled: a behaviour that only manifests on one OS
        (the common case — section 4.1) still determines the site verdict.
        """
        merged: list[LocalRequest] = []
        for requests in per_os_requests.values():
            merged.extend(requests)
        return self.classify(merged)
