"""Classification of request destinations as localhost, LAN, or public.

The paper's detection rule (section 4): a request is *localhost activity*
when its destination is the literal ``localhost`` domain or a loopback IP
(127.0.0.0/8 for IPv4, ``::1`` for IPv6); it is *LAN activity* when the
destination is an IP inside the IANA-reserved private ranges of RFC 1918
(10/8, 172.16/12, 192.168/16) or their IPv6 analogues (unique-local
fc00::/7, link-local fe80::/10).  Everything else — including private
*hostnames* that merely resolve to private IPs, which the paper cannot see
from NetLog URLs alone — is public.

This module is pure and dependency-free so it can be reused against real
Chrome NetLog dumps.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass
from urllib.parse import urlsplit

from ..netlog.constants import DEFAULT_PORTS


class Locality(enum.Enum):
    """Where a request destination lives, from the browser's perspective."""

    LOCALHOST = "localhost"
    LAN = "lan"
    PUBLIC = "public"

    @property
    def is_local(self) -> bool:
        """True for destinations inside the user's machine or LAN."""
        return self is not Locality.PUBLIC


#: Hostnames treated as loopback without resolution.  Chrome resolves
#: ``localhost`` (and subdomains of it, per RFC 6761) to loopback without
#: consulting DNS, so the paper counts them as localhost activity directly.
_LOOPBACK_NAMES = frozenset({"localhost", "localhost.localdomain"})

_PRIVATE_V4_NETWORKS = (
    ipaddress.ip_network("10.0.0.0/8"),
    ipaddress.ip_network("172.16.0.0/12"),
    ipaddress.ip_network("192.168.0.0/16"),
)
_LINK_LOCAL_V4 = ipaddress.ip_network("169.254.0.0/16")
_PRIVATE_V6_NETWORKS = (
    ipaddress.ip_network("fc00::/7"),  # unique local addresses
    ipaddress.ip_network("fe80::/10"),  # link local
)


def parse_ip(host: str) -> ipaddress.IPv4Address | ipaddress.IPv6Address | None:
    """Parse ``host`` as an IP literal, tolerating URL bracket syntax.

    Returns None when the host is a domain name rather than an address.
    """
    candidate = host.strip()
    if candidate.startswith("[") and candidate.endswith("]"):
        candidate = candidate[1:-1]
    try:
        return ipaddress.ip_address(candidate)
    except ValueError:
        return None


def classify_host(host: str) -> Locality:
    """Classify a bare hostname or IP literal.

    >>> classify_host("localhost")
    <Locality.LOCALHOST: 'localhost'>
    >>> classify_host("192.168.1.8")
    <Locality.LAN: 'lan'>
    >>> classify_host("example.com")
    <Locality.PUBLIC: 'public'>
    """
    if not host:
        return Locality.PUBLIC
    name = host.strip().rstrip(".").lower()
    if name in _LOOPBACK_NAMES or name.endswith(".localhost"):
        return Locality.LOCALHOST
    ip = parse_ip(name)
    if ip is None:
        return Locality.PUBLIC
    if ip.is_loopback:
        return Locality.LOCALHOST
    if ip.version == 4:
        if any(ip in network for network in _PRIVATE_V4_NETWORKS):
            return Locality.LAN
        if ip in _LINK_LOCAL_V4:
            return Locality.LAN
        return Locality.PUBLIC
    # IPv6: unique-local and link-local count as LAN; the paper observed no
    # IPv6 local traffic in practice but the detection rule covers it.
    if any(ip in network for network in _PRIVATE_V6_NETWORKS):
        return Locality.LAN
    if ip.ipv4_mapped is not None:
        return classify_host(str(ip.ipv4_mapped))
    return Locality.PUBLIC


@dataclass(frozen=True, slots=True)
class RequestTarget:
    """A parsed request destination: scheme, host, port, path(+query)."""

    scheme: str
    host: str
    port: int
    path: str
    locality: Locality

    @property
    def is_local(self) -> bool:
        return self.locality.is_local

    @property
    def origin(self) -> str:
        """The web origin string (scheme://host:port)."""
        return f"{self.scheme}://{self.host}:{self.port}"

    def url(self) -> str:
        """Reassemble the full URL."""
        default = DEFAULT_PORTS.get(self.scheme)
        netloc = self.host if self.port == default else f"{self.host}:{self.port}"
        return f"{self.scheme}://{netloc}{self.path}"


class TargetParseError(ValueError):
    """Raised when a URL cannot be interpreted as a request target."""


def parse_target(url: str) -> RequestTarget:
    """Parse a URL into a :class:`RequestTarget`.

    Handles the four schemes a webpage can direct network requests through
    (http, https, ws, wss), default ports, IPv6 bracket literals, and
    trailing-dot hostnames.

    Raises
    ------
    TargetParseError
        If the URL has no usable scheme/host or an invalid port.
    """
    parts = urlsplit(url)
    scheme = parts.scheme.lower()
    if scheme not in DEFAULT_PORTS:
        raise TargetParseError(f"unsupported scheme in {url!r}")
    host = (parts.hostname or "").lower()
    if not host:
        raise TargetParseError(f"no host in {url!r}")
    try:
        port = parts.port
    except ValueError as exc:
        raise TargetParseError(f"invalid port in {url!r}") from exc
    if port is None:
        port = DEFAULT_PORTS[scheme]
    path = parts.path or "/"
    if parts.query:
        path = f"{path}?{parts.query}"
    return RequestTarget(
        scheme=scheme,
        host=host,
        port=port,
        path=path,
        locality=classify_host(host),
    )


def classify_url(url: str) -> Locality:
    """Classify a full URL's destination; PUBLIC for unparseable URLs.

    The forgiving error handling matches the measurement posture: a crawl
    must not abort because one site emitted a malformed URL.
    """
    try:
        return parse_target(url).locality
    except TargetParseError:
        return Locality.PUBLIC
