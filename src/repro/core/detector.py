"""Local-traffic detection: the paper's core measurement primitive.

Given the NetLog event stream captured while a page loaded, the detector
finds every request whose destination — directly or via a redirect hop —
is the visitor's localhost or a LAN (RFC 1918 / IPv6-local) address, and
summarises them as :class:`LocalRequest` records plus a per-page
:class:`DetectionResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..netlog.events import NetLogEvent
from .addresses import (
    Locality,
    RequestTarget,
    TargetParseError,
    classify_host,
    parse_target,
)
from .flows import FlowAssembler, RequestFlow


@dataclass(frozen=True, slots=True)
class LocalRequest:
    """One locally-bound request observed on a page."""

    target: RequestTarget
    time: float | None
    source_id: int
    method: str = "GET"
    via_redirect: bool = False
    initiator: str | None = None

    @property
    def locality(self) -> Locality:
        return self.target.locality

    @property
    def scheme(self) -> str:
        return self.target.scheme

    @property
    def port(self) -> int:
        return self.target.port

    @property
    def host(self) -> str:
        return self.target.host

    @property
    def path(self) -> str:
        return self.target.path


@dataclass(slots=True)
class DetectionResult:
    """Local traffic found on a single page load."""

    requests: list[LocalRequest] = field(default_factory=list)
    page_load_time: float | None = None
    total_flows: int = 0

    @property
    def has_local_activity(self) -> bool:
        return bool(self.requests)

    @property
    def localhost_requests(self) -> list[LocalRequest]:
        return [r for r in self.requests if r.locality is Locality.LOCALHOST]

    @property
    def lan_requests(self) -> list[LocalRequest]:
        return [r for r in self.requests if r.locality is Locality.LAN]

    def first_local_request_delay_ms(self, locality: Locality) -> float | None:
        """Delay from page fetch to first local request of the given kind.

        This is the quantity plotted in Figures 5–7.  None when the page
        load anchor or a timestamp is missing, or no matching request
        exists.
        """
        if self.page_load_time is None:
            return None
        times = [
            r.time
            for r in self.requests
            if r.locality is locality and r.time is not None
        ]
        if not times:
            return None
        return min(times) - self.page_load_time

    def ports(self, locality: Locality | None = None) -> set[int]:
        """Distinct destination ports, optionally restricted by locality."""
        return {
            r.port
            for r in self.requests
            if locality is None or r.locality is locality
        }

    def schemes(self, locality: Locality | None = None) -> set[str]:
        """Distinct request schemes, optionally restricted by locality."""
        return {
            r.scheme
            for r in self.requests
            if locality is None or r.locality is locality
        }


class LocalTrafficDetector:
    """Finds localhost/LAN-bound requests in NetLog telemetry.

    Parameters
    ----------
    include_redirects:
        When True (the paper's setting), a request to a public URL that
        *redirects* to a local destination also counts — the browser emits
        the local request even though the response may be unreadable.
    webrtc_channel:
        When True (default), ICE candidates and STUN binding checks from
        simulated RTCPeerConnection flows are scanned too: a host
        candidate carrying a raw private address (the pre-M74 leak) and
        any check to a loopback/RFC 1918 peer become ``webrtc``-scheme
        local requests.  mDNS ``<uuid>.local`` candidates classify as
        PUBLIC and never count.  Off, WebRTC flows are ignored entirely
        (the channel-ablation baseline).
    """

    def __init__(
        self, *, include_redirects: bool = True, webrtc_channel: bool = True
    ) -> None:
        self._include_redirects = include_redirects
        self._webrtc_channel = webrtc_channel

    def detect(self, events: Iterable[NetLogEvent]) -> DetectionResult:
        """Run detection over a raw NetLog event stream.

        Batch wrapper over the streaming engine: the events are fed once
        through a :class:`DetectionSink` (flow assembly and the
        page-load anchor fold in the same pass).
        """
        sink = self.sink()
        for event in events:
            sink.accept(event)
        return sink.finish()

    def sink(self) -> "DetectionSink":
        """A fresh streaming-detection sink bound to this detector."""
        return DetectionSink(self)

    def detect_flows(
        self,
        flows: list[RequestFlow],
        *,
        page_load_time: float | None = None,
    ) -> DetectionResult:
        """Run detection over pre-extracted request flows."""
        result = DetectionResult(
            page_load_time=page_load_time, total_flows=len(flows)
        )
        for flow in flows:
            result.requests.extend(self._scan_flow(flow))
        result.requests.sort(
            key=lambda r: (r.time if r.time is not None else float("inf"), r.source_id)
        )
        return result

    def _scan_flow(self, flow: RequestFlow) -> list[LocalRequest]:
        if flow.is_webrtc:
            return self._scan_webrtc_flow(flow) if self._webrtc_channel else []
        found: list[LocalRequest] = []
        target = flow.target()
        if target is not None and target.is_local:
            found.append(
                LocalRequest(
                    target=target,
                    time=flow.begin_time,
                    source_id=flow.source_id,
                    method=flow.method,
                    via_redirect=False,
                    initiator=flow.initiator,
                )
            )
        if self._include_redirects:
            for hop in flow.redirect_chain:
                try:
                    hop_target = parse_target(hop)
                except TargetParseError:
                    continue
                if hop_target.is_local:
                    found.append(
                        LocalRequest(
                            target=hop_target,
                            time=flow.begin_time,
                            source_id=flow.source_id,
                            method=flow.method,
                            via_redirect=True,
                            initiator=flow.initiator,
                        )
                    )
        return found

    def _scan_webrtc_flow(self, flow: RequestFlow) -> list[LocalRequest]:
        """Candidate- and check-derived local requests of one ICE session.

        WebRTC targets never come from URLs (``parse_target`` knows no
        ``webrtc`` scheme), so the :class:`RequestTarget` is constructed
        directly.  Host candidates count only when they expose a raw
        local address — an mDNS name is a domain and classifies PUBLIC,
        which is exactly the obfuscation mechanism.  srflx candidates are
        public by construction.  Every STUN binding check to an explicit
        loopback/RFC 1918 peer counts in both policy eras.
        """
        found: list[LocalRequest] = []
        for ctype, address, port, time in flow.candidates:
            if ctype != "host":
                continue
            locality = classify_host(address)
            if not locality.is_local:
                continue
            found.append(
                LocalRequest(
                    target=RequestTarget(
                        scheme="webrtc",
                        host=address,
                        port=port,
                        path="",
                        locality=locality,
                    ),
                    time=time,
                    source_id=flow.source_id,
                    method="CANDIDATE",
                    via_redirect=False,
                    initiator=flow.initiator,
                )
            )
        for host, port, time in flow.stun_checks:
            locality = classify_host(host)
            if not locality.is_local:
                continue
            found.append(
                LocalRequest(
                    target=RequestTarget(
                        scheme="webrtc",
                        host=host,
                        port=port,
                        path="",
                        locality=locality,
                    ),
                    time=time,
                    source_id=flow.source_id,
                    method="STUN",
                    via_redirect=False,
                    initiator=flow.initiator,
                )
            )
        return found


class DetectionSink:
    """Streaming local-traffic detection over one visit's event stream.

    An :class:`~repro.netlog.pipeline.EventSink`: events fold into flow
    summaries as they arrive (``keep_events=False`` — memory stays
    O(open flows), independent of the event count), and ``finish`` runs
    the locality scan over the assembled flows.  Produces a
    :class:`DetectionResult` identical to ``detector.detect(events)`` on
    the same stream.
    """

    __slots__ = ("_detector", "_assembler", "_finished")

    def __init__(self, detector: LocalTrafficDetector) -> None:
        self._detector = detector
        self._assembler = FlowAssembler(keep_events=False)
        self._finished = False

    def accept(self, event: NetLogEvent) -> None:
        if self._finished:
            raise RuntimeError(
                "DetectionSink.accept() after finish(); build a fresh sink "
                "per stream"
            )
        self._assembler.accept(event)

    def finish(self) -> DetectionResult:
        if self._finished:
            raise RuntimeError(
                "DetectionSink.finish() called twice; build a fresh sink "
                "per stream"
            )
        self._finished = True
        return self._detector.detect_flows(
            self._assembler.finish(),
            page_load_time=self._assembler.page_load_time,
        )
