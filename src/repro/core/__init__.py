"""Core library: local-traffic detection and behaviour classification.

This package is the paper's primary contribution as reusable code.  It is
independent of the simulation substrate — feed it parsed NetLog events
(from :mod:`repro.netlog.parser`, including logs captured from real Chrome)
and it will find locally-bound requests and attribute them to the paper's
behaviour taxonomy.
"""

from .addresses import (
    Locality,
    RequestTarget,
    TargetParseError,
    classify_host,
    classify_url,
    parse_target,
)
from .classifier import BehaviorClassifier, Classification
from .detector import (
    DetectionResult,
    DetectionSink,
    LocalRequest,
    LocalTrafficDetector,
)
from .fingerprint import (
    DEFAULT_SERVICE_POOL,
    FingerprintStudy,
    HostProfile,
    ScanObservation,
    run_study,
    scan_host,
    synthetic_host_population,
)
from .flows import FlowAssembler, RequestFlow, extract_flows, page_load_time
from .ports import (
    BIGIP_ASM_PORTS,
    DEFAULT_REGISTRY,
    THREATMETRIX_PORTS,
    PortRegistry,
    PortService,
    ScanPurpose,
)
from .report import (
    OS_ORDER,
    SiteFinding,
    findings_with_activity,
    os_overlap_partition,
    per_os_totals,
)
from .signatures import (
    BIGIP_ASM_SIGNATURE,
    CENSORSHIP_SIGNATURE,
    LAN_SWEEP_SIGNATURE,
    NATIVE_APP_SIGNATURES,
    THREATMETRIX_SIGNATURE,
    BehaviorClass,
    DeveloperErrorKind,
    DeveloperErrorSignature,
    EndpointSignature,
    PortScanSignature,
    Signature,
    SignatureMatch,
    default_signatures,
)

__all__ = [
    "DEFAULT_SERVICE_POOL",
    "FingerprintStudy",
    "HostProfile",
    "ScanObservation",
    "run_study",
    "scan_host",
    "synthetic_host_population",
    "CENSORSHIP_SIGNATURE",
    "LAN_SWEEP_SIGNATURE",
    "Locality",
    "RequestTarget",
    "TargetParseError",
    "classify_host",
    "classify_url",
    "parse_target",
    "BehaviorClassifier",
    "Classification",
    "DetectionResult",
    "DetectionSink",
    "LocalRequest",
    "LocalTrafficDetector",
    "FlowAssembler",
    "RequestFlow",
    "extract_flows",
    "page_load_time",
    "BIGIP_ASM_PORTS",
    "DEFAULT_REGISTRY",
    "THREATMETRIX_PORTS",
    "PortRegistry",
    "PortService",
    "ScanPurpose",
    "OS_ORDER",
    "SiteFinding",
    "findings_with_activity",
    "os_overlap_partition",
    "per_os_totals",
    "BIGIP_ASM_SIGNATURE",
    "NATIVE_APP_SIGNATURES",
    "THREATMETRIX_SIGNATURE",
    "BehaviorClass",
    "DeveloperErrorKind",
    "DeveloperErrorSignature",
    "EndpointSignature",
    "PortScanSignature",
    "Signature",
    "SignatureMatch",
    "default_signatures",
]
