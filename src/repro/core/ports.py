"""Port → service knowledge base (paper Table 4 plus an IANA-style registry).

The paper maps the localhost ports scanned by fraud- and bot-detection
scripts to the services (or malware) that conventionally listen on them,
using IANA's Service Name and Transport Protocol Port Number Registry and
the SANS ISC port database.  This module encodes that mapping, exposes
lookups, and distinguishes the two scan profiles the paper identified:

* the **ThreatMetrix** (LexisNexis) fraud-detection profile — 14 WSS probes
  aimed at remote-desktop/remote-control software ports;
* the **BIG-IP ASM Bot Defense** (F5) profile — 7 HTTP probes aimed at
  well-known malware and browser-automation ports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ScanPurpose(enum.Enum):
    """Why an anti-abuse script probes a given port (Table 4's last column)."""

    FRAUD_DETECTION = "fraud detection"
    BOT_DETECTION = "bot detection"


@dataclass(frozen=True, slots=True)
class PortService:
    """One row of the port knowledge base."""

    port: int
    service: str
    purpose: ScanPurpose
    is_malware: bool = False

    def describe(self) -> str:
        prefix = "Malware: " if self.is_malware else ""
        return f"{self.port}: {prefix}{self.service} ({self.purpose.value})"


def _rows() -> list[PortService]:
    fraud = ScanPurpose.FRAUD_DETECTION
    bot = ScanPurpose.BOT_DETECTION
    return [
        PortService(3389, "Windows Remote Desktop", fraud),
        PortService(4444, "CrackDown, Prosiak, Swift Remote", bot, is_malware=True),
        PortService(4653, "Cero", bot, is_malware=True),
        PortService(5555, "ServeMe", bot, is_malware=True),
        PortService(5279, "Unknown", fraud),
        PortService(5900, "Remote Framebuffer (e.g., VNC)", fraud),
        PortService(5901, "Remote Framebuffer (e.g., VNC)", fraud),
        PortService(5902, "Remote Framebuffer (e.g., VNC)", fraud),
        PortService(5903, "Remote Framebuffer (e.g., VNC)", fraud),
        PortService(5931, "AMMYY Remote Control", fraud),
        PortService(5939, "TeamViewer", fraud),
        PortService(5944, "Unknown (likely VNC)", fraud),
        PortService(5950, "Cisco Remote Expert Manager", fraud),
        PortService(6039, "X Window System", fraud),
        PortService(6040, "X Window System", fraud),
        PortService(63333, "Tripp Lite PowerAlert UPS", fraud),
        PortService(7054, "QuickTime Streaming Server", bot),
        PortService(7055, "QuickTime Streaming Server", bot),
        PortService(7070, "AnyDesk Remote Desktop", fraud),
        PortService(9515, "W32.Loxbot.A", bot, is_malware=True),
        PortService(17556, "Microsoft Edge WebDriver", bot),
    ]


class PortRegistry:
    """Queryable registry over the Table 4 knowledge base.

    The registry is intentionally open: callers may :meth:`register`
    additional mappings (e.g. native-application control ports discovered
    during analysis) without mutating the canonical table, because each
    instance owns its rows.
    """

    def __init__(self, rows: list[PortService] | None = None) -> None:
        self._by_port: dict[int, PortService] = {}
        for row in rows if rows is not None else _rows():
            self.register(row)

    def register(self, row: PortService) -> None:
        """Add or replace the entry for ``row.port``."""
        if not 0 < row.port <= 65535:
            raise ValueError(f"invalid port {row.port}")
        self._by_port[row.port] = row

    def lookup(self, port: int) -> PortService | None:
        """The known service on ``port``, or None."""
        return self._by_port.get(port)

    def service_name(self, port: int) -> str:
        row = self.lookup(port)
        return row.service if row else "Unknown"

    def ports_for(self, purpose: ScanPurpose) -> frozenset[int]:
        """All ports associated with a scan purpose."""
        return frozenset(
            port for port, row in self._by_port.items() if row.purpose is purpose
        )

    def malware_ports(self) -> frozenset[int]:
        """Ports conventionally used by known malware."""
        return frozenset(
            port for port, row in self._by_port.items() if row.is_malware
        )

    def __len__(self) -> int:
        return len(self._by_port)

    def rows(self) -> list[PortService]:
        """All rows, sorted by port (Table 4 order)."""
        return sorted(self._by_port.values(), key=lambda row: row.port)


#: Module-level registry with the canonical Table 4 contents.
DEFAULT_REGISTRY = PortRegistry()

#: The 14 localhost ports the ThreatMetrix fraud-detection script probes
#: over WSS on Windows (section 4.3.1).
THREATMETRIX_PORTS: tuple[int, ...] = (
    3389, 5279, 5900, 5901, 5902, 5903, 5931, 5939, 5944, 5950, 6039, 6040,
    63333, 7070,
)

#: The 7 localhost ports BIG-IP ASM Bot Defense probes over HTTP on
#: Windows (section 4.3.2).
BIGIP_ASM_PORTS: tuple[int, ...] = (4444, 4653, 5555, 7054, 7055, 9515, 17556)

assert frozenset(THREATMETRIX_PORTS) == DEFAULT_REGISTRY.ports_for(
    ScanPurpose.FRAUD_DETECTION
)
assert frozenset(BIGIP_ASM_PORTS) == DEFAULT_REGISTRY.ports_for(
    ScanPurpose.BOT_DETECTION
)
