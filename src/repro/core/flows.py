"""Flow extraction: NetLog events → logical network requests.

Chrome's NetLog assigns a serial *source id* to each network operation and
tags every dependent event with it (section 3.1 of the paper).  This module
folds an event stream into :class:`RequestFlow` objects — one per source —
each carrying the request URL, method, scheme, destination, begin/end
times, any redirect chain, and the terminal error if the request failed.

Browser-internal sources are dropped here, mirroring the paper's filtering
of traffic Chrome generates for itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlog.constants import EventPhase, EventType
from ..netlog.events import NetLogEvent
from .addresses import RequestTarget, TargetParseError, parse_target


@dataclass(slots=True)
class RequestFlow:
    """All NetLog activity for one logical network request."""

    source_id: int
    url: str | None = None
    method: str = "GET"
    begin_time: float | None = None
    end_time: float | None = None
    redirect_chain: list[str] = field(default_factory=list)
    net_error: int | None = None
    initiator: str | None = None
    events: list[NetLogEvent] = field(default_factory=list)
    is_websocket: bool = False

    @property
    def duration_ms(self) -> float | None:
        """Wall-clock duration of the flow, when both endpoints are known."""
        if self.begin_time is None or self.end_time is None:
            return None
        return self.end_time - self.begin_time

    @property
    def failed(self) -> bool:
        return self.net_error is not None and self.net_error != 0

    def target(self) -> RequestTarget | None:
        """Parsed destination of the request, or None when unparsable."""
        if not self.url:
            return None
        try:
            return parse_target(self.url)
        except TargetParseError:
            return None

    def all_urls(self) -> list[str]:
        """The request URL plus every redirect hop, in order.

        The paper counts a site as generating local traffic even when the
        local destination only appears as a redirect target ("websites can
        send a request to a local resource, even if they can never receive
        the response"), so analyses must consider the full chain.
        """
        urls = [self.url] if self.url else []
        urls.extend(self.redirect_chain)
        return urls


def extract_flows(events: list[NetLogEvent]) -> list[RequestFlow]:
    """Group an event stream into request flows by source id.

    Flows appear in the order their first event appears in the log, which —
    because Chrome allocates source ids serially — is also source-id order
    for well-formed logs.
    """
    flows: dict[int, RequestFlow] = {}
    for event in events:
        if event.source.is_browser_internal():
            continue
        flow = flows.get(event.source.id)
        if flow is None:
            flow = RequestFlow(source_id=event.source.id)
            flows[event.source.id] = flow
        flow.events.append(event)
        _apply_event(flow, event)
    return list(flows.values())


def _apply_event(flow: RequestFlow, event: NetLogEvent) -> None:
    """Fold one event into its flow's summary fields."""
    if event.type is EventType.URL_REQUEST_START_JOB:
        if event.phase is not EventPhase.END:
            if flow.url is None:
                flow.url = event.url
                flow.begin_time = event.time
            method = event.params.get("method")
            if isinstance(method, str):
                flow.method = method
            initiator = event.params.get("initiator")
            if isinstance(initiator, str):
                flow.initiator = initiator
    elif event.type is EventType.URL_REQUEST_REDIRECTED:
        location = event.params.get("location")
        if isinstance(location, str):
            flow.redirect_chain.append(location)
    elif event.type is EventType.WEB_SOCKET_SEND_HANDSHAKE_REQUEST:
        flow.is_websocket = True
        if flow.url is None:
            flow.url = event.url
            flow.begin_time = event.time
        initiator = event.params.get("initiator")
        if isinstance(initiator, str):
            flow.initiator = initiator
    elif event.type in (
        EventType.SOCKET_ERROR,
        EventType.CANCELLED,
    ):
        error = event.net_error
        if error is not None:
            flow.net_error = error
    if event.type is EventType.REQUEST_ALIVE and event.phase is EventPhase.END:
        flow.end_time = event.time
        error = event.net_error
        if error is not None and flow.net_error is None:
            flow.net_error = error
    elif flow.end_time is None or event.time > flow.end_time:
        # Track the latest event time as a fallback end marker so duration
        # is meaningful even for flows the log truncated mid-request (the
        # 20-second monitoring window cuts long-lived sockets short).
        if flow.begin_time is not None and event.time >= flow.begin_time:
            flow.end_time = event.time


def page_load_time(events: list[NetLogEvent]) -> float | None:
    """Timestamp at which the page navigation committed, if recorded.

    Figures 5–7 measure delays relative to "when a landing page is
    fetched"; this anchor is that reference point.
    """
    for event in events:
        if event.type is EventType.PAGE_LOAD_COMMITTED:
            return event.time
    return None
