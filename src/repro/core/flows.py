"""Flow extraction: NetLog events → logical network requests.

Chrome's NetLog assigns a serial *source id* to each network operation and
tags every dependent event with it (section 3.1 of the paper).  This module
folds an event stream into :class:`RequestFlow` objects — one per source —
each carrying the request URL, method, scheme, destination, begin/end
times, any redirect chain, and the terminal error if the request failed.

:class:`FlowAssembler` is the single flow-construction engine: an
:class:`~repro.netlog.pipeline.EventSink` that folds events into flows
one at a time (tracking the page-load anchor in the same pass), shared by
the batch API (:func:`extract_flows`), the detector, the streaming
parser, and fsck's reparse tier.

Browser-internal sources are dropped here, mirroring the paper's filtering
of traffic Chrome generates for itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..netlog.constants import EventPhase, EventType
from ..netlog.events import NetLogEvent
from .addresses import RequestTarget, TargetParseError, parse_target

#: Sentinel for "target not computed yet" (None is a valid cached result).
_TARGET_UNSET = object()


@dataclass(slots=True)
class RequestFlow:
    """All NetLog activity for one logical network request."""

    source_id: int
    url: str | None = None
    method: str = "GET"
    begin_time: float | None = None
    end_time: float | None = None
    redirect_chain: list[str] = field(default_factory=list)
    net_error: int | None = None
    initiator: str | None = None
    events: list[NetLogEvent] = field(default_factory=list)
    is_websocket: bool = False
    #: True for a simulated RTCPeerConnection source (100-range events).
    is_webrtc: bool = False
    #: Policy era the ICE session ran under ("pre-m74" | "mdns").
    webrtc_policy: str | None = None
    #: ICE candidates gathered: ``(candidate_type, address, port, time)``.
    #: ``address`` is a raw IP pre-M74 or an ``<uuid>.local`` name after.
    candidates: list[tuple[str, str, int, float]] = field(default_factory=list)
    #: STUN binding checks issued: ``(host, port, time)``.
    stun_checks: list[tuple[str, int, float]] = field(default_factory=list)
    # target() memo: the parsed destination (or the None outcome of a
    # TargetParseError) for the URL it was computed from.  Invalidated by
    # comparing against the URL, since assembly can set ``url`` after a
    # caller has already probed an incomplete flow.
    _target_cache: object = field(
        default=_TARGET_UNSET, init=False, repr=False, compare=False
    )
    _target_url: str | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def duration_ms(self) -> float | None:
        """Wall-clock duration of the flow, when both endpoints are known."""
        if self.begin_time is None or self.end_time is None:
            return None
        return self.end_time - self.begin_time

    @property
    def failed(self) -> bool:
        return self.net_error is not None and self.net_error != 0

    def target(self) -> RequestTarget | None:
        """Parsed destination of the request, or None when unparsable.

        The parse (including a :class:`TargetParseError` outcome) is
        memoized per URL — detection and classification probe the target
        repeatedly, and re-parsing dominated their hot path.
        """
        if not self.url:
            return None
        if self._target_cache is _TARGET_UNSET or self._target_url != self.url:
            self._target_url = self.url
            try:
                self._target_cache = parse_target(self.url)
            except TargetParseError:
                self._target_cache = None
        return self._target_cache  # type: ignore[return-value]

    def all_urls(self) -> list[str]:
        """The request URL plus every redirect hop, in order.

        The paper counts a site as generating local traffic even when the
        local destination only appears as a redirect target ("websites can
        send a request to a local resource, even if they can never receive
        the response"), so analyses must consider the full chain.
        """
        urls = [self.url] if self.url else []
        urls.extend(self.redirect_chain)
        return urls


class FlowAssembler:
    """Incremental flow construction — the pipeline's folding engine.

    An :class:`~repro.netlog.pipeline.EventSink`: events are folded into
    their flows one at a time, and the page-load-commit anchor (the
    reference point of Figures 5–7) is captured in the same pass, so one
    walk over the stream replaces the separate ``extract_flows`` +
    ``page_load_time`` re-walks.

    ``keep_events=False`` drops the raw per-flow event lists, shrinking
    memory to the flow *summaries* — O(flows), independent of how many
    events each flow carried.  Detection runs in that mode; the batch
    :func:`extract_flows` keeps events for callers that inspect them.

    Order tolerance: correctness does not require sorted input (flows key
    on source ids), but summary fields that resolve ties by first-seen
    order (``url``, ``begin_time``) follow the delivery order, exactly as
    the batch walk always has.
    """

    __slots__ = ("_flows", "page_load_time", "events_seen", "_keep_events")

    def __init__(self, *, keep_events: bool = True) -> None:
        self._flows: dict[int, RequestFlow] = {}
        #: Timestamp of the page navigation commit, if seen yet.
        self.page_load_time: float | None = None
        #: Every event accepted, including browser-internal ones.
        self.events_seen = 0
        self._keep_events = keep_events

    def accept(self, event: NetLogEvent) -> None:
        """Fold one event into its flow."""
        self.events_seen += 1
        if (
            self.page_load_time is None
            and event.type is EventType.PAGE_LOAD_COMMITTED
        ):
            self.page_load_time = event.time
        if event.source.is_browser_internal():
            return
        flow = self._flows.get(event.source.id)
        if flow is None:
            flow = RequestFlow(source_id=event.source.id)
            self._flows[event.source.id] = flow
        if self._keep_events:
            flow.events.append(event)
        _apply_event(flow, event)

    def finish(self) -> list[RequestFlow]:
        """The assembled flows, in first-event order."""
        return list(self._flows.values())

    @property
    def open_flows(self) -> int:
        """Flows assembled so far (the pipeline's working-set size)."""
        return len(self._flows)


def extract_flows(events: Iterable[NetLogEvent]) -> list[RequestFlow]:
    """Group an event stream into request flows by source id.

    Batch wrapper over :class:`FlowAssembler`.  Flows appear in the order
    their first event appears in the log, which — because Chrome
    allocates source ids serially — is also source-id order for
    well-formed logs.
    """
    assembler = FlowAssembler()
    for event in events:
        assembler.accept(event)
    return assembler.finish()


def _apply_event(flow: RequestFlow, event: NetLogEvent) -> None:
    """Fold one event into its flow's summary fields."""
    if event.type is EventType.URL_REQUEST_START_JOB:
        if event.phase is not EventPhase.END:
            if flow.url is None:
                flow.url = event.url
                flow.begin_time = event.time
            method = event.params.get("method")
            if isinstance(method, str):
                flow.method = method
            initiator = event.params.get("initiator")
            if isinstance(initiator, str):
                flow.initiator = initiator
    elif event.type is EventType.URL_REQUEST_REDIRECTED:
        location = event.params.get("location")
        if isinstance(location, str):
            flow.redirect_chain.append(location)
    elif event.type is EventType.WEB_SOCKET_SEND_HANDSHAKE_REQUEST:
        flow.is_websocket = True
        if flow.url is None:
            flow.url = event.url
            flow.begin_time = event.time
        initiator = event.params.get("initiator")
        if isinstance(initiator, str):
            flow.initiator = initiator
    elif event.type in (
        EventType.SOCKET_ERROR,
        EventType.CANCELLED,
    ):
        error = event.net_error
        if error is not None:
            flow.net_error = error
    elif event.type is EventType.ICE_GATHERING:
        flow.is_webrtc = True
        if event.phase is not EventPhase.END:
            if flow.begin_time is None:
                flow.begin_time = event.time
            policy = event.params.get("policy")
            if isinstance(policy, str):
                flow.webrtc_policy = policy
            initiator = event.params.get("initiator")
            if isinstance(initiator, str):
                flow.initiator = initiator
    elif event.type is EventType.ICE_CANDIDATE_GATHERED:
        flow.is_webrtc = True
        ctype = event.params.get("candidate_type")
        address = event.params.get("address")
        port = event.params.get("port")
        if isinstance(ctype, str) and isinstance(address, str) and isinstance(port, int):
            flow.candidates.append((ctype, address, port, event.time))
    elif event.type is EventType.STUN_BINDING_REQUEST:
        flow.is_webrtc = True
        host = event.params.get("host")
        port = event.params.get("port")
        if isinstance(host, str) and isinstance(port, int):
            flow.stun_checks.append((host, port, event.time))
    if event.type is EventType.REQUEST_ALIVE and event.phase is EventPhase.END:
        flow.end_time = event.time
        error = event.net_error
        if error is not None and flow.net_error is None:
            flow.net_error = error
    elif flow.end_time is None or event.time > flow.end_time:
        # Track the latest event time as a fallback end marker so duration
        # is meaningful even for flows the log truncated mid-request (the
        # 20-second monitoring window cuts long-lived sockets short).
        if flow.begin_time is not None and event.time >= flow.begin_time:
            flow.end_time = event.time


def page_load_time(events: Iterable[NetLogEvent]) -> float | None:
    """Timestamp at which the page navigation committed, if recorded.

    Figures 5–7 measure delays relative to "when a landing page is
    fetched"; this anchor is that reference point.  Streaming consumers
    get the same anchor from :attr:`FlowAssembler.page_load_time` without
    a second walk.
    """
    for event in events:
        if event.type is EventType.PAGE_LOAD_COMMITTED:
            return event.time
    return None
