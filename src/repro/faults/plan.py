"""Fault plans: seeded, serialisable schedules of pipeline faults.

A plan is a seed plus a list of :class:`FaultSpec` entries.  Whether a
given opportunity (a DNS lookup for ``example.com``, the 512th visit of a
campaign, ...) is faulted is a pure function of ``(seed, kind, key)`` — no
shared RNG state — so the same plan produces the same injected-failure
schedule regardless of evaluation order, process, or how many other fault
kinds are active.  That determinism is what lets the chaos benches assert
Table 1/5 invariance under injection.

Plans serialise to JSON (``repro study --fault-plan plan.json``)::

    {
      "seed": "chaos-2026",
      "faults": [
        {"kind": "dns", "rate": 0.05, "times": 2},
        {"kind": "reset", "rate": 0.02},
        {"kind": "outage", "at_count": 40, "duration": 2},
        {"kind": "crash", "at_count": 500}
      ]
    }
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import IO, Iterable, Sequence


class FaultKind(str, enum.Enum):
    """Where in the pipeline a fault strikes."""

    #: Transient ``ERR_NAME_NOT_RESOLVED`` at the resolver seam.
    DNS = "dns"
    #: Transient ``ERR_CONNECTION_RESET`` at the network-connect seam.
    CONNECTION_RESET = "reset"
    #: Transient ``ERR_SSL_PROTOCOL_ERROR`` at the network-connect seam.
    TLS = "tls"
    #: Uplink outage at the connectivity gate, bounded in checks.
    OUTAGE = "outage"
    #: Tail truncation of a serialised NetLog document.
    NETLOG_TRUNCATION = "netlog-truncation"
    #: A NUL-filled hole in the middle of a serialised NetLog document —
    #: the shape a torn multi-block write leaves after a power loss
    #: (some blocks flushed, an interior one never made it).  ``duration``
    #: overrides the hole width in characters (default ~64).
    TORN_WRITE = "torn-write"
    #: Silent single-character corruption of a serialised NetLog
    #: document: one digit in the back half of the document is replaced
    #: with a different digit, modelling storage bit-rot.  The document
    #: stays structurally valid JSON — only checksums can see the damage.
    BIT_FLIP = "bit-flip"
    #: Transient ``ENOSPC`` when persisting a NetLog document to the
    #: archive.  ``times`` is the transient depth, like other transients.
    DISK_FULL = "disk-full"
    #: Transient failure writing a row to the telemetry store.
    STORAGE_WRITE = "storage-write"
    #: Hard crash of the campaign process after N visits.
    CRASH = "crash"
    #: Visit wedges in wall-clock time until the watchdog cancels it
    #: (supervised executor only).  ``times`` is the transient depth:
    #: how many attempts on a selected site hang before it recovers —
    #: a depth at or above the executor's quarantine threshold makes the
    #: site a deterministic failer that ends in the dead-letter queue.
    HANG = "hang"
    #: Visit stalls for ``duration`` extra *simulated* milliseconds
    #: (supervised executor only).  A stall that pushes the visit past
    #: its simulated deadline budget is cancelled like a hang; a smaller
    #: one is ridden out and merely costs virtual time.
    SLOW = "slow"
    #: Hard SIGKILL of one shard worker *process* (sharded fabric only).
    #: ``rate`` selects which shards die (keyed by the shard id),
    #: ``at_count`` is the shard-local visit index at which the process
    #: kills itself, and ``times`` is how many restart *generations* the
    #: fault recurs for (1 = the first incarnation dies once and the
    #: coordinator's restart-with-resume completes the shard).
    SHARD_CRASH = "shard-crash"
    #: A shard worker process wedges: it stops heartbeating (and making
    #: progress) for ``duration`` seconds after ``at_count`` shard-local
    #: visits.  A stall longer than the coordinator's heartbeat timeout
    #: is detected as lost liveness; the coordinator kills and restarts
    #: the shard with resume.  ``rate``/``times`` as for ``shard-crash``.
    SHARD_STALL = "shard-stall"
    #: An HTTP client that trickles its upload (serve daemon only):
    #: ``duration`` extra milliseconds of stall per received body chunk
    #: (default 50).  A stall that pushes the upload past the server's
    #: read deadline gets 408 — slow clients must never hold a worker.
    SLOW_CLIENT = "slow-client"
    #: The HTTP client connection drops mid-upload (serve daemon only):
    #: the received body loses its tail from a stable, key-derived
    #: position.  The salvage parser must still produce the same report
    #: as ``repro analyze`` over the identical torn bytes.
    TORN_UPLOAD = "torn-upload"
    #: A serve worker thread dies mid-analysis (serve daemon only).
    #: ``times`` is the transient depth per upload digest: how many
    #: attempts crash before the job succeeds — a depth at or above the
    #: engine's quarantine threshold makes the upload a deterministic
    #: poison job that ends quarantined, never a wrong report.
    WORKER_CRASH = "worker-crash"
    #: Transient ``ENOSPC`` persisting a serve job-journal write.  The
    #: engine degrades gracefully (the job still completes in memory);
    #: only crash-recovery durability for that write is lost.
    JOURNAL_DISK_FULL = "journal-disk-full"
    #: A STUN binding check to an explicit WebRTC peer times out
    #: (``ERR_TIMED_OUT`` after the 400 ms binding deadline).  Keyed by
    #: ``host:port`` of the peer; ``times`` is the transient depth.  Only
    #: the *response* event changes — the binding request was already on
    #: the wire — so leak detection stays byte-identical by design.
    STUN_TIMEOUT = "stun-timeout"
    #: The mDNS registration of a host candidate fails
    #: (``ERR_NAME_NOT_RESOLVED``); Chrome's safe default withholds the
    #: candidate entirely rather than fall back to the raw address.  The
    #: withheld candidate was the obfuscated (non-leaking) one, so leak
    #: tables are unaffected by design.  Keyed by the interface address.
    MDNS_RESOLVE_FAIL = "mdns-resolve-fail"


#: Resolution of the per-key fault draw (1/10^4 rate granularity).
_RATE_SCALE = 10_000


def _coerce(record: dict, name: str, converter, default):
    """Convert one spec field, naming the field in any failure.

    Strict about lookalikes: booleans are not numbers here, and a float
    with a fractional part must not silently truncate into an ``int`` —
    either would let a plan round-trip through JSON meaning something
    other than what was written.
    """
    value = record.get(name, default)
    if value is default:
        return default
    if isinstance(value, bool):
        raise ValueError(f"field '{name}' must be a {converter.__name__}, got {value!r}")
    if converter is int and isinstance(value, float) and not value.is_integer():
        raise ValueError(f"field '{name}' must be a whole number, got {value!r}")
    try:
        return converter(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"field '{name}' must be a {converter.__name__}, got {value!r}"
        ) from exc


def _stable_hash(text: str) -> int:
    """FNV-1a, the repo's stable cross-process hash."""
    digest = 2166136261
    for ch in text:
        digest = ((digest ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return digest


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scheduled fault family.

    ``rate``
        Probability that any given key (domain, host, write, document) is
        selected for injection; the draw is a stable hash of the plan seed
        and the key, so it is identical across runs.
    ``times``
        How many consecutive attempts on a selected key fail before it
        recovers — the *transient depth*.  A retry policy with
        ``max_attempts > times`` fully masks the fault.
    ``duration``
        For :attr:`FaultKind.OUTAGE`: how many consecutive connectivity
        checks the outage swallows.
    ``at_count``
        For counter-triggered kinds (``outage``, ``crash``): the 1-based
        opportunity index at which the fault fires.
    """

    kind: FaultKind
    rate: float = 0.0
    times: int = 1
    duration: int = 0
    at_count: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {self.rate}")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.duration < 0:
            raise ValueError("duration must be >= 0")
        if self.at_count is not None and self.at_count < 1:
            raise ValueError("at_count is 1-based")

    def to_json(self) -> dict:
        record: dict = {"kind": self.kind.value}
        if self.rate:
            record["rate"] = self.rate
        if self.times != 1:
            record["times"] = self.times
        if self.duration:
            record["duration"] = self.duration
        if self.at_count is not None:
            record["at_count"] = self.at_count
        return record

    @classmethod
    def from_json(cls, record: dict) -> "FaultSpec":
        if not isinstance(record, dict):
            raise ValueError(f"fault spec must be an object, got {record!r}")
        unknown = set(record) - {"kind", "rate", "times", "duration", "at_count"}
        if unknown:
            raise ValueError(
                f"fault spec has unknown field(s) {sorted(unknown)} in {record!r}"
            )
        if "kind" not in record:
            raise ValueError(f"fault spec is missing 'kind' in {record!r}")
        try:
            kind = FaultKind(record["kind"])
        except ValueError as exc:
            known = ", ".join(k.value for k in FaultKind)
            raise ValueError(
                f"unknown fault kind {record['kind']!r} (known kinds: {known})"
            ) from exc
        try:
            return cls(
                kind=kind,
                rate=_coerce(record, "rate", float, 0.0),
                times=_coerce(record, "times", int, 1),
                duration=_coerce(record, "duration", int, 0),
                at_count=(
                    _coerce(record, "at_count", int, None)
                    if record.get("at_count") is not None
                    else None
                ),
            )
        except ValueError as exc:
            raise ValueError(f"bad {kind.value!r} fault spec: {exc}") from exc


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seeded schedule of faults across the pipeline seams."""

    seed: str = "fault-plan"
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    # -- composition -------------------------------------------------------

    def specs(self, kind: FaultKind) -> tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.faults if spec.kind is kind)

    def without(self, *kinds: FaultKind) -> "FaultPlan":
        """A copy with the given fault kinds removed (e.g. drop ``crash``
        when restarting a crashed campaign)."""
        return FaultPlan(
            seed=self.seed,
            faults=tuple(s for s in self.faults if s.kind not in kinds),
        )

    # -- the deterministic draw -------------------------------------------

    def selects(self, spec: FaultSpec, key: str) -> bool:
        """Whether ``spec`` strikes ``key`` under this plan's seed."""
        if spec.rate <= 0.0:
            return False
        draw = _stable_hash(f"{self.seed}:{spec.kind.value}:{key}") % _RATE_SCALE
        return draw < int(spec.rate * _RATE_SCALE)

    def fail_depth(self, kind: FaultKind, key: str) -> int:
        """How many consecutive attempts on ``key`` should fail (0 = none)."""
        depth = 0
        for spec in self.specs(kind):
            if self.selects(spec, key):
                depth = max(depth, spec.times)
        return depth

    def schedule(self, kind: FaultKind, keys: Iterable[str]) -> dict[str, int]:
        """Materialise the fault schedule for a key universe.

        Maps each selected key to its transient depth; used by tests to
        assert two runs of the same plan inject identically.
        """
        out: dict[str, int] = {}
        for key in keys:
            depth = self.fail_depth(kind, key)
            if depth:
                out[key] = depth
        return out

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [spec.to_json() for spec in self.faults],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2)

    @classmethod
    def from_json(cls, document: dict) -> "FaultPlan":
        if not isinstance(document, dict):
            raise ValueError("fault plan must be a JSON object")
        seed = document.get("seed", "fault-plan")
        if not isinstance(seed, str):
            raise ValueError(f"fault plan field 'seed' must be a string, got {seed!r}")
        raw_faults = document.get("faults", [])
        if not isinstance(raw_faults, Sequence) or isinstance(raw_faults, str):
            raise ValueError("fault plan field 'faults' must be an array")
        faults = []
        for position, record in enumerate(raw_faults):
            try:
                faults.append(FaultSpec.from_json(record))
            except ValueError as exc:
                raise ValueError(f"faults[{position}]: {exc}") from exc
        return cls(seed=seed, faults=tuple(faults))

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        return cls.from_json(json.loads(text))

    @classmethod
    def load(cls, fp: IO[str]) -> "FaultPlan":
        return cls.from_json(json.load(fp))
