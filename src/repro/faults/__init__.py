"""Deterministic fault injection for the measurement pipeline.

The paper's Table 1 is failure accounting: per-OS success/error breakdowns
with a connectivity gate so measurement-side outages are never blamed on
websites (section 3.1).  Reproducing that robustly means being able to
*create* failures on demand — transient DNS errors, connection resets, TLS
handshake failures, uplink outages, truncated NetLog documents, storage
write errors, and mid-campaign crashes — and proving the pipeline's
retry/checkpoint/salvage machinery masks them.

:class:`FaultPlan` is a seeded, serialisable schedule of faults;
:class:`FaultInjector` executes one plan through narrow hook seams on the
resolver, network stack, connectivity checker, NetLog serialisation, and
telemetry store.  The same plan always injects the same faults.
"""

from .injector import (
    FaultInjector,
    InjectedCrashError,
    InjectedDiskFullError,
    InjectedWorkerCrashError,
    ScopedFaultInjector,
    StorageWriteError,
)
from .plan import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "InjectedDiskFullError",
    "InjectedWorkerCrashError",
    "ScopedFaultInjector",
    "StorageWriteError",
]
