"""Fault injector: executes a :class:`FaultPlan` through narrow seams.

One injector instance carries the mutable state a plan needs at run time —
per-key attempt counters (so *transient* faults fail the first N attempts
and then recover), the connectivity-check counter that drives bounded
outages, and the campaign visit counter that drives crashes.  All hook
methods are cheap and deterministic; an injector with an empty plan is a
no-op at every seam.

Seams (each accepts a plain callable, never the injector itself):

* ``browser.dns`` — :meth:`FaultInjector.dns_hook` plugs into
  :class:`~repro.browser.dns.SimulatedResolver`;
* ``browser.network`` — :meth:`FaultInjector.connect_hook` plugs into
  :class:`~repro.browser.network.SimulatedNetwork`;
* ``crawler.connectivity`` — :meth:`FaultInjector.connectivity_hook` plugs
  into :class:`~repro.crawler.connectivity.ConnectivityChecker`;
* ``netlog`` — :meth:`FaultInjector.corrupt_netlog` mangles a serialised
  NetLog document the way a killed Chrome does;
* ``storage.db`` — :meth:`FaultInjector.storage_hook` plugs into
  :class:`~repro.storage.db.TelemetryStore` and raises
  :class:`StorageWriteError` on scheduled writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..browser.errors import NetError
from .plan import FaultKind, FaultPlan, _stable_hash


class InjectedCrashError(RuntimeError):
    """A scheduled hard crash of the campaign process."""


class StorageWriteError(RuntimeError):
    """A scheduled (transient) telemetry-store write failure."""


@dataclass(slots=True)
class FaultInjector:
    """Executes one fault plan; tracks what it actually injected."""

    plan: FaultPlan = field(default_factory=FaultPlan)
    #: Injection counts per fault kind, for observability and tests.
    injected: dict[FaultKind, int] = field(default_factory=dict)
    _attempts: dict[tuple[FaultKind, str], int] = field(default_factory=dict)
    _connectivity_checks: int = 0
    _visits: int = 0

    # -- shared bookkeeping ------------------------------------------------

    def _next_attempt(self, kind: FaultKind, key: str) -> int:
        count = self._attempts.get((kind, key), 0) + 1
        self._attempts[(kind, key)] = count
        return count

    def _record(self, kind: FaultKind) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def injected_total(self) -> int:
        return sum(self.injected.values())

    def _transient_strike(self, kind: FaultKind, key: str) -> bool:
        """Advance the attempt counter; True while the fault is active."""
        depth = self.plan.fail_depth(kind, key)
        if depth == 0:
            return False
        if self._next_attempt(kind, key) > depth:
            return False
        self._record(kind)
        return True

    # -- browser.dns seam --------------------------------------------------

    def dns_hook(self, host: str) -> NetError | None:
        """Transient resolution failure for ``host``, if scheduled."""
        if self._transient_strike(FaultKind.DNS, host):
            return NetError.ERR_NAME_NOT_RESOLVED
        return None

    # -- browser.network seam ----------------------------------------------

    def connect_hook(self, host: str, port: int) -> NetError | None:
        """Transient connect-level failure for ``host:port``, if scheduled."""
        key = f"{host}:{port}"
        if self._transient_strike(FaultKind.CONNECTION_RESET, key):
            return NetError.ERR_CONNECTION_RESET
        if self._transient_strike(FaultKind.TLS, key):
            return NetError.ERR_SSL_PROTOCOL_ERROR
        return None

    # -- crawler.connectivity seam ----------------------------------------

    def connectivity_hook(self) -> bool:
        """True while a scheduled uplink outage is in effect.

        Outages are counter-triggered: an ``outage`` spec with
        ``at_count=N, duration=D`` swallows connectivity checks
        N .. N+D-1 (1-based), then the uplink recovers — bounded by
        construction, so a retry policy with enough attempts rides it out.
        """
        self._connectivity_checks += 1
        check = self._connectivity_checks
        for spec in self.plan.specs(FaultKind.OUTAGE):
            if spec.at_count is None or spec.duration <= 0:
                continue
            if spec.at_count <= check < spec.at_count + spec.duration:
                self._record(FaultKind.OUTAGE)
                return True
        return False

    # -- netlog seam -------------------------------------------------------

    def corrupt_netlog(self, text: str, key: str) -> str:
        """Damage a serialised NetLog document the way real crashes do.

        When ``key`` is scheduled for truncation, the document loses its
        tail from a stable, key-derived position (at minimum the closing
        ``]}`` — the signature of a killed Chrome); a spec with
        ``duration > 0`` additionally NUL-pads the wound, modelling
        filesystem preallocation after a power loss.  Unscheduled keys
        pass through untouched.
        """
        for spec in self.plan.specs(FaultKind.NETLOG_TRUNCATION):
            if not self.plan.selects(spec, key):
                continue
            self._record(FaultKind.NETLOG_TRUNCATION)
            digest = _stable_hash(f"{self.plan.seed}:cut:{key}")
            # Cut somewhere in the back half, but never keep the final
            # two characters (the `]}` Chrome fails to write).
            fraction = 0.5 + (digest % 4500) / 10_000.0
            cut = min(int(len(text) * fraction), max(len(text) - 2, 0))
            damaged = text[:cut]
            if spec.duration > 0:
                damaged += "\x00" * spec.duration
            return damaged
        return text

    # -- storage.db seam ---------------------------------------------------

    def storage_hook(self, key: str) -> None:
        """Raise :class:`StorageWriteError` on scheduled write attempts."""
        if self._transient_strike(FaultKind.STORAGE_WRITE, key):
            raise StorageWriteError(f"injected storage write failure: {key}")

    # -- campaign crash seam -----------------------------------------------

    def on_visit(self) -> None:
        """Advance the visit counter; raise when a crash is scheduled."""
        self._visits += 1
        for spec in self.plan.specs(FaultKind.CRASH):
            if spec.at_count is not None and self._visits == spec.at_count:
                self._record(FaultKind.CRASH)
                raise InjectedCrashError(
                    f"injected crash at visit {self._visits}"
                )
