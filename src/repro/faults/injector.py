"""Fault injector: executes a :class:`FaultPlan` through narrow seams.

One injector instance carries the mutable state a plan needs at run time —
per-key attempt counters (so *transient* faults fail the first N attempts
and then recover), the connectivity-check counter that drives bounded
outages, and the campaign visit counter that drives crashes.  All hook
methods are cheap and deterministic; an injector with an empty plan is a
no-op at every seam.

Seams (each accepts a plain callable, never the injector itself):

* ``browser.dns`` — :meth:`FaultInjector.dns_hook` plugs into
  :class:`~repro.browser.dns.SimulatedResolver`;
* ``browser.network`` — :meth:`FaultInjector.connect_hook` plugs into
  :class:`~repro.browser.network.SimulatedNetwork`;
* ``browser.webrtc`` — :meth:`FaultInjector.stun_hook` and
  :meth:`FaultInjector.mdns_hook` plug into
  :class:`~repro.webrtc.ice.IceAgent`;
* ``crawler.connectivity`` — :meth:`FaultInjector.connectivity_hook` plugs
  into :class:`~repro.crawler.connectivity.ConnectivityChecker`;
* ``netlog`` — :meth:`FaultInjector.corrupt_netlog` mangles a serialised
  NetLog document the way a killed Chrome does;
* ``storage.db`` — :meth:`FaultInjector.storage_hook` plugs into
  :class:`~repro.storage.db.TelemetryStore` and raises
  :class:`StorageWriteError` on scheduled writes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..browser.errors import NetError
from .plan import FaultKind, FaultPlan, _stable_hash


class InjectedCrashError(RuntimeError):
    """A scheduled hard crash of the campaign process."""


class StorageWriteError(RuntimeError):
    """A scheduled (transient) telemetry-store write failure."""


class InjectedDiskFullError(OSError):
    """A scheduled (transient) ``ENOSPC`` while archiving a NetLog."""


class InjectedWorkerCrashError(RuntimeError):
    """A scheduled crash of a serve worker thread mid-analysis."""


@dataclass(slots=True)
class FaultInjector:
    """Executes one fault plan; tracks what it actually injected.

    Counter state is guarded by a lock so the supervised executor's
    worker threads can share one injector; injection *counts* are sums
    and therefore order-independent, which keeps the chaos benches'
    invariance assertions meaningful under ``--workers N``.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    #: Injection counts per fault kind, for observability and tests.
    injected: dict[FaultKind, int] = field(default_factory=dict)
    _attempts: dict[tuple[FaultKind, str], int] = field(default_factory=dict)
    _connectivity_checks: int = 0
    _visits: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, compare=False)

    # -- shared bookkeeping ------------------------------------------------

    def _next_attempt(self, kind: FaultKind, key: str) -> int:
        with self._lock:
            count = self._attempts.get((kind, key), 0) + 1
            self._attempts[(kind, key)] = count
            return count

    def _record(self, kind: FaultKind) -> None:
        with self._lock:
            self.injected[kind] = self.injected.get(kind, 0) + 1

    def record_injection(self, kind: FaultKind) -> None:
        """Count an injection executed outside the injector's own seams
        (the supervised executor drives hang/slow/crash strikes itself)."""
        self._record(kind)

    def injected_total(self) -> int:
        return sum(self.injected.values())

    def _transient_strike(self, kind: FaultKind, key: str) -> bool:
        """Advance the attempt counter; True while the fault is active."""
        depth = self.plan.fail_depth(kind, key)
        if depth == 0:
            return False
        if self._next_attempt(kind, key) > depth:
            return False
        self._record(kind)
        return True

    # -- browser.dns seam --------------------------------------------------

    def dns_hook(self, host: str) -> NetError | None:
        """Transient resolution failure for ``host``, if scheduled."""
        if self._transient_strike(FaultKind.DNS, host):
            return NetError.ERR_NAME_NOT_RESOLVED
        return None

    # -- browser.network seam ----------------------------------------------

    def connect_hook(self, host: str, port: int) -> NetError | None:
        """Transient connect-level failure for ``host:port``, if scheduled."""
        key = f"{host}:{port}"
        if self._transient_strike(FaultKind.CONNECTION_RESET, key):
            return NetError.ERR_CONNECTION_RESET
        if self._transient_strike(FaultKind.TLS, key):
            return NetError.ERR_SSL_PROTOCOL_ERROR
        return None

    # -- browser.webrtc seams ----------------------------------------------

    def stun_hook(self, peer: str) -> NetError | None:
        """Transient STUN binding timeout for ``peer`` (``host:port``)."""
        if self._transient_strike(FaultKind.STUN_TIMEOUT, peer):
            return NetError.ERR_TIMED_OUT
        return None

    def mdns_hook(self, interface: str) -> NetError | None:
        """Transient mDNS registration failure for ``interface``."""
        if self._transient_strike(FaultKind.MDNS_RESOLVE_FAIL, interface):
            return NetError.ERR_NAME_NOT_RESOLVED
        return None

    # -- crawler.connectivity seam ----------------------------------------

    def connectivity_hook(self) -> bool:
        """True while a scheduled uplink outage is in effect.

        Outages are counter-triggered: an ``outage`` spec with
        ``at_count=N, duration=D`` swallows connectivity checks
        N .. N+D-1 (1-based), then the uplink recovers — bounded by
        construction, so a retry policy with enough attempts rides it out.
        """
        self._connectivity_checks += 1
        check = self._connectivity_checks
        for spec in self.plan.specs(FaultKind.OUTAGE):
            if spec.at_count is None or spec.duration <= 0:
                continue
            if spec.at_count <= check < spec.at_count + spec.duration:
                self._record(FaultKind.OUTAGE)
                return True
        return False

    # -- netlog seam -------------------------------------------------------

    def corrupt_netlog(
        self, document: "str | bytes", key: str
    ) -> "str | bytes":
        """Damage a serialised NetLog document the way real crashes do.

        Polymorphic over the two archive formats: text documents are JSON,
        byte documents are binary ``nlbin-v1`` — each fault kind has the
        analogous physical shape in both (same stable key-derived
        positions, so a fault plan damages the same visits regardless of
        capture format).

        When ``key`` is scheduled for truncation, the document loses its
        tail from a stable, key-derived position (at minimum the closing
        ``]}`` — the signature of a killed Chrome); a spec with
        ``duration > 0`` additionally NUL-pads the wound, modelling
        filesystem preallocation after a power loss.

        ``torn-write`` specs punch a NUL-filled hole of ``duration``
        characters (default 64) into the interior of the document — the
        mark of a multi-block write whose middle block never flushed.
        ``bit-flip`` specs damage the measurement payload in place and
        invisibly to framing: one digit substituted in the back half of a
        JSON events array (the document stays valid JSON), or one bit
        flipped inside a binary event frame's payload (the framing stays
        walkable) — either way only checksum verification can see the
        damage.  Unscheduled keys pass through untouched; a key scheduled
        for several kinds suffers them all, truncation first.
        """
        if isinstance(document, (bytes, bytearray)):
            return self._corrupt_netlog_bytes(bytes(document), key)
        return self._corrupt_netlog_text(document, key)

    def _corrupt_netlog_text(self, text: str, key: str) -> str:
        for spec in self.plan.specs(FaultKind.NETLOG_TRUNCATION):
            if not self.plan.selects(spec, key):
                continue
            self._record(FaultKind.NETLOG_TRUNCATION)
            digest = _stable_hash(f"{self.plan.seed}:cut:{key}")
            # Cut somewhere in the back half, but never keep the final
            # two characters (the `]}` Chrome fails to write).
            fraction = 0.5 + (digest % 4500) / 10_000.0
            cut = min(int(len(text) * fraction), max(len(text) - 2, 0))
            text = text[:cut]
            if spec.duration > 0:
                text += "\x00" * spec.duration
            break
        for spec in self.plan.specs(FaultKind.TORN_WRITE):
            if not self.plan.selects(spec, key):
                continue
            self._record(FaultKind.TORN_WRITE)
            digest = _stable_hash(f"{self.plan.seed}:tear:{key}")
            width = spec.duration if spec.duration > 0 else 64
            # The hole lands in the 30–70% region: interior damage with
            # an intact head and tail, unlike a truncation.
            fraction = 0.3 + (digest % 4000) / 10_000.0
            start = min(int(len(text) * fraction), max(len(text) - 1, 0))
            end = min(start + width, len(text))
            text = text[:start] + "\x00" * (end - start) + text[end:]
            break
        for spec in self.plan.specs(FaultKind.BIT_FLIP):
            if not self.plan.selects(spec, key):
                continue
            digest = _stable_hash(f"{self.plan.seed}:flip:{key}")
            fraction = 0.45 + (digest % 4000) / 10_000.0
            # Rot lands inside the events array (the measurement payload);
            # the static constants header is re-derivable vocabulary, so
            # damage there is not an integrity event.
            marker = text.find('"events": [')
            base = marker + len('"events": [') if marker >= 0 else 0
            position = base + int((len(text) - base) * fraction)
            # Flip the first digit at or after the chosen position —
            # digit-for-digit substitution keeps the JSON well-formed.
            for index in range(position, len(text)):
                ch = text[index]
                if ch.isdigit():
                    flipped = str((int(ch) + 1) % 10)
                    text = text[:index] + flipped + text[index + 1 :]
                    self._record(FaultKind.BIT_FLIP)
                    break
            break
        return text

    def _corrupt_netlog_bytes(self, data: bytes, key: str) -> bytes:
        """The binary-document analog of :meth:`_corrupt_netlog_text`."""
        for spec in self.plan.specs(FaultKind.NETLOG_TRUNCATION):
            if not self.plan.selects(spec, key):
                continue
            self._record(FaultKind.NETLOG_TRUNCATION)
            digest = _stable_hash(f"{self.plan.seed}:cut:{key}")
            # Same back-half cut window as the JSON shape; at minimum
            # the trailer frame is lost (the binary signature of a
            # killed writer).
            fraction = 0.5 + (digest % 4500) / 10_000.0
            cut = min(int(len(data) * fraction), max(len(data) - 2, 0))
            data = data[:cut]
            if spec.duration > 0:
                data += b"\x00" * spec.duration
            break
        for spec in self.plan.specs(FaultKind.TORN_WRITE):
            if not self.plan.selects(spec, key):
                continue
            self._record(FaultKind.TORN_WRITE)
            digest = _stable_hash(f"{self.plan.seed}:tear:{key}")
            width = spec.duration if spec.duration > 0 else 64
            fraction = 0.3 + (digest % 4000) / 10_000.0
            start = min(int(len(data) * fraction), max(len(data) - 1, 0))
            end = min(start + width, len(data))
            data = data[:start] + b"\x00" * (end - start) + data[end:]
            break
        for spec in self.plan.specs(FaultKind.BIT_FLIP):
            if not self.plan.selects(spec, key):
                continue
            digest = _stable_hash(f"{self.plan.seed}:flip:{key}")
            fraction = 0.45 + (digest % 4000) / 10_000.0
            position = self._binary_flip_position(data, fraction, digest)
            if position is not None:
                flipped = data[position] ^ 0x01
                data = data[:position] + bytes((flipped,)) + data[position + 1 :]
                self._record(FaultKind.BIT_FLIP)
            break
        return data

    @staticmethod
    def _binary_flip_position(
        data: bytes, fraction: float, digest: int
    ) -> int | None:
        """A byte offset inside an event frame's payload, or None.

        Walks the binary document's framing so the flip lands *inside* a
        record — in-place corruption the frame CRC catches — rather than
        on a frame header, which would read as framing loss (a different
        damage class).  Mirrors the JSON shape, where the substituted
        digit lands inside the events array.
        """
        from ..netlog.binary import (
            MAGIC,
            TAG_EVENT,
            _FRAME_HEAD,
        )

        if not data.startswith(MAGIC):
            return None
        payloads: list[tuple[int, int]] = []
        offset = len(MAGIC)
        while offset + _FRAME_HEAD.size <= len(data):
            tag, length, _ = _FRAME_HEAD.unpack_from(data, offset)
            start = offset + _FRAME_HEAD.size
            end = start + length
            if end > len(data):
                break
            if tag == TAG_EVENT and length > 0:
                payloads.append((start, length))
            offset = end
        if not payloads:
            return None
        start, length = payloads[int((len(payloads) - 1) * fraction)]
        return start + digest % length

    # -- storage.db seam ---------------------------------------------------

    def storage_hook(self, key: str) -> None:
        """Raise :class:`StorageWriteError` on scheduled write attempts."""
        if self._transient_strike(FaultKind.STORAGE_WRITE, key):
            raise StorageWriteError(f"injected storage write failure: {key}")

    # -- netlog-archive seam -----------------------------------------------

    def archive_write_hook(self, key: str) -> None:
        """Raise :class:`InjectedDiskFullError` on scheduled archive writes.

        Transient like storage writes: a ``disk-full`` spec with
        ``times=N`` fails the first N archive attempts for a selected
        key, then the space "frees up" — so a retrying caller recovers,
        while a single-shot caller leaves a hole for ``repro fsck``.
        """
        if self._transient_strike(FaultKind.DISK_FULL, key):
            raise InjectedDiskFullError(
                f"injected disk-full archiving NetLog: {key}"
            )

    # -- crawler.fabric seams ----------------------------------------------

    def shard_crash_hook(
        self, shard_key: str, generation: int, visit_count: int
    ) -> bool:
        """Whether a shard process should SIGKILL itself right now.

        Fires when a ``shard-crash`` spec selects ``shard_key`` (the
        stable shard id), the shard has completed exactly ``at_count``
        visits in this incarnation, and the incarnation's restart
        ``generation`` (0 for the first launch) is below the spec's
        ``times`` — so a default spec kills each selected shard once and
        lets the coordinator's restart-with-resume converge.
        """
        for spec in self.plan.specs(FaultKind.SHARD_CRASH):
            if (
                spec.at_count is not None
                and visit_count == spec.at_count
                and generation < spec.times
                and self.plan.selects(spec, shard_key)
            ):
                self._record(FaultKind.SHARD_CRASH)
                return True
        return False

    def shard_stall_hook(
        self, shard_key: str, generation: int, visit_count: int
    ) -> float:
        """Seconds a shard should wedge (no heartbeats, no progress).

        Returns 0.0 when no ``shard-stall`` spec strikes; otherwise the
        spec's ``duration`` in wall-clock seconds.  Selection semantics
        mirror :meth:`shard_crash_hook`.
        """
        for spec in self.plan.specs(FaultKind.SHARD_STALL):
            if (
                spec.at_count is not None
                and visit_count == spec.at_count
                and generation < spec.times
                and self.plan.selects(spec, shard_key)
            ):
                self._record(FaultKind.SHARD_STALL)
                return float(max(spec.duration, 1))
        return 0.0

    # -- serve seams ---------------------------------------------------------

    def slow_client_hook(self, key: str) -> float:
        """Extra seconds the server should dwell per received body chunk.

        Models a client that trickles its upload.  Returns 0.0 when no
        ``slow-client`` spec strikes ``key`` (the upload digest or remote
        address); otherwise the spec's ``duration`` in milliseconds
        (default 50) converted to seconds.  The HTTP layer adds the dwell
        inside its read loop, so a read deadline can catch it.
        """
        for spec in self.plan.specs(FaultKind.SLOW_CLIENT):
            if self.plan.selects(spec, key):
                self._record(FaultKind.SLOW_CLIENT)
                return (spec.duration if spec.duration > 0 else 50) / 1000.0
        return 0.0

    def torn_upload_hook(self, body: bytes, key: str) -> bytes:
        """Drop the tail of an upload body, if scheduled.

        The cut lands in the back half at a stable, key-derived position —
        the shape a dropped connection leaves.  Transient per ``times``:
        after the scheduled number of torn attempts the client "recovers"
        and later uploads of the same key arrive whole.
        """
        if self._transient_strike(FaultKind.TORN_UPLOAD, key):
            digest = _stable_hash(f"{self.plan.seed}:torn-upload:{key}")
            fraction = 0.5 + (digest % 4500) / 10_000.0
            cut = min(int(len(body) * fraction), max(len(body) - 2, 0))
            return body[:cut]
        return body

    def worker_crash_hook(self, key: str) -> None:
        """Raise :class:`InjectedWorkerCrashError` on scheduled attempts.

        Transient like storage writes: a ``worker-crash`` spec with
        ``times=N`` kills the first N analysis attempts for a selected
        upload digest, then the job succeeds — so the engine's bounded
        re-run masks shallow crashes while deep ones quarantine.
        """
        if self._transient_strike(FaultKind.WORKER_CRASH, key):
            raise InjectedWorkerCrashError(
                f"injected serve worker crash: {key}"
            )

    def journal_write_hook(self, key: str) -> None:
        """Raise :class:`InjectedDiskFullError` on scheduled journal writes."""
        if self._transient_strike(FaultKind.JOURNAL_DISK_FULL, key):
            raise InjectedDiskFullError(
                f"injected disk-full writing serve job journal: {key}"
            )

    # -- campaign crash seam -----------------------------------------------

    def on_visit(self) -> None:
        """Advance the visit counter; raise when a crash is scheduled."""
        with self._lock:
            self._visits += 1
            visits = self._visits
        for spec in self.plan.specs(FaultKind.CRASH):
            if spec.at_count is not None and visits == spec.at_count:
                self._record(FaultKind.CRASH)
                raise InjectedCrashError(
                    f"injected crash at visit {visits}"
                )

    # -- supervised-executor views ----------------------------------------

    def scoped(self) -> "ScopedFaultInjector":
        """A per-worker view whose fault keys are qualified per visit.

        Worker threads race on *when* each visit runs, so any state keyed
        by something two visits share (a third-party host, the global
        connectivity-check counter) would make injection order-dependent.
        The scoped view prefixes every transient-fault key with the visit
        context (``os:domain``) and replaces the live connectivity counter
        with the visit's deterministic submission index — every fault
        becomes a pure function of the visit, so the same plan injects
        identically at any worker count.
        """
        return ScopedFaultInjector(self)


class ScopedFaultInjector:
    """Per-visit-scoped façade over a shared :class:`FaultInjector`.

    One instance belongs to one executor worker; the worker points it at
    the current visit with :meth:`begin_visit` before crawling.  Hook
    signatures match the base injector's, so it plugs into the same
    crawler seams.
    """

    __slots__ = ("base", "_context", "_index", "_gate_checks")

    def __init__(self, base: FaultInjector) -> None:
        self.base = base
        self._context = ""
        self._index = 0
        self._gate_checks = 0

    @property
    def plan(self) -> FaultPlan:
        return self.base.plan

    def begin_visit(self, context: str, submission_index: int) -> None:
        """Bind the view to one visit (1-based deterministic index)."""
        self._context = context
        self._index = submission_index
        self._gate_checks = 0

    # -- scoped seams ------------------------------------------------------

    def dns_hook(self, host: str) -> NetError | None:
        return self.base.dns_hook(f"{self._context}|{host}")

    def connect_hook(self, host: str, port: int) -> NetError | None:
        return self.base.connect_hook(f"{self._context}|{host}", port)

    def stun_hook(self, peer: str) -> NetError | None:
        return self.base.stun_hook(f"{self._context}|{peer}")

    def mdns_hook(self, interface: str) -> NetError | None:
        return self.base.mdns_hook(f"{self._context}|{interface}")

    def connectivity_hook(self) -> bool:
        """Deterministic outage semantics for parallel execution.

        An ``outage`` spec with ``at_count=N, duration=D`` strikes the
        visit with submission index N: its first D gate checks see a down
        uplink, then it recovers — the same bounded shape as the
        sequential campaign's check-counter window, but keyed to the
        visit instead of a shared live counter.
        """
        self._gate_checks += 1
        for spec in self.plan.specs(FaultKind.OUTAGE):
            if spec.at_count is None or spec.duration <= 0:
                continue
            if self._index == spec.at_count and self._gate_checks <= spec.duration:
                self.base._record(FaultKind.OUTAGE)
                return True
        return False

    def corrupt_netlog(
        self, document: "str | bytes", key: str
    ) -> "str | bytes":
        return self.base.corrupt_netlog(document, f"{self._context}|{key}")
