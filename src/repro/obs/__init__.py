"""Observability: metrics, tracing, exporters — off by default, one switch.

The pipeline is instrumented at every layer (executor dispatch, watchdog
cancellations, retries by error class, NetLog parse/verify timings,
storage commit latency, fsck repair tiers), but a measurement harness
must not perturb the measurement: **by default nothing is collected**.
Every instrument declared through this module is a cheap proxy bound to
nothing; :func:`enable` binds them all to a live
:class:`~repro.obs.metrics.MetricsRegistry` (and a
:class:`~repro.obs.tracing.Tracer`), :func:`disable` unbinds them.

Instrumented modules declare their instruments once at import time::

    from .. import obs
    _CANCELS = obs.counter("repro_watchdog_cancellations_total", "...")

and call ``_CANCELS.inc()`` on the hot path.  Disabled, that is one
attribute load and a predictable branch — the ablation bench holds the
end-to-end overhead of the *enabled* path under 5%.

The two acceptance properties the test suite pins down:

* **scrapes never block incrementers** — metrics shard per thread (see
  :mod:`repro.obs.metrics`);
* **observability cannot change results** — Table 1/Table 5 are
  byte-identical with instrumentation on and off
  (``benchmarks/test_ablation_observability.py``).
"""

from __future__ import annotations

import threading
from contextlib import AbstractContextManager
from typing import Callable, Iterable, Sequence

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricFamily,
    MetricsRegistry,
)
from .tracing import DEFAULT_CAPACITY, SpanRecord, Tracer, to_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricFamily",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "to_chrome_trace",
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "counter",
    "gauge",
    "histogram",
    "span",
    "enable",
    "disable",
    "enabled",
    "registry",
    "tracer",
]


class _NullSpan(AbstractContextManager):
    """Shared no-op span: zero allocation per use."""

    __slots__ = ()

    def __enter__(self) -> dict:
        return {}

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_SPAN = _NullSpan()


class Instrument:
    """A declared metric, bound to the active registry (or to nothing).

    The proxy is what instrumented modules hold at import time; its
    ``_impl`` is rebound by :func:`enable`/:func:`disable`.  Disabled
    (``_impl is None``) every operation is a single branch.
    """

    __slots__ = ("kind", "name", "help", "labelnames", "buckets", "_impl")

    def __init__(
        self,
        kind: str,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None,
    ) -> None:
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self._impl: Counter | Gauge | Histogram | None = None

    @property
    def enabled(self) -> bool:
        """True when bound to a live registry (guard for costly captures)."""
        return self._impl is not None

    def inc(self, amount: float = 1.0, labels: tuple[str, ...] = ()) -> None:
        impl = self._impl
        if impl is not None:
            impl.inc(amount, labels)

    def dec(self, amount: float = 1.0, labels: tuple[str, ...] = ()) -> None:
        impl = self._impl
        if impl is not None:
            impl.dec(amount, labels)  # type: ignore[union-attr]

    def set(self, value: float, labels: tuple[str, ...] = ()) -> None:
        impl = self._impl
        if impl is not None:
            impl.set(value, labels)  # type: ignore[union-attr]

    def observe(self, value: float, labels: tuple[str, ...] = ()) -> None:
        impl = self._impl
        if impl is not None:
            impl.observe(value, labels)  # type: ignore[union-attr]

    def _bind(self, registry: MetricsRegistry | None) -> None:
        if registry is None:
            self._impl = None
        elif self.kind == "counter":
            self._impl = registry.counter(self.name, self.help, self.labelnames)
        elif self.kind == "gauge":
            self._impl = registry.gauge(self.name, self.help, self.labelnames)
        else:
            assert self.buckets is not None
            self._impl = registry.histogram(
                self.name, self.help, self.labelnames, self.buckets
            )


_lock = threading.Lock()
_instruments: dict[str, Instrument] = {}
_registry: MetricsRegistry | None = None
_tracer: Tracer | None = None


def _declare(
    kind: str,
    name: str,
    help: str,
    labelnames: Sequence[str],
    buckets: tuple[float, ...] | None = None,
) -> Instrument:
    with _lock:
        existing = _instruments.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"instrument {name!r} already declared as {existing.kind} "
                    f"with labels {existing.labelnames}"
                )
            return existing
        instrument = Instrument(kind, name, help, tuple(labelnames), buckets)
        if _registry is not None:
            instrument._bind(_registry)
        _instruments[name] = instrument
        return instrument


def counter(
    name: str, help: str = "", labelnames: Sequence[str] = ()
) -> Instrument:
    """Declare (or fetch) a counter instrument."""
    return _declare("counter", name, help, labelnames)


def gauge(
    name: str, help: str = "", labelnames: Sequence[str] = ()
) -> Instrument:
    """Declare (or fetch) a gauge instrument."""
    return _declare("gauge", name, help, labelnames)


def histogram(
    name: str,
    help: str = "",
    labelnames: Sequence[str] = (),
    buckets: Iterable[float] = DEFAULT_BUCKETS,
) -> Instrument:
    """Declare (or fetch) a fixed-bucket histogram instrument."""
    return _declare("histogram", name, help, labelnames, tuple(buckets))


def span(
    name: str,
    *,
    category: str = "repro",
    sim_now: Callable[[], float] | None = None,
    args: dict | None = None,
):
    """A tracing span context manager — :data:`NULL_SPAN` when disabled."""
    active = _tracer
    if active is None:
        return NULL_SPAN
    return active.span(name, category=category, sim_now=sim_now, args=args)


def enable(
    registry_: MetricsRegistry | None = None,
    *,
    trace_capacity: int = DEFAULT_CAPACITY,
    with_tracer: bool = True,
) -> MetricsRegistry:
    """Switch observability on; binds every declared instrument.

    Idempotent when already enabled with no explicit registry.  Returns
    the active registry.
    """
    global _registry, _tracer
    with _lock:
        if registry_ is None and _registry is not None:
            if with_tracer and _tracer is None:
                _tracer = Tracer(trace_capacity)
            return _registry
        _registry = registry_ if registry_ is not None else MetricsRegistry()
        _tracer = Tracer(trace_capacity) if with_tracer else None
        for instrument in _instruments.values():
            instrument._bind(_registry)
        return _registry


def disable() -> None:
    """Switch observability off; every instrument reverts to a no-op."""
    global _registry, _tracer
    with _lock:
        _registry = None
        _tracer = None
        for instrument in _instruments.values():
            instrument._bind(None)


def enabled() -> bool:
    return _registry is not None


def registry() -> MetricsRegistry | None:
    """The active registry, or None when observability is off."""
    return _registry


def tracer() -> Tracer | None:
    """The active tracer, or None when tracing is off."""
    return _tracer
