"""Live campaign progress on stderr: visits/s, ETA, error rate.

The paper's crawls ran for weeks; the only signal that one had silently
stalled was the absence of new rows.  :class:`ProgressLine` is the
antidote for interactive runs: a single carriage-return line on
**stderr** (never stdout — results stay machine-parseable) updated at
most every ``min_interval_s``, plus one final newline-terminated summary
so logs keep a durable record.

The live line is suppressed when stderr is not a TTY (CI logs would
otherwise fill with ``\\r`` frames); the final summary always prints.
Thread-safe: supervised executors report completions from worker
threads.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import TextIO


def _format_eta(seconds: float) -> str:
    if seconds < 0 or not seconds < float("inf"):
        return "--"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressLine:
    """One live progress line for a campaign of ``total`` visits."""

    def __init__(
        self,
        total: int,
        *,
        stream: TextIO | None = None,
        min_interval_s: float = 0.2,
        live: bool | None = None,
    ) -> None:
        self.total = max(0, total)
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        # Live \r updates only on a TTY unless forced.
        self.live = (
            live
            if live is not None
            else bool(getattr(self.stream, "isatty", lambda: False)())
        )
        self.done = 0
        self.errors = 0
        self._started = time.monotonic()
        self._last_render = 0.0
        self._lock = threading.Lock()
        self._line_open = False

    def update(self, *, error: bool = False) -> None:
        """Record one finished visit; re-render the live line if due."""
        with self._lock:
            self.done += 1
            if error:
                self.errors += 1
            if not self.live:
                return
            now = time.monotonic()
            if now - self._last_render < self.min_interval_s:
                return
            self._last_render = now
            self.stream.write("\r" + self._render(now) + "\x1b[K")
            self.stream.flush()
            self._line_open = True

    def _render(self, now: float) -> str:
        elapsed = max(now - self._started, 1e-9)
        rate = self.done / elapsed
        remaining = self.total - self.done
        eta = remaining / rate if rate > 0 else float("inf")
        error_rate = (self.errors / self.done * 100.0) if self.done else 0.0
        percent = (self.done / self.total * 100.0) if self.total else 100.0
        return (
            f"visits {self.done}/{self.total} ({percent:.1f}%) · "
            f"{rate:.1f}/s · ETA {_format_eta(eta)} · "
            f"errors {error_rate:.1f}%"
        )

    def finish(self) -> None:
        """Close the live line and print the durable summary."""
        with self._lock:
            if self._line_open:
                self.stream.write("\r\x1b[K")
                self._line_open = False
            self.stream.write(self._render(time.monotonic()) + "\n")
            self.stream.flush()
