"""Labeled metrics registry: Counter, Gauge, Histogram, lock-free hot path.

The paper's measurement infrastructure ran for weeks; ours aims at the
same scale, which means the instrumentation must never become the
bottleneck it is supposed to diagnose.  The design rule here is that the
*write* path (``inc``/``observe``) is wait-free with respect to the
*read* path (``collect``):

* every Counter and Histogram keeps **per-thread shards** — a thread's
  first touch registers a private dict under a lock, after which all of
  its increments are plain dict mutations on memory no other writer
  touches (safe under the GIL, and contention-free by construction);
* a scrape aggregates a snapshot of all shards without taking any lock
  the writers use, so a slow exporter can never stall a crawl worker;
* shards are owned by the metric, not the thread: a worker thread that
  exits leaves its final counts behind, so totals stay exact.

Gauges are last-write-wins (``set``) with a small lock only for the
read-modify-write ``inc``/``dec`` path — they record levels (queue
depth), not rates, and are never on a per-event hot path.

Histograms use **fixed bucket boundaries** chosen at declaration time
(Prometheus ``le`` semantics: a bucket counts observations ``<=`` its
upper bound; an implicit ``+Inf`` bucket catches the rest).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Sequence

#: Default histogram boundaries — tuned for sub-second harness latencies
#: (commit times, parse times, cancellation latencies), in seconds.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

LabelValues = tuple[str, ...]


def _check_labels(labelnames: Sequence[str], labels: LabelValues) -> None:
    if len(labels) != len(labelnames):
        raise ValueError(
            f"expected {len(labelnames)} label value(s) "
            f"for {tuple(labelnames)}, got {labels!r}"
        )


class _Sharded:
    """Per-thread shard management shared by Counter and Histogram."""

    __slots__ = ("name", "help", "labelnames", "_shards", "_local", "_lock")

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        # Shards are appended, never removed: a dead thread's shard keeps
        # its final values, so aggregation over all shards is exact.
        # (Keyed by shard object, not thread id — ids can be reused.)
        self._shards: list[dict] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    def _shard(self) -> dict:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = {}
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    @property
    def shard_count(self) -> int:
        """How many threads have ever written to this metric."""
        return len(self._shards)

    def _snapshot_shards(self) -> list[dict]:
        # list() on a list only ever racing with append() is safe under
        # the GIL; the scrape never touches the writers' lock.
        return list(self._shards)


class Counter(_Sharded):
    """A monotonically increasing labeled counter."""

    kind = "counter"

    def inc(self, amount: float = 1.0, labels: LabelValues = ()) -> None:
        shard = self._shard()
        shard[labels] = shard.get(labels, 0.0) + amount

    def value(self, labels: LabelValues = ()) -> float:
        return self.values().get(labels, 0.0)

    def values(self) -> dict[LabelValues, float]:
        """Aggregate all shards into per-label totals (the scrape path)."""
        out: dict[LabelValues, float] = {}
        for shard in self._snapshot_shards():
            for labels, amount in list(shard.items()):
                _check_labels(self.labelnames, labels)
                out[labels] = out.get(labels, 0.0) + amount
        return out


class Gauge:
    """A labeled value that can go up and down (levels, not rates)."""

    kind = "gauge"

    __slots__ = ("name", "help", "labelnames", "_values", "_lock")

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._values: dict[LabelValues, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, labels: LabelValues = ()) -> None:
        _check_labels(self.labelnames, labels)
        self._values[labels] = value  # plain assignment: atomic under GIL

    def inc(self, amount: float = 1.0, labels: LabelValues = ()) -> None:
        _check_labels(self.labelnames, labels)
        with self._lock:
            self._values[labels] = self._values.get(labels, 0.0) + amount

    def dec(self, amount: float = 1.0, labels: LabelValues = ()) -> None:
        self.inc(-amount, labels)

    def value(self, labels: LabelValues = ()) -> float:
        return self._values.get(labels, 0.0)

    def values(self) -> dict[LabelValues, float]:
        return dict(self._values)


@dataclass(slots=True)
class HistogramValue:
    """Aggregated state of one labeled histogram series."""

    #: Cumulative Prometheus buckets: ``(le, count_of_observations <= le)``,
    #: ending with the implicit ``(inf, total_count)``.
    buckets: list[tuple[float, int]]
    sum: float
    count: int

    def quantile(self, q: float) -> float:
        """Estimate a quantile by linear interpolation inside its bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        lower = 0.0
        prev_count = 0
        for le, cumulative in self.buckets:
            if cumulative >= target:
                if le == float("inf"):
                    return lower  # best effort above the last bound
                span = cumulative - prev_count
                if span <= 0:
                    return le
                return lower + (le - lower) * (target - prev_count) / span
            lower = le
            prev_count = cumulative
        return lower


class Histogram(_Sharded):
    """Fixed-boundary labeled histogram (Prometheus ``le`` semantics)."""

    kind = "histogram"

    __slots__ = ("bounds",)

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket boundaries must be distinct")
        self.bounds = bounds

    def observe(self, value: float, labels: LabelValues = ()) -> None:
        shard = self._shard()
        cell = shard.get(labels)
        if cell is None:
            # Per-bucket (non-cumulative) counts + [sum]; cumulated at
            # scrape time so the hot path touches exactly two slots.
            cell = shard[labels] = [0] * (len(self.bounds) + 1) + [0.0]
        cell[bisect_left(self.bounds, value)] += 1
        cell[-1] += value

    def value(self, labels: LabelValues = ()) -> HistogramValue:
        return self.values().get(
            labels,
            HistogramValue(
                buckets=[(le, 0) for le in (*self.bounds, float("inf"))],
                sum=0.0,
                count=0,
            ),
        )

    def values(self) -> dict[LabelValues, HistogramValue]:
        merged: dict[LabelValues, list] = {}
        for shard in self._snapshot_shards():
            for labels, cell in list(shard.items()):
                _check_labels(self.labelnames, labels)
                cell = list(cell)  # freeze a racing writer's view
                into = merged.get(labels)
                if into is None:
                    merged[labels] = cell
                else:
                    for i, amount in enumerate(cell):
                        into[i] += amount
        out: dict[LabelValues, HistogramValue] = {}
        for labels, cell in merged.items():
            counts, total = cell[:-1], cell[-1]
            cumulative: list[tuple[float, int]] = []
            running = 0
            for le, count in zip((*self.bounds, float("inf")), counts):
                running += count
                cumulative.append((le, running))
            out[labels] = HistogramValue(
                buckets=cumulative, sum=total, count=running
            )
        return out


Metric = Counter | Gauge | Histogram


@dataclass(slots=True)
class MetricFamily:
    """One metric's aggregated scrape snapshot."""

    name: str
    kind: str
    help: str
    labelnames: tuple[str, ...]
    samples: dict[LabelValues, float | HistogramValue] = field(
        default_factory=dict
    )


class MetricsRegistry:
    """Creates, deduplicates, and scrapes metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: a second
    declaration with the same name must agree on kind and label names
    (histograms also on buckets), mirroring Prometheus client semantics.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        metric = self._get_or_create(
            name, lambda: Counter(name, help, labelnames), "counter"
        )
        if metric.labelnames != tuple(labelnames):
            raise ValueError(f"metric {name!r} label names differ")
        return metric  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        metric = self._get_or_create(
            name, lambda: Gauge(name, help, labelnames), "gauge"
        )
        if metric.labelnames != tuple(labelnames):
            raise ValueError(f"metric {name!r} label names differ")
        return metric  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, help, labelnames, buckets), "histogram"
        )
        assert isinstance(metric, Histogram)
        if metric.labelnames != tuple(labelnames):
            raise ValueError(f"metric {name!r} label names differ")
        if metric.bounds != tuple(sorted(float(b) for b in buckets)):
            raise ValueError(f"metric {name!r} bucket boundaries differ")
        return metric

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> list[MetricFamily]:
        """Aggregate every metric into scrape snapshots, sorted by name."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return [
            MetricFamily(
                name=name,
                kind=metric.kind,
                help=metric.help,
                labelnames=metric.labelnames,
                samples=dict(metric.values()),
            )
            for name, metric in metrics
        ]
