"""Structured spans on dual clocks, exportable as Chrome ``trace_event`` JSON.

The harness runs on two clocks at once: the **simulated** clock that the
browser model, retries, and deadlines are defined against, and the
**wall** clock the process actually burns.  A slowdown on one without
the other is diagnostic in itself (a fault plan stalling simulated time
vs. a storage layer stalling real time), so every span records both.

Spans nest per thread: entering a span pushes it on the calling thread's
stack, so a ``visit`` span opened inside an ``os-pass`` span carries the
right depth without any global coordination.  Finished spans land in a
**bounded ring buffer** — a multi-week campaign cannot grow the tracer
without bound; when the buffer wraps, the oldest spans are dropped and
counted in :attr:`Tracer.dropped`.

Export format is Chrome's ``trace_event`` JSON (complete ``"ph": "X"``
events), loadable in ``chrome://tracing`` and Perfetto — fitting, given
the pipeline under observation simulates Chrome's own NetLog.  Simulated
start/duration ride along in each event's ``args`` (``sim_start_ms``,
``sim_dur_ms``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

#: Default ring capacity: at one span per visit, several full-scale
#: campaign passes fit comfortably.
DEFAULT_CAPACITY = 65_536


@dataclass(slots=True)
class SpanRecord:
    """One finished span, on both clocks."""

    name: str
    category: str
    #: Wall-clock start, seconds since the tracer's epoch.
    start_wall_s: float
    dur_wall_s: float
    #: Simulated-clock start/duration in ms; None when the span ran
    #: outside any simulated timeline (e.g. an export flush).
    sim_start_ms: float | None
    sim_dur_ms: float | None
    thread_ident: int
    thread_name: str
    depth: int
    args: dict | None


class Tracer:
    """Collects spans from any number of threads into a bounded ring."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._spans: deque[SpanRecord] = deque(maxlen=capacity)
        self._epoch = time.perf_counter()
        self._stacks = threading.local()
        self._lock = threading.Lock()
        #: Spans evicted by the ring buffer (overflow accounting).
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        category: str = "repro",
        sim_now: Callable[[], float] | None = None,
        args: dict | None = None,
    ) -> Iterator[dict]:
        """Record one span around the ``with`` body.

        ``sim_now`` is a zero-argument callable returning the current
        simulated time in milliseconds (e.g. ``lambda: clock.now_ms``);
        it is sampled at entry and exit.  The yielded dict is the span's
        ``args`` — mutate it inside the body to annotate the span.
        """
        depth = getattr(self._stacks, "depth", 0)
        self._stacks.depth = depth + 1
        span_args = args if args is not None else {}
        start_wall = time.perf_counter()
        sim_start = sim_now() if sim_now is not None else None
        try:
            yield span_args
        finally:
            end_wall = time.perf_counter()
            sim_end = sim_now() if sim_now is not None else None
            self._stacks.depth = depth
            thread = threading.current_thread()
            self._append(
                SpanRecord(
                    name=name,
                    category=category,
                    start_wall_s=start_wall - self._epoch,
                    dur_wall_s=end_wall - start_wall,
                    sim_start_ms=sim_start,
                    sim_dur_ms=(
                        sim_end - sim_start
                        if sim_start is not None and sim_end is not None
                        else None
                    ),
                    thread_ident=thread.ident or 0,
                    thread_name=thread.name,
                    depth=depth,
                    args=span_args or None,
                )
            )

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(record)

    def spans(self) -> list[SpanRecord]:
        """Snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._spans)


def to_chrome_trace(tracer: Tracer) -> dict:
    """Render a tracer's spans as a Chrome ``trace_event`` document.

    Complete events (``"ph": "X"``) with microsecond timestamps relative
    to the tracer epoch; per-thread ``thread_name`` metadata events make
    the worker lanes legible in Perfetto.  Simulated-clock timings ride
    in ``args``.
    """
    spans = tracer.spans()
    # Stable small thread ids in order of first appearance.
    tids: dict[int, int] = {}
    names: dict[int, str] = {}
    for span in spans:
        if span.thread_ident not in tids:
            tids[span.thread_ident] = len(tids) + 1
            names[span.thread_ident] = span.thread_name
    events: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": names[ident]},
        }
        for ident, tid in tids.items()
    ]
    for span in spans:
        event: dict = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": round(span.start_wall_s * 1e6, 3),
            "dur": round(span.dur_wall_s * 1e6, 3),
            "pid": 1,
            "tid": tids[span.thread_ident],
        }
        args = dict(span.args) if span.args else {}
        if span.sim_start_ms is not None:
            args["sim_start_ms"] = round(span.sim_start_ms, 3)
            args["sim_dur_ms"] = round(span.sim_dur_ms or 0.0, 3)
        args["depth"] = span.depth
        event["args"] = args
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "tool": "repro-obs",
            "spans": len(spans),
            "dropped": tracer.dropped,
        },
    }
