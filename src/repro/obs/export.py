"""Exporters: Prometheus text format, JSON snapshots, periodic file sink.

Three consumers, three shapes:

* :func:`prometheus_text` — the standard exposition format, for anything
  that already scrapes Prometheus (and for humans with ``grep``);
* :func:`snapshot` / :func:`render_snapshot` — a self-describing JSON
  document (``repro-metrics-v1``) that ``repro study --metrics-out``
  writes and ``repro metrics`` renders back into a table;
* :class:`PeriodicSink` — an atomic-write file sink for long campaigns:
  call :meth:`~PeriodicSink.tick` from any per-visit hook and the
  snapshot on disk stays at most ``interval_s`` stale, crash included.

A ``.prom``/``.txt`` destination selects the Prometheus text format;
anything else gets the JSON snapshot.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time

from .metrics import HistogramValue, MetricFamily, MetricsRegistry

SNAPSHOT_FORMAT = "repro-metrics-v1"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labelnames: tuple[str, ...], labels: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labels)
    )
    return "{" + pairs + "}"


def _format_le(le: float) -> str:
    return "+Inf" if math.isinf(le) else format(le, "g")


def prometheus_text(families: list[MetricFamily]) -> str:
    """Render scrape snapshots in the Prometheus exposition format."""
    lines: list[str] = []
    for family in families:
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels in sorted(family.samples):
            value = family.samples[labels]
            if isinstance(value, HistogramValue):
                for le, cumulative in value.buckets:
                    bucket_labels = _labels_text(
                        (*family.labelnames, "le"),
                        (*labels, _format_le(le)),
                    )
                    lines.append(
                        f"{family.name}_bucket{bucket_labels} {cumulative}"
                    )
                plain = _labels_text(family.labelnames, labels)
                lines.append(f"{family.name}_sum{plain} {value.sum:g}")
                lines.append(f"{family.name}_count{plain} {value.count}")
            else:
                plain = _labels_text(family.labelnames, labels)
                lines.append(f"{family.name}{plain} {value:g}")
    return "\n".join(lines) + "\n"


def snapshot(registry: MetricsRegistry, *, meta: dict | None = None) -> dict:
    """Serialise a registry scrape as a JSON-able snapshot document."""
    metrics = []
    for family in registry.collect():
        samples = []
        for labels in sorted(family.samples):
            value = family.samples[labels]
            if isinstance(value, HistogramValue):
                samples.append(
                    {
                        "labels": list(labels),
                        "count": value.count,
                        "sum": value.sum,
                        "buckets": [
                            # JSON has no Infinity: the +Inf bound is
                            # implied by count and serialised as null.
                            [None if math.isinf(le) else le, cumulative]
                            for le, cumulative in value.buckets
                        ],
                    }
                )
            else:
                samples.append({"labels": list(labels), "value": value})
        metrics.append(
            {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": samples,
            }
        )
    return {
        "format": SNAPSHOT_FORMAT,
        "meta": meta or {},
        "metrics": metrics,
    }


def _atomic_write(path: str, text: str) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fp:
        fp.write(text)
        fp.flush()
        os.fsync(fp.fileno())
    os.replace(tmp, path)


def write_metrics(
    path: str, registry: MetricsRegistry, *, meta: dict | None = None
) -> None:
    """Write a registry scrape to ``path`` (format chosen by extension)."""
    if path.endswith((".prom", ".txt")):
        _atomic_write(path, prometheus_text(registry.collect()))
    else:
        _atomic_write(
            path, json.dumps(snapshot(registry, meta=meta), indent=2) + "\n"
        )


def write_trace(path: str, tracer) -> None:
    """Write a tracer's spans as Chrome ``trace_event`` JSON."""
    from .tracing import to_chrome_trace

    _atomic_write(path, json.dumps(to_chrome_trace(tracer)) + "\n")


class PeriodicSink:
    """Keeps an on-disk snapshot of a registry at most ``interval_s`` stale.

    ``tick()`` is safe to call per visit from any thread: it is a clock
    compare in the common case and flushes (atomically, via a rename)
    only when the interval has elapsed.  ``interval_s=0`` flushes on
    every tick.  Always :meth:`close` (or flush) at campaign end so the
    final state lands.
    """

    def __init__(
        self,
        path: str,
        registry: MetricsRegistry,
        *,
        interval_s: float = 30.0,
        meta: dict | None = None,
    ) -> None:
        if interval_s < 0:
            raise ValueError("sink interval must be >= 0")
        self.path = path
        self.registry = registry
        self.interval_s = interval_s
        self.meta = meta
        self.flushes = 0
        self._last_flush = time.monotonic()
        self._tick_lock = threading.Lock()

    def tick(self) -> bool:
        """Flush if the interval has elapsed; True when a write happened."""
        if time.monotonic() - self._last_flush < self.interval_s:
            return False
        with self._tick_lock:
            if time.monotonic() - self._last_flush < self.interval_s:
                return False
            self.flush()
            return True

    def flush(self) -> None:
        write_metrics(self.path, self.registry, meta=self.meta)
        self.flushes += 1
        self._last_flush = time.monotonic()

    def close(self) -> None:
        self.flush()


# -- snapshot rendering (the `repro metrics` subcommand) ---------------------


class SnapshotError(ValueError):
    """The file is not a ``repro-metrics-v1`` snapshot."""


def load_snapshot(path: str) -> dict:
    """Read and validate a snapshot document written by ``--metrics-out``."""
    try:
        with open(path) as fp:
            document = json.load(fp)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"not a JSON metrics snapshot: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("format") != SNAPSHOT_FORMAT
        or not isinstance(document.get("metrics"), list)
    ):
        raise SnapshotError(
            f"not a {SNAPSHOT_FORMAT} snapshot (was it written by "
            "`repro study --metrics-out`?)"
        )
    return document


def render_snapshot(document: dict) -> str:
    """Render a snapshot document as a human-readable table."""
    lines: list[str] = []
    meta = document.get("meta") or {}
    if meta:
        described = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        lines.append(f"snapshot: {described}")
        lines.append("")
    rows: list[tuple[str, str, str]] = []
    for metric in document["metrics"]:
        labelnames = metric.get("labelnames", [])
        for sample in metric.get("samples", []):
            labels = ", ".join(
                f"{name}={value}"
                for name, value in zip(labelnames, sample.get("labels", []))
            )
            if metric.get("kind") == "histogram":
                count = sample.get("count", 0)
                total = sample.get("sum", 0.0)
                value = HistogramValue(
                    buckets=[
                        (float("inf") if le is None else le, cumulative)
                        for le, cumulative in sample.get("buckets", [])
                    ],
                    sum=total,
                    count=count,
                )
                mean = total / count if count else 0.0
                rendered = (
                    f"count={count} sum={total:.6g} mean={mean:.6g} "
                    f"p50={value.quantile(0.5):.6g} "
                    f"p99={value.quantile(0.99):.6g}"
                )
            else:
                rendered = format(sample.get("value", 0.0), "g")
            rows.append((metric["name"], labels, rendered))
    if not rows:
        lines.append("(snapshot contains no samples)")
        return "\n".join(lines)
    name_width = max(len(row[0]) for row in rows) + 2
    label_width = max(len(row[1]) for row in rows) + 2
    header = f"{'metric':<{name_width}}{'labels':<{label_width}}value"
    lines.append(header)
    lines.append("-" * len(header))
    for name, labels, rendered in rows:
        lines.append(f"{name:<{name_width}}{labels:<{label_width}}{rendered}")
    return "\n".join(lines)
