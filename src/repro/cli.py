"""Command-line interface for the Knock-and-Talk reproduction.

Four subcommands:

``repro analyze NETLOG.json``
    Detect and classify local network traffic in a NetLog dump (works on
    output of ``chrome --log-net-log=...`` for the modelled event types).

``repro study [--scale S] [--population top2020|top2021|malicious]``
    Run a measurement campaign and print the RQ1/RQ2/RQ3 headline
    numbers.

``repro fsck --db PATH [--netlog-dir DIR] [--repair]``
    Audit a campaign database (and its NetLog archive) for at-rest
    corruption; with ``--repair``, apply tiered self-repair.

``repro metrics SNAPSHOT.json``
    Render a metrics snapshot (written by ``repro study
    --metrics-out``) as a human-readable table.

``repro chaos run|coverage|replay``
    Coverage-guided chaos conformance: sweep every registered fault
    seam under generated schedules, render the coverage report, replay
    a shrunk minimal repro.

``repro table N [--scale S]``
    Regenerate paper Table N (1–11).

``repro figure N [--scale S]``
    Regenerate paper Figure N (2–9).

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis import figures, rq1, rq3, tables
from .core.addresses import Locality
from .core.classifier import BehaviorClassifier
from .core.detector import LocalTrafficDetector
from .crawler.campaign import CampaignResult, run_campaign
from .netlog import NetLogParseError, ParseStats
from .netlog.streaming import iter_events_streaming
from .web import seeds as S
from .web.population import (
    build_malicious_population,
    build_top_population,
)

_DEFAULT_SCALE = 0.02

#: Exit-code convention, uniform across every subcommand (the full
#: table lives in docs/API.md):
#:
#: * ``EXIT_OK`` — the command did what was asked;
#: * ``EXIT_ISSUES`` — the command ran, and what it checked has real
#:   findings (fsck corruption, validation failures, a drain that
#:   timed out);
#: * ``EXIT_USAGE`` — the command could not run: bad flags, unreadable
#:   or invalid input, broken configuration.  Diagnostics go to stderr.
#: * ``EXIT_INTERRUPTED`` — stopped by SIGINT/SIGTERM mid-work
#:   (128 + SIGINT), after checkpointing.  A *graceful* daemon drain is
#:   ``EXIT_OK``: shutting a server down via signal is its normal exit.
EXIT_OK = 0
EXIT_ISSUES = 1
EXIT_USAGE = 2
EXIT_INTERRUPTED = 130

#: Valid ``repro table`` identifiers: the paper's 1–11 plus the WebRTC
#: era tables (5W/6W) and the era-comparison table (W).
_TABLE_IDS = tuple(str(n) for n in range(1, 12)) + ("5W", "6W", "W")


def _table_id(value: str) -> str:
    """argparse type for table ids: case-insensitive, canonicalised."""
    return value.strip().upper()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Knock and Talk (IMC 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze",
        help="detect/classify local traffic in NetLog documents "
        "(JSON or binary, auto-detected)",
    )
    analyze.add_argument(
        "netlog",
        nargs="+",
        help="path(s) to NetLog documents; several paths emit one "
        "summary line each",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical byte-stable report document — the exact "
        "bytes `repro serve` returns for the same upload (single file only)",
    )
    analyze.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parse documents across N worker processes (0 = one per "
        "CPU core; default: serial); output order is input order at any N",
    )

    study = sub.add_parser("study", help="run a measurement campaign")
    study.add_argument(
        "--population",
        choices=("top2020", "top2021", "malicious"),
        default="top2020",
    )
    study.add_argument("--scale", type=float, default=_DEFAULT_SCALE)
    study.add_argument(
        "--webrtc-policy",
        choices=("pre-m74", "mdns"),
        default=None,
        help="enable the simulated WebRTC/mDNS leak channel for top-list "
        "populations under the given Chrome policy era (pre-m74 = raw-IP "
        "host candidates, mdns = obfuscated <uuid>.local names); omit "
        "for the paper's HTTP(S)/WS-only channel",
    )
    study.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="visit attempts per site (1 = no retries)",
    )
    study.add_argument(
        "--db",
        default=None,
        metavar="PATH",
        help="persist per-visit telemetry to this SQLite file",
    )
    study.add_argument(
        "--resume",
        action="store_true",
        help="skip (OS, domain) pairs already recorded in --db",
    )
    study.add_argument(
        "--netlog-dir",
        default=None,
        metavar="DIR",
        help="archive every visit's NetLog as a checksummed document "
        "under this directory (enables tier-1 fsck repair)",
    )
    study.add_argument(
        "--netlog-format",
        choices=("json", "binary"),
        default=None,
        help="NetLog capture encoding for archived visits (default: the "
        "REPRO_NETLOG_FORMAT env var, else json); detection results are "
        "byte-identical in either format",
    )
    study.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="inject faults from this JSON plan (chaos testing)",
    )
    study.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="run visits through the supervised executor with N workers; "
        "0 is a sentinel meaning the plain sequential loop (the default, "
        "no executor at all); results are byte-identical at any N",
    )
    study.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run the campaign through the crash-tolerant sharded fabric "
        "with N worker processes; 0 is a sentinel meaning auto-size from "
        "os.cpu_count(); omit for the single-process campaign; results "
        "are byte-identical at any N",
    )
    study.add_argument(
        "--shard-dir",
        default=None,
        metavar="DIR",
        help="working directory for per-shard stores and the merge rollup "
        "(default: <db>.shards next to --db, else a temporary directory); "
        "keep it and rerun with --resume to finish an interrupted "
        "sharded run",
    )
    study.add_argument(
        "--visit-deadline",
        type=float,
        default=25_000.0,
        metavar="MS",
        help="simulated per-visit budget in ms (supervised runs; must "
        "exceed the 20s monitor window)",
    )
    study.add_argument(
        "--quarantine-after",
        type=int,
        default=3,
        metavar="K",
        help="dead-letter a visit after K deadline failures (supervised runs)",
    )
    study.add_argument(
        "--wall-deadline",
        type=float,
        default=5.0,
        metavar="S",
        help="wall-clock seconds before the watchdog cancels a wedged "
        "visit attempt (supervised runs)",
    )
    study.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="enable observability and write a metrics snapshot here "
        "(.prom/.txt = Prometheus text format, anything else = JSON)",
    )
    study.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="enable observability and write a Chrome trace_event JSON "
        "here (load in Perfetto / chrome://tracing)",
    )

    deadletter = sub.add_parser(
        "deadletter",
        help="inspect or re-queue quarantined visits in a telemetry store",
    )
    dl_sub = deadletter.add_subparsers(dest="dl_command", required=True)
    dl_list = dl_sub.add_parser("list", help="show quarantined visits")
    dl_list.add_argument("--db", required=True, metavar="PATH")
    dl_list.add_argument("--crawl", default=None, help="filter by crawl name")
    dl_retry = dl_sub.add_parser(
        "retry",
        help="clear quarantine rows so a --resume run re-attempts them",
    )
    dl_retry.add_argument("--db", required=True, metavar="PATH")
    dl_retry.add_argument("--crawl", default=None, help="filter by crawl name")
    dl_retry.add_argument("--domain", default=None, help="filter by domain")

    chaos = sub.add_parser(
        "chaos",
        help="coverage-guided chaos conformance: sweep, report, replay",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_sub.add_parser(
        "run",
        help="run a bounded conformance sweep over every registered fault seam",
    )
    chaos_run.add_argument(
        "--seed",
        default="chaos-conformance",
        help="schedule-generation seed (same seed → same schedules)",
    )
    chaos_run.add_argument(
        "--budget",
        type=int,
        default=40,
        metavar="N",
        help="maximum schedules to execute (default 40)",
    )
    chaos_run.add_argument(
        "--scale",
        type=float,
        default=0.001,
        help="population scale for the conformance campaigns",
    )
    chaos_run.add_argument(
        "--drivers",
        default=None,
        metavar="LIST",
        help="comma-separated driver subset "
        "(campaign,supervised,fabric,serve; default: all)",
    )
    chaos_run.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the JSON coverage report here",
    )
    chaos_run.add_argument(
        "--repro-dir",
        default=None,
        metavar="DIR",
        help="write minimal repro plans for any violations here",
    )
    chaos_cov = chaos_sub.add_parser(
        "coverage", help="render a saved coverage report"
    )
    chaos_cov.add_argument("report", metavar="REPORT.json")
    chaos_replay = chaos_sub.add_parser(
        "replay", help="re-run a shrunk minimal repro plan"
    )
    chaos_replay.add_argument("repro", metavar="REPRO.json")
    chaos_replay.add_argument(
        "--scale",
        type=float,
        default=0.001,
        help="population scale for the conformance campaigns",
    )

    fsck = sub.add_parser(
        "fsck",
        help="audit (and repair) a campaign database + NetLog archive",
    )
    fsck.add_argument("--db", required=True, metavar="PATH")
    fsck.add_argument(
        "--netlog-dir",
        default=None,
        metavar="DIR",
        help="the NetLog archive the campaign wrote (enables archive "
        "auditing and tier-1 re-parse repair)",
    )
    fsck.add_argument("--crawl", default=None, help="audit one crawl only")
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="apply tiered repair (re-parse → re-visit → quarantine) "
        "instead of only reporting",
    )
    fsck.add_argument(
        "--population",
        choices=("top2020", "top2021", "malicious"),
        default=None,
        help="population to re-visit damaged domains from (tier-2 repair)",
    )
    fsck.add_argument("--scale", type=float, default=_DEFAULT_SCALE)
    fsck.add_argument(
        "--webrtc-policy",
        choices=("pre-m74", "mdns"),
        default=None,
        help="policy era the audited campaign ran under — tier-2 "
        "re-visit repair must rebuild the same population",
    )
    fsck.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of text",
    )
    fsck.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="verify archived documents across N worker processes "
        "(0 = one per CPU core; default: serial); reports are "
        "byte-identical at any N",
    )

    netlog = sub.add_parser(
        "netlog",
        help="NetLog document utilities (format transcoding)",
    )
    netlog_sub = netlog.add_subparsers(dest="netlog_command", required=True)
    nl_convert = netlog_sub.add_parser(
        "convert",
        help="losslessly transcode a document between the JSON and "
        "binary formats",
    )
    nl_convert.add_argument("source", metavar="IN", help="input document")
    nl_convert.add_argument(
        "dest",
        metavar="OUT",
        help="output path ('-' writes to stdout; format inferred from "
        "the suffix unless --to is given)",
    )
    nl_convert.add_argument(
        "--to",
        choices=("json", "binary"),
        default=None,
        help="target format (default: from OUT's suffix — .json or .nlbin)",
    )

    metrics = sub.add_parser(
        "metrics",
        help="render a metrics snapshot written by study --metrics-out",
    )
    metrics.add_argument("snapshot", help="path to the JSON snapshot file")

    serve = sub.add_parser(
        "serve",
        help="run the local-traffic analysis daemon (POST NetLog uploads "
        "to /v1/analyze)",
    )
    serve.add_argument("--port", type=int, default=8734, metavar="P")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="bounded analysis worker threads",
    )
    serve.add_argument(
        "--backlog",
        type=int,
        default=8,
        metavar="N",
        help="bounded submission queue depth (429 beyond it)",
    )
    serve.add_argument(
        "--max-bytes",
        type=int,
        default=32 * 1024 * 1024,
        metavar="B",
        help="per-upload byte cap (413 beyond it)",
    )
    serve.add_argument(
        "--job-deadline",
        type=float,
        default=10.0,
        metavar="S",
        help="wall-clock seconds before the watchdog cancels one analysis",
    )
    serve.add_argument(
        "--read-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="wall-clock seconds to receive one upload body (408 beyond it)",
    )
    serve.add_argument(
        "--db",
        default=None,
        metavar="PATH",
        help="journal jobs in this telemetry store (crash-safe recovery)",
    )
    serve.add_argument(
        "--spool-dir",
        default=None,
        metavar="DIR",
        help="spool upload bytes here for crash recovery "
        "(default: <db>.spool next to --db)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="re-run jobs interrupted by a crash and warm the result "
        "cache from the journal (requires --db)",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="inject faults from this JSON plan (chaos testing)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds to wait for in-flight jobs on SIGINT/SIGTERM",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log requests to stderr"
    )

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument(
        "number",
        type=_table_id,
        choices=_TABLE_IDS,
        metavar="{1..11,5W,6W,W}",
        help="a paper table number, a WebRTC era table (5W = localhost "
        "leaks, 6W = LAN leaks), or W (pre-M74 vs mDNS era comparison)",
    )
    table.add_argument("--scale", type=float, default=_DEFAULT_SCALE)
    table.add_argument(
        "--webrtc-policy",
        choices=("pre-m74", "mdns"),
        default="mdns",
        help="policy era for tables 5W/6W (W always renders both eras)",
    )

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=range(2, 10))
    figure.add_argument("--scale", type=float, default=_DEFAULT_SCALE)

    report = sub.add_parser(
        "report", help="run the full study and emit one report document"
    )
    report.add_argument("--scale", type=float, default=_DEFAULT_SCALE)
    report.add_argument(
        "--output", "-o", default=None, help="write the report to a file"
    )

    validate = sub.add_parser(
        "validate",
        help="run the campaigns and score them against the paper's numbers",
    )
    validate.add_argument("--scale", type=float, default=_DEFAULT_SCALE)

    lint = sub.add_parser(
        "lint",
        help="lint a seeded site for local network requests (§5.4)",
    )
    lint.add_argument("domain", help="a domain from the seeded populations")

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def _cmd_analyze(
    paths: "Sequence[str]",
    *,
    as_json: bool = False,
    jobs: int | None = None,
) -> int:
    if len(paths) > 1:
        if as_json:
            print(
                "error: --json emits one canonical report document and "
                "takes exactly one file",
                file=sys.stderr,
            )
            return EXIT_USAGE
        return _cmd_analyze_many(paths, jobs=jobs)
    path = paths[0]
    if as_json:
        return _cmd_analyze_json(path)
    stats = ParseStats()
    # Stream the document through the detection sink: events fold into
    # flows as they decode, so analysis memory is bounded by the number
    # of open flows, not the document size.  ``require_events`` keeps the
    # historical exit code 2 for well-formed JSON that is not a NetLog
    # document, while truncated documents still salvage.  Bytes mode lets
    # the streaming layer sniff the document format from its magic byte.
    sink = LocalTrafficDetector().sink()
    try:
        with open(path, "rb") as fp:
            for event in iter_events_streaming(
                fp, strict=False, stats=stats, require_events=True
            ):
                sink.accept(event)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except NetLogParseError as exc:
        print(f"error: not a NetLog document: {exc}", file=sys.stderr)
        return EXIT_USAGE

    detection = sink.finish()
    print(f"{stats.parsed} events, {detection.total_flows} request flows")
    if stats.damaged:
        # Diagnostics go to stderr so piped stdout stays clean results.
        print(
            f"warning: damaged NetLog salvaged — {stats.describe()}",
            file=sys.stderr,
        )
    if not detection.has_local_activity:
        print("no localhost or LAN traffic detected")
        return EXIT_OK
    print(f"{len(detection.requests)} locally-bound requests:")
    for request in detection.requests:
        note = " (via redirect)" if request.via_redirect else ""
        print(
            f"  [{request.locality.value:<9}] "
            f"{request.scheme}://{request.host}:{request.port}"
            f"{request.path}{note}"
        )
    verdict = BehaviorClassifier().classify(detection.requests)
    print(f"classification: {verdict.behavior.value}")
    if verdict.match:
        print(f"signature: {verdict.signature_name} "
              f"({verdict.match.confidence:.0%}) — {verdict.match.detail}")
    return EXIT_OK


def _cmd_analyze_many(paths: "Sequence[str]", *, jobs: int | None) -> int:
    """``repro analyze A B C``: one summary line per document.

    The per-document parse + detection fans out across ``--jobs`` worker
    processes; output order is always input order, so the listing is
    byte-identical at any worker count.
    """
    from .netlog.parallel import analyze_paths

    summaries = analyze_paths(paths, jobs=jobs)
    failed = 0
    for summary in summaries:
        if summary.error is not None:
            failed += 1
            print(f"error: {summary.path}: {summary.error}", file=sys.stderr)
            continue
        behavior = summary.behavior or "no-local-traffic"
        line = (
            f"{summary.path}: {summary.stats.parsed} events, "
            f"{summary.total_flows} flows, "
            f"{summary.local_requests} local requests, {behavior}"
        )
        if summary.stats.damaged:
            line += f" [damaged: {summary.stats.describe()}]"
        print(line)
    return EXIT_USAGE if failed else EXIT_OK


def _cmd_netlog_convert(source: str, dest: str, to: str | None) -> int:
    """``repro netlog convert IN OUT``: lossless format transcoding."""
    import os

    from .netlog.codec import codec_for_suffix, get_codec
    from .netlog.convert import convert

    if to is None:
        suffix = os.path.splitext(dest)[1]
        codec = codec_for_suffix(suffix)
        if codec is None:
            print(
                f"error: cannot infer target format from {dest!r} "
                "(use a .json/.nlbin suffix or pass --to)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        to = codec.name
    try:
        with open(source, "rb") as fp:
            data = fp.read()
    except OSError as exc:
        print(f"error: cannot read {source}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        document = convert(data, to)
    except NetLogParseError as exc:
        print(
            f"error: {source} is not a convertible NetLog document: {exc} "
            "(repair damaged documents with `repro fsck` first)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    payload = (
        document if isinstance(document, bytes) else document.encode("utf-8")
    )
    try:
        if dest == "-":
            sys.stdout.buffer.write(payload)
        else:
            with open(dest, "wb") as fp:
                fp.write(payload)
    except OSError as exc:
        print(f"error: cannot write {dest}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if dest != "-":
        codec = get_codec(to)
        print(
            f"{source} -> {dest} ({codec.name}, {len(payload)} bytes)",
            file=sys.stderr,
        )
    return EXIT_OK


def _cmd_analyze_json(path: str) -> int:
    """``repro analyze --json``: the serve byte-identity contract.

    stdout carries exactly the canonical report text — the same bytes
    ``POST /v1/analyze`` returns for the same upload — so the chaos
    bench can diff the two without normalisation.
    """
    from .serve.report import ReportError, analyze_report, render_report

    try:
        with open(path, "rb") as fp:
            data = fp.read()
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        document = analyze_report(data)
    except ReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if document["parse"]["damaged"]:
        parse = document["parse"]
        print(
            "warning: damaged NetLog salvaged — "
            f"{parse['events']} events recovered, "
            f"{parse['dropped_malformed']} malformed dropped, "
            f"{parse['checksum_failures']} checksum failures"
            + (", truncated" if parse["truncated"] else ""),
            file=sys.stderr,
        )
    sys.stdout.write(render_report(document))
    return EXIT_OK


def _population(
    population_name: str, scale: float, webrtc_policy: str | None = None
):
    if population_name == "malicious":
        return build_malicious_population(scale=scale)
    year = 2020 if population_name == "top2020" else 2021
    return build_top_population(year, scale=scale, webrtc_policy=webrtc_policy)


def _campaign(
    population_name: str, scale: float, webrtc_policy: str | None = None
) -> CampaignResult:
    return run_campaign(_population(population_name, scale, webrtc_policy))


def _cmd_study(
    population_name: str,
    scale: float,
    *,
    webrtc_policy: str | None = None,
    retries: int = 1,
    db: str | None = None,
    resume: bool = False,
    netlog_dir: str | None = None,
    netlog_format: str | None = None,
    fault_plan: str | None = None,
    workers: int = 0,
    shards: int | None = None,
    shard_dir: str | None = None,
    visit_deadline: float = 25_000.0,
    quarantine_after: int = 3,
    wall_deadline: float = 5.0,
    metrics_out: str | None = None,
    trace_out: str | None = None,
) -> int:
    from . import obs
    from .crawler.campaign import Campaign
    from .crawler.executor import CampaignInterrupted, ExecutorConfig
    from .crawler.retry import RetryPolicy
    from .faults import FaultPlan
    from .netlog.archive import NetLogArchive
    from .obs.export import PeriodicSink, write_trace
    from .obs.progress import ProgressLine
    from .storage.db import TelemetryStore

    if resume and db is None:
        print("error: --resume requires --db", file=sys.stderr)
        return EXIT_USAGE
    if webrtc_policy is not None and population_name == "malicious":
        print(
            "error: --webrtc-policy applies to top-list populations only "
            "(the malicious sets carry no WebRTC seeds)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if retries < 1:
        print(
            f"error: --retries must be >= 1 (got {retries}; "
            "1 = single attempt, no retries)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if workers < 0:
        print(
            f"error: --workers must be >= 0 (got {workers}; "
            "0 = plain sequential loop, no executor)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if shards is not None and shards < 0:
        print(
            f"error: --shards must be >= 0 (got {shards}; "
            "0 = auto-size from os.cpu_count())",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if shards is not None and workers:
        print(
            "error: --shards and --workers are mutually exclusive "
            "(shards parallelise across processes; each shard crawls "
            "its chunks sequentially)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if shard_dir is not None and shards is None:
        print("error: --shard-dir requires --shards", file=sys.stderr)
        return EXIT_USAGE
    plan: FaultPlan | None = None
    if fault_plan is not None:
        try:
            with open(fault_plan) as fp:
                plan = FaultPlan.load(fp)
        except OSError as exc:
            print(f"error: cannot read fault plan: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except ValueError as exc:
            # Plan validation raises one actionable line naming the bad
            # field/kind — show it verbatim, never a traceback.
            print(f"error: invalid fault plan: {exc}", file=sys.stderr)
            return EXIT_USAGE

    if shards is not None:
        return _run_sharded_study(
            population_name,
            scale,
            webrtc_policy=webrtc_policy,
            shards=shards,
            shard_dir=shard_dir,
            retries=retries,
            db=db,
            resume=resume,
            netlog_dir=netlog_dir,
            netlog_format=netlog_format,
            plan=plan,
            metrics_out=metrics_out,
            trace_out=trace_out,
        )

    supervised = workers >= 1
    executor_config: ExecutorConfig | None = None
    if supervised:
        try:
            executor_config = ExecutorConfig(
                workers=workers,
                visit_deadline_ms=visit_deadline,
                quarantine_after=quarantine_after,
                wall_deadline_s=wall_deadline,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE

    # Progress/diagnostic chatter goes to stderr; stdout carries only
    # the study results so they can be piped or diffed.
    print(f"crawling {population_name} at scale {scale:.1%} ...", file=sys.stderr)
    observing = metrics_out is not None or trace_out is not None
    if observing:
        obs.enable()
    population = _population(population_name, scale, webrtc_policy)
    progress = ProgressLine(len(population.websites) * len(population.oses))
    # Long campaigns keep the on-disk snapshot at most 30 s stale; the
    # final flush at exit writes the complete picture.
    sink = (
        PeriodicSink(
            metrics_out,
            obs.registry(),
            meta={
                "population": population_name,
                "scale": scale,
                "workers": workers,
            },
        )
        if metrics_out is not None
        else None
    )

    def _on_visit(record) -> None:
        progress.update(error=not record.success)
        if sink is not None:
            sink.tick()

    store = (
        TelemetryStore(db, serialized=supervised, commit_every=100 if supervised else 0)
        if db is not None
        else None
    )
    campaign = Campaign(
        store=store,
        retry_policy=RetryPolicy(max_attempts=retries),
        fault_plan=plan,
        # The gate only matters when outages can happen.
        check_connectivity=plan is not None,
        checkpoint_every=100 if store is not None and not supervised else 0,
        executor=executor_config,
        netlog_archive=(
            NetLogArchive(netlog_dir) if netlog_dir is not None else None
        ),
        netlog_format=netlog_format,
        on_visit=_on_visit,
    )
    try:
        result = campaign.run(population, resume=resume)
    except CampaignInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ValueError as exc:
        # Configuration rejected at run time (e.g. a visit deadline
        # below the monitor window, a non-serialized store).
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        if store is not None:
            store.commit()
            store.close()
        progress.finish()
        if observing:
            try:
                if sink is not None:
                    sink.close()
                    print(f"metrics snapshot written to {metrics_out}",
                          file=sys.stderr)
                if trace_out is not None:
                    write_trace(trace_out, obs.tracer())
                    print(f"trace written to {trace_out}", file=sys.stderr)
            finally:
                obs.disable()

    if supervised and campaign.last_executor is not None:
        ex = campaign.last_executor.stats
        print(
            f"supervision: {ex.dispatched} visits across {workers} workers, "
            f"{ex.deadline_cancelled} hangs cancelled, "
            f"{ex.deadline_exceeded} over simulated budget, "
            f"{ex.quarantined} quarantined"
        )
        if store is not None and ex.quarantined:
            print(
                "quarantined visits are parked in the dead-letter queue — "
                "inspect with: repro deadletter list --db", db,
                file=sys.stderr,
            )

    retried = sum(s.retried for s in result.stats.values())
    recovered = sum(s.recovered for s in result.stats.values())
    skipped = sum(s.skipped for s in result.stats.values())
    if retries > 1 or plan is not None or retried:
        print(
            f"resilience: {retried} visits retried, "
            f"{recovered} recovered, {skipped} skipped on connectivity"
        )
    if campaign.archive_failures:
        print(
            f"warning: {campaign.archive_failures} NetLog document(s) lost "
            "to disk-full faults — audit with: repro fsck --db ... "
            f"--netlog-dir {netlog_dir}",
            file=sys.stderr,
        )
    injector = campaign.last_injector
    if injector is not None and injector.injected_total():
        injected = ", ".join(
            f"{kind.value}={count}"
            for kind, count in sorted(
                injector.injected.items(), key=lambda kv: kv[0].value
            )
        )
        print(f"injected faults: {injected}")
    _print_study_summary(result)
    return EXIT_OK


def _print_study_summary(result: CampaignResult) -> None:
    summary = rq1.summarize_activity(result.findings, Locality.LOCALHOST)
    lan = [f for f in result.findings if f.has_lan_activity]
    print(f"localhost-active sites: {summary.total_sites}")
    print(f"per OS: {summary.per_os}")
    print(f"LAN-active sites: {len(lan)}")
    print("behaviour classes:")
    for behavior, count in sorted(
        rq3.behavior_counts(result.findings, Locality.LOCALHOST).items(),
        key=lambda kv: -kv[1],
    ):
        print(f"  {behavior.value:<24}{count:>5}")


def _run_sharded_study(
    population_name: str,
    scale: float,
    *,
    webrtc_policy: str | None = None,
    shards: int,
    shard_dir: str | None,
    retries: int,
    db: str | None,
    resume: bool,
    netlog_dir: str | None,
    netlog_format: str | None,
    plan,
    metrics_out: str | None,
    trace_out: str | None,
) -> int:
    """``repro study --shards N``: the crash-tolerant sharded fabric.

    Each shard is a spawned worker process with its own WAL-mode store;
    the coordinator supervises them (heartbeats, bounded restart with
    resume, work stealing) and folds every shard store into one rollup
    whose Table 1/Table 5 content is byte-identical to a serial run.
    """
    import tempfile

    from . import obs
    from .crawler.executor import CampaignInterrupted
    from .crawler.fabric import (
        CrawlFabric,
        FabricConfig,
        FabricError,
        resolve_shards,
    )
    from .crawler.shard import PopulationSpec
    from .obs.export import PeriodicSink, write_trace
    from .obs.progress import ProgressLine

    resolved = resolve_shards(shards)
    observing = metrics_out is not None or trace_out is not None
    if observing:
        obs.enable()
    cleanup: tempfile.TemporaryDirectory | None = None
    if shard_dir is None:
        if db is not None:
            shard_dir = db + ".shards"
        else:
            cleanup = tempfile.TemporaryDirectory(prefix="repro-shards-")
            shard_dir = cleanup.name
    spec = PopulationSpec(
        population=population_name, scale=scale, webrtc_policy=webrtc_policy
    )
    print(
        f"crawling {population_name} at scale {scale:.1%} across "
        f"{resolved} shard processes ...",
        file=sys.stderr,
    )
    population = _population(population_name, scale, webrtc_policy)
    progress = ProgressLine(len(population.websites) * len(population.oses))
    sink = (
        PeriodicSink(
            metrics_out,
            obs.registry(),
            meta={
                "population": population_name,
                "scale": scale,
                "shards": resolved,
            },
        )
        if metrics_out is not None
        else None
    )
    reported = 0

    def _on_progress(total_visits: int) -> None:
        # The fabric reports cumulative fresh visits across all shards;
        # feed the delta into the per-visit progress line.
        nonlocal reported
        for _ in range(max(total_visits - reported, 0)):
            progress.update()
        reported = max(reported, total_visits)
        if sink is not None:
            sink.tick()

    fabric = CrawlFabric(
        spec,
        FabricConfig(
            shards=resolved,
            retries=retries,
            check_connectivity=plan is not None,
            netlog_format=netlog_format,
        ),
        workdir=shard_dir,
        rollup_path=db,
        archive_root=netlog_dir,
        fault_plan=plan,
        on_visit=_on_progress,
    )
    try:
        outcome = fabric.run(resume=resume)
    except CampaignInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except (FabricError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        progress.finish()
        if observing:
            try:
                if sink is not None:
                    sink.close()
                    print(
                        f"metrics snapshot written to {metrics_out}",
                        file=sys.stderr,
                    )
                if trace_out is not None:
                    write_trace(trace_out, obs.tracer())
                    print(f"trace written to {trace_out}", file=sys.stderr)
            finally:
                obs.disable()
        if cleanup is not None:
            cleanup.cleanup()

    report = outcome.report
    restart_note = ""
    if report.total_restarts:
        reasons = [
            reason
            for causes in report.restarts.values()
            for reason in causes
        ]
        restart_note = (
            f", {report.total_restarts} restarts "
            f"({', '.join(sorted(set(reasons)))})"
        )
    print(
        f"fabric: {resolved} shard processes, {report.chunks} chunks, "
        f"{report.steals} stolen{restart_note}; merged "
        f"{report.rows_merged} rows "
        f"({report.duplicate_rows} duplicates verified identical)"
    )
    if report.dead_shards:
        print(
            f"warning: shard(s) {report.dead_shards} exhausted their "
            "restart budget; their work was reassigned",
            file=sys.stderr,
        )
    _print_study_summary(outcome.result)
    return EXIT_OK


def _cmd_deadletter(
    dl_command: str,
    db: str,
    *,
    crawl: str | None = None,
    domain: str | None = None,
) -> int:
    import os
    import sqlite3

    from .browser.errors import NetError, table1_bucket
    from .storage.db import TelemetryStore

    if not os.path.exists(db):
        print(f"error: no such database: {db}", file=sys.stderr)
        return EXIT_USAGE
    try:
        store = TelemetryStore(db)
    except sqlite3.DatabaseError as exc:
        print(f"error: not a telemetry database: {db}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    with store:
        if dl_command == "list":
            letters = store.dead_letters(crawl)
            if not letters:
                print("dead-letter queue is empty")
                return EXIT_OK
            print(f"{'crawl':<12}{'os':<9}{'domain':<28}{'failures':>9}  reason")
            for letter in letters:
                try:
                    bucket = table1_bucket(NetError(letter.error))
                except ValueError:
                    bucket = str(letter.error)
                print(
                    f"{letter.crawl:<12}{letter.os_name:<9}"
                    f"{letter.domain:<28}{letter.failures:>9}  "
                    f"[{bucket}] {letter.reason}"
                )
            return EXIT_OK
        if not store.dead_letters(crawl):
            # Empty queue is a success, not an error: there is simply
            # nothing to re-attempt.
            print("dead-letter queue is empty — nothing to retry")
            return EXIT_OK
        requeued = store.requeue_dead_letters(crawl, domain)
        if requeued == 0:
            print("no quarantined visits match the given filters")
            return EXIT_OK
        print(
            f"re-queued {requeued} visit(s); run the study again with "
            "--resume to re-attempt them"
        )
        return EXIT_OK


def _cmd_fsck(
    db: str,
    *,
    netlog_dir: str | None = None,
    crawl: str | None = None,
    repair: bool = False,
    population_name: str | None = None,
    scale: float = _DEFAULT_SCALE,
    webrtc_policy: str | None = None,
    as_json: bool = False,
    jobs: int | None = None,
) -> int:
    import json
    import os
    import sqlite3

    from .netlog.archive import NetLogArchive
    from .storage.db import TelemetryStore
    from .storage.integrity import Revisiter, fsck, population_revisiter

    if not os.path.exists(db):
        print(f"error: no such database: {db}", file=sys.stderr)
        return EXIT_USAGE
    if netlog_dir is not None and not os.path.isdir(netlog_dir):
        print(f"error: no such archive directory: {netlog_dir}", file=sys.stderr)
        return EXIT_USAGE
    archive = NetLogArchive(netlog_dir) if netlog_dir is not None else None
    try:
        store = TelemetryStore(db)
    except sqlite3.DatabaseError as exc:
        print(f"error: not a telemetry database: {db}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    with store:
        revisit: Revisiter | None = None
        if repair and population_name is not None:
            revisit = population_revisiter(
                _population(population_name, scale, webrtc_policy),
                store,
                archive,
            )
        report = fsck(
            store,
            archive,
            crawl=crawl,
            repair=repair,
            revisit=revisit,
            jobs=jobs,
        )
        if as_json:
            print(json.dumps(report.to_json(), indent=2))
        else:
            print(report.render())
        if not report.ok:
            if not repair:
                print(
                    "rerun with --repair (and --population for tier-2 "
                    "re-visits) to repair",
                    file=sys.stderr,
                )
            return EXIT_ISSUES
        return EXIT_OK


def _cmd_metrics(path: str) -> int:
    from .obs.export import SnapshotError, load_snapshot, render_snapshot

    try:
        document = load_snapshot(path)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except SnapshotError as exc:
        print(f"error: not a metrics snapshot: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(render_snapshot(document))
    return EXIT_OK


def _cmd_serve(
    *,
    host: str,
    port: int,
    workers: int,
    backlog: int,
    max_bytes: int,
    job_deadline: float,
    read_timeout: float,
    db: str | None,
    spool_dir: str | None,
    resume: bool,
    fault_plan: str | None,
    drain_timeout: float,
    verbose: bool,
) -> int:
    """``repro serve``: run the analysis daemon until SIGINT/SIGTERM.

    A graceful signal drain (stop admitting → finish in-flight →
    flush journal) exits ``EXIT_OK``; a drain that times out with
    wedged workers exits ``EXIT_ISSUES``.
    """
    import os
    import signal
    import tempfile
    import threading

    from . import obs
    from .faults import FaultInjector, FaultPlan
    from .serve.engine import EngineConfig, JobEngine
    from .serve.http import ReproServer, ServerConfig
    from .storage.db import TelemetryStore
    from .storage.jobs import JobJournal

    if resume and db is None:
        print("error: --resume requires --db", file=sys.stderr)
        return EXIT_USAGE
    injector: FaultInjector | None = None
    if fault_plan is not None:
        try:
            with open(fault_plan) as fp:
                injector = FaultInjector(plan=FaultPlan.load(fp))
        except OSError as exc:
            print(f"error: cannot read fault plan: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except ValueError as exc:
            print(f"error: invalid fault plan: {exc}", file=sys.stderr)
            return EXIT_USAGE
    try:
        engine_config = EngineConfig(
            workers=workers,
            backlog=backlog,
            job_deadline_s=job_deadline,
        )
        server_config = ServerConfig(
            host=host,
            port=port,
            max_bytes=max_bytes,
            read_timeout_s=read_timeout,
            verbose=verbose,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    # /metricsz is part of the surface, so the daemon always observes.
    obs.enable()
    store: TelemetryStore | None = None
    journal: JobJournal | None = None
    spool_cleanup: tempfile.TemporaryDirectory | None = None
    if db is not None:
        store = TelemetryStore(db, serialized=True, wal=True)
        journal = JobJournal(
            store,
            write_fault_hook=(
                injector.journal_write_hook if injector is not None else None
            ),
        )
        if spool_dir is None:
            spool_dir = db + ".spool"
    elif spool_dir is None:
        spool_cleanup = tempfile.TemporaryDirectory(prefix="repro-serve-spool-")
        spool_dir = spool_cleanup.name

    engine = JobEngine(
        engine_config, journal=journal, spool_dir=spool_dir, injector=injector
    )
    if resume:
        recovered, cached = engine.resume()
        print(
            f"resumed: {recovered} interrupted job(s) re-queued, "
            f"{cached} cached report(s) warmed",
            file=sys.stderr,
        )
    try:
        server = ReproServer(engine, server_config, injector=injector)
    except OSError as exc:
        print(f"error: cannot bind {host}:{port}: {exc}", file=sys.stderr)
        if store is not None:
            store.close()
        return EXIT_USAGE

    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    previous = {
        signal.SIGINT: signal.signal(signal.SIGINT, _on_signal),
        signal.SIGTERM: signal.signal(signal.SIGTERM, _on_signal),
    }
    drained = True
    try:
        server.start()
        print(f"serving on {server.url} (pid {os.getpid()})", file=sys.stderr)
        while not stop.wait(0.5):
            pass
        print("signal received: draining ...", file=sys.stderr)
        drained = server.drain(drain_timeout)
        if not drained:
            print(
                "warning: drain deadline expired with wedged worker(s)",
                file=sys.stderr,
            )
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        if store is not None:
            store.close()
        if spool_cleanup is not None:
            spool_cleanup.cleanup()
        obs.disable()
    return EXIT_OK if drained else EXIT_ISSUES


def _cmd_table(
    table_id: str, scale: float, webrtc_policy: str = "mdns"
) -> int:
    if table_id in ("5W", "6W"):
        result = _campaign("top2020", scale, webrtc_policy)
        renderer = tables.table_5w if table_id == "5W" else tables.table_6w
        print(renderer(result.findings).text)
        return EXIT_OK
    if table_id == "W":
        findings_by_policy = {
            policy: _campaign("top2020", scale, policy).findings
            for policy in ("pre-m74", "mdns")
        }
        print(tables.table_webrtc_era(findings_by_policy).text)
        return EXIT_OK
    number = int(table_id)
    if number == 4:
        print(tables.table_4().text)
        return EXIT_OK
    if number in (1,):
        result_2020 = _campaign("top2020", scale)
        result_2021 = _campaign("top2021", scale)
        result_malicious = _campaign("malicious", scale / 2)
        stats = (
            list(result_2020.stats.values())
            + list(result_2021.stats.values())
            + list(result_malicious.stats.values())
        )
        print(tables.table_1(stats).text)
        return EXIT_OK
    if number in (2, 8, 9):
        result = _campaign("malicious", scale)
        if number == 2:
            sizes = {
                "malware": S.MALWARE_COUNT,
                "abuse": S.ABUSE_COUNT,
                "phishing": S.PHISHING_COUNT,
            }
            print(tables.table_2(result.findings, result.stats, sizes).text)
        elif number == 8:
            print(tables.table_8(result.findings).text)
        else:
            print(tables.table_9(result.findings).text)
        return EXIT_OK
    if number in (7, 10):
        result_2021 = _campaign("top2021", scale)
        if number == 10:
            print(tables.table_10(result_2021.findings).text)
            return EXIT_OK
        result_2020 = _campaign("top2020", scale)
        print(tables.table_7(result_2021.findings, result_2020.findings).text)
        return EXIT_OK
    result = _campaign("top2020", scale)
    renderer = {
        3: tables.table_3,
        5: tables.table_5,
        6: tables.table_6,
        11: tables.table_11,
    }[number]
    print(renderer(result.findings).text)
    return EXIT_OK


def _cmd_figure(number: int, scale: float) -> int:
    if number in (6, 8, 9):
        result = _campaign("top2021", scale)
        renderer = {
            6: figures.figure_6,
            8: figures.figure_8,
            9: figures.figure_9,
        }[number]
        print(renderer(result.findings).text)
        return EXIT_OK
    if number == 7:
        result = _campaign("malicious", scale)
        print(figures.figure_7(result.findings).text)
        return EXIT_OK
    result = _campaign("top2020", scale)
    if number == 2:
        print(figures.figure_2(result.findings).text)
        malicious = _campaign("malicious", scale)
        print(figures.figure_2(malicious.findings, name="Figure 2b").text)
    elif number == 3:
        print(figures.figure_3(result.findings).text)
    elif number == 4:
        malicious = _campaign("malicious", scale)
        print(figures.figure_4(result.findings, malicious.findings).text)
    elif number == 5:
        print(figures.figure_5(result.findings).text)
    return EXIT_OK


def _cmd_report(scale: float, output: str | None) -> int:
    from .analysis.report_doc import StudyResults, render_report

    results = StudyResults(
        top2020=_campaign("top2020", scale),
        top2021=_campaign("top2021", scale),
        malicious=_campaign("malicious", scale / 2),
    )
    text = render_report(results)
    if output:
        with open(output, "w") as fp:
            fp.write(text + "\n")
        print(f"report written to {output}")
    else:
        print(text)
    return EXIT_OK


def _cmd_validate(scale: float) -> int:
    from .analysis.validate import validate

    failures = 0
    for population_name in ("top2020", "top2021", "malicious"):
        print(f"\n== {population_name} (scale {scale:.1%}) ==")
        result = _campaign(population_name, scale)
        card = validate(result)
        print(card.render())
        failures += card.failed
    return 0 if failures == 0 else 1


def _cmd_lint(domain: str) -> int:
    from .defense.devlint import lint_website

    for builder, kwargs in (
        (build_top_population, {"year": 2020}),
        (build_top_population, {"year": 2021}),
        (build_malicious_population, {}),
    ):
        population = builder(scale=0.001, **kwargs)  # type: ignore[operator]
        if domain in population.by_domain:
            report = lint_website(population.website(domain))
            print(report.render())
            return EXIT_OK
    print(f"error: {domain} is not in any seeded population", file=sys.stderr)
    return EXIT_USAGE


_CHAOS_DRIVERS = ("campaign", "supervised", "fabric", "serve")


def _cmd_chaos_run(
    *,
    seed: str,
    budget: int,
    scale: float,
    drivers: str | None,
    report_path: str | None,
    repro_dir: str | None,
) -> int:
    """Coverage-guided conformance sweep.

    ``EXIT_OK`` only when every registered seam fired and every invariant
    held; any violation (with its shrunk repro on disk, if ``--repro-dir``
    was given) or uncovered seam exits ``EXIT_ISSUES``.
    """
    import json
    import shutil
    import tempfile

    from repro.chaos.drivers import ChaosContext, build_drivers
    from repro.chaos.engine import ChaosEngine, EngineBudget, render_coverage
    from repro.chaos.registry import SeamDriftError

    if budget < 1:
        print("error: --budget must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if not 0.0 < scale <= 1.0:
        print("error: --scale must be in (0, 1]", file=sys.stderr)
        return EXIT_USAGE
    selected = (
        _CHAOS_DRIVERS
        if drivers is None
        else tuple(name.strip() for name in drivers.split(",") if name.strip())
    )
    unknown = [name for name in selected if name not in _CHAOS_DRIVERS]
    if unknown or not selected:
        print(
            "error: --drivers must be a comma-separated subset of "
            + ",".join(_CHAOS_DRIVERS),
            file=sys.stderr,
        )
        return EXIT_USAGE

    workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        ctx = ChaosContext(workdir=workdir, scale=scale)
        driver_map = {
            name: driver
            for name, driver in build_drivers(ctx).items()
            if name in selected
        }
        try:
            engine = ChaosEngine(
                ctx,
                seed=seed,
                budget=EngineBudget(max_schedules=budget),
                repro_dir=repro_dir,
                drivers=driver_map,
                progress=lambda line: print(f"chaos: {line}", file=sys.stderr),
            )
        except SeamDriftError as exc:
            print(f"error: seam registry drift: {exc}", file=sys.stderr)
            return EXIT_ISSUES
        try:
            report = engine.run()
        except KeyboardInterrupt:
            print("chaos: interrupted", file=sys.stderr)
            return EXIT_INTERRUPTED
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    record = report.to_json()
    if report_path is not None:
        with open(report_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(render_coverage(record), end="")
    if not report.ok:
        return EXIT_ISSUES
    return EXIT_OK


def _cmd_chaos_coverage(path: str) -> int:
    """Render a saved coverage report; ``EXIT_ISSUES`` when it records
    violations or incomplete seam coverage, so it can gate CI."""
    import json

    from repro.chaos.engine import render_coverage

    try:
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
    except OSError as exc:
        print(f"error: cannot read coverage report: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except json.JSONDecodeError as exc:
        print(f"error: invalid coverage report: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        print(render_coverage(record), end="")
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: invalid coverage report: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if record.get("violations") or record.get("coverage_percent", 0) < 100.0:
        return EXIT_ISSUES
    return EXIT_OK


def _cmd_chaos_replay(path: str, *, scale: float) -> int:
    """Re-run a minimal repro plan on its driver.

    ``EXIT_ISSUES`` when the recorded invariant violation still
    reproduces (the bug is alive), ``EXIT_OK`` when it no longer does.
    """
    import shutil
    import tempfile

    from repro.chaos.drivers import ChaosContext
    from repro.chaos.engine import ChaosEngine
    from repro.chaos.shrink import MinimalRepro

    try:
        repro = MinimalRepro.load(path)
    except OSError as exc:
        print(f"error: cannot read repro: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ValueError as exc:
        print(f"error: invalid repro: {exc}", file=sys.stderr)
        return EXIT_USAGE

    workdir = tempfile.mkdtemp(prefix="repro-chaos-replay-")
    try:
        ctx = ChaosContext(workdir=workdir, scale=scale)
        engine = ChaosEngine(ctx, seed=repro.engine_seed)
        try:
            violations = engine.replay(repro)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except KeyboardInterrupt:
            print("chaos: interrupted", file=sys.stderr)
            return EXIT_INTERRUPTED
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    plan_text = ", ".join(
        f"{spec.kind.value}(rate={spec.rate}, times={spec.times})"
        for spec in repro.plan.faults
    )
    reproduced = [v for v in violations if v.invariant == repro.invariant]
    if reproduced:
        print(
            f"reproduced: {repro.invariant} under [{plan_text}] "
            f"on driver {repro.driver} — {reproduced[0].detail}"
        )
        return EXIT_ISSUES
    print(
        f"not reproduced: {repro.invariant} no longer fires under "
        f"[{plan_text}] on driver {repro.driver}"
    )
    return EXIT_OK


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "analyze":
        return _cmd_analyze(args.netlog, as_json=args.json, jobs=args.jobs)
    if args.command == "netlog":
        return _cmd_netlog_convert(args.source, args.dest, args.to)
    if args.command == "serve":
        return _cmd_serve(
            host=args.host,
            port=args.port,
            workers=args.workers,
            backlog=args.backlog,
            max_bytes=args.max_bytes,
            job_deadline=args.job_deadline,
            read_timeout=args.read_timeout,
            db=args.db,
            spool_dir=args.spool_dir,
            resume=args.resume,
            fault_plan=args.fault_plan,
            drain_timeout=args.drain_timeout,
            verbose=args.verbose,
        )
    if args.command == "study":
        return _cmd_study(
            args.population,
            args.scale,
            webrtc_policy=args.webrtc_policy,
            retries=args.retries,
            db=args.db,
            resume=args.resume,
            netlog_dir=args.netlog_dir,
            netlog_format=args.netlog_format,
            fault_plan=args.fault_plan,
            workers=args.workers,
            shards=args.shards,
            shard_dir=args.shard_dir,
            visit_deadline=args.visit_deadline,
            quarantine_after=args.quarantine_after,
            wall_deadline=args.wall_deadline,
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
        )
    if args.command == "deadletter":
        return _cmd_deadletter(
            args.dl_command, args.db, crawl=args.crawl,
            domain=getattr(args, "domain", None),
        )
    if args.command == "chaos":
        if args.chaos_command == "run":
            return _cmd_chaos_run(
                seed=args.seed,
                budget=args.budget,
                scale=args.scale,
                drivers=args.drivers,
                report_path=args.report,
                repro_dir=args.repro_dir,
            )
        if args.chaos_command == "coverage":
            return _cmd_chaos_coverage(args.report)
        return _cmd_chaos_replay(args.repro, scale=args.scale)
    if args.command == "fsck":
        return _cmd_fsck(
            args.db,
            netlog_dir=args.netlog_dir,
            crawl=args.crawl,
            repair=args.repair,
            population_name=args.population,
            scale=args.scale,
            webrtc_policy=args.webrtc_policy,
            as_json=args.json,
            jobs=args.jobs,
        )
    if args.command == "metrics":
        return _cmd_metrics(args.snapshot)
    if args.command == "table":
        return _cmd_table(args.number, args.scale, args.webrtc_policy)
    if args.command == "figure":
        return _cmd_figure(args.number, args.scale)
    if args.command == "report":
        return _cmd_report(args.scale, args.output)
    if args.command == "validate":
        return _cmd_validate(args.scale)
    if args.command == "lint":
        return _cmd_lint(args.domain)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
