"""Tranco-like ranked top list generation.

The paper measures the landing pages of the Tranco top 100K (snapshots of
2020-06-03 and 2021-03-11, with ~75% overlap between the two).  We build
equivalent ranked lists: the seeded (behaviour-carrying) domains sit at
their paper-reported ranks, and the remaining slots are filled with
deterministic synthetic domains.  The 2021 list re-uses ~75% of the 2020
filler, drops the domains the paper marks as absent from the 2021 snapshot,
and introduces the 2021 newcomers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TopListEntry:
    """One (rank, domain) row of a top list."""

    rank: int
    domain: str


class TrancoList:
    """An immutable ranked domain list with O(1) lookups both ways."""

    def __init__(self, name: str, entries: list[TopListEntry]) -> None:
        ranks = [e.rank for e in entries]
        if len(set(ranks)) != len(ranks):
            raise ValueError("duplicate ranks in top list")
        domains = [e.domain for e in entries]
        if len(set(domains)) != len(domains):
            raise ValueError("duplicate domains in top list")
        self.name = name
        self._entries = sorted(entries, key=lambda e: e.rank)
        self._rank_by_domain = {e.domain: e.rank for e in self._entries}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __contains__(self, domain: str) -> bool:
        return domain in self._rank_by_domain

    def rank_of(self, domain: str) -> int | None:
        return self._rank_by_domain.get(domain)

    def domains(self) -> list[str]:
        return [e.domain for e in self._entries]

    def head(self, n: int) -> list[TopListEntry]:
        return self._entries[:n]


def _filler_domain(rank: int, generation: str) -> str:
    """Deterministic synthetic domain for an unseeded rank slot."""
    return f"site-{generation}-{rank:06d}.example"


def build_top_list(
    name: str,
    size: int,
    seeded: dict[str, int],
    *,
    filler_generation: str = "a",
    reuse_filler_from: "TrancoList | None" = None,
    reuse_fraction: float = 0.75,
) -> TrancoList:
    """Assemble a ranked list of ``size`` entries.

    ``seeded`` maps domain -> requested rank.  Collisions (two seeds asking
    for the same rank) shift the later seed down to the next free slot.
    When ``reuse_filler_from`` is given, filler slots re-use that list's
    filler domains for the first ``reuse_fraction`` of slots (modelling
    Tranco's ~75% half-year overlap) and mint fresh names for the rest.
    """
    if size <= 0:
        raise ValueError("top list size must be positive")
    if any(rank < 1 for rank in seeded.values()):
        raise ValueError("ranks are 1-based")

    by_rank: dict[int, str] = {}
    for domain, requested in sorted(seeded.items(), key=lambda kv: (kv[1], kv[0])):
        rank = requested
        while rank in by_rank:
            rank += 1
        if rank > size:
            raise ValueError(f"no free slot at or below {size} for {domain}")
        by_rank[rank] = domain

    previous_filler: list[str] = []
    if reuse_filler_from is not None:
        previous_filler = [
            e.domain
            for e in reuse_filler_from
            if e.domain.startswith("site-")
        ]
    reuse_count = int(len(previous_filler) * reuse_fraction)
    reusable = iter(previous_filler[:reuse_count])

    seeded_domains = set(by_rank.values())
    entries: list[TopListEntry] = []
    for rank in range(1, size + 1):
        domain = by_rank.get(rank)
        if domain is None:
            domain = next(reusable, None)
            # A reused filler name may collide with a seed that moved
            # between snapshots; skip those.
            while domain is not None and domain in seeded_domains:
                domain = next(reusable, None)
            if domain is None:
                domain = _filler_domain(rank, filler_generation)
        entries.append(TopListEntry(rank=rank, domain=domain))
    return TrancoList(name, entries)
