"""Blocklist substrate: SURBL / URLHaus / PhishTank style feeds.

The paper draws ~145K malicious URLs from three blocklists (section 3.1)
and, because blocklists list many URLs per domain, selects **one URL per
domain** to maximise domain coverage.  We model feeds as (url, category,
source) records and reproduce that dedup step.
"""

from __future__ import annotations

from dataclasses import dataclass
from urllib.parse import urlsplit

CATEGORIES = ("malware", "abuse", "phishing", "uncategorized")
SOURCES = ("urlhaus", "surbl", "phishtank")


@dataclass(frozen=True, slots=True)
class BlocklistEntry:
    """One listed malicious URL."""

    url: str
    category: str
    source: str

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category {self.category!r}")
        if self.source not in SOURCES:
            raise ValueError(f"unknown source {self.source!r}")

    @property
    def domain(self) -> str:
        host = urlsplit(self.url).hostname or ""
        return host.lower()


class Blocklist:
    """A named feed of malicious URLs."""

    def __init__(self, name: str, entries: list[BlocklistEntry]) -> None:
        self.name = name
        self.entries = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


def dedupe_one_url_per_domain(
    blocklists: list[Blocklist],
) -> list[BlocklistEntry]:
    """Merge feeds, keeping the first-listed URL for each domain.

    Mirrors the paper's coverage-maximising selection.  Feed order defines
    precedence, and within a feed the listing order does.
    """
    seen: set[str] = set()
    selected: list[BlocklistEntry] = []
    for blocklist in blocklists:
        for entry in blocklist:
            domain = entry.domain
            if not domain or domain in seen:
                continue
            seen.add(domain)
            selected.append(entry)
    return selected


def synthesize_feed(
    name: str,
    category: str,
    domains: list[str],
    *,
    source: str,
    urls_per_domain: int = 1,
) -> Blocklist:
    """Build a feed listing ``urls_per_domain`` URLs for each domain.

    With ``urls_per_domain > 1`` the feed exercises the dedup logic the
    way real feeds do (URLHaus lists every payload path it sees).
    """
    if urls_per_domain < 1:
        raise ValueError("urls_per_domain must be >= 1")
    entries: list[BlocklistEntry] = []
    for domain in domains:
        for index in range(urls_per_domain):
            path = "/" if index == 0 else f"/payload/{index}.exe"
            entries.append(
                BlocklistEntry(
                    url=f"http://{domain}{path}", category=category, source=source
                )
            )
    return Blocklist(name, entries)
