"""Top lists and blocklists: the paper's two measurement populations."""

from .blocklists import (
    CATEGORIES,
    SOURCES,
    Blocklist,
    BlocklistEntry,
    dedupe_one_url_per_domain,
    synthesize_feed,
)
from .tranco import TopListEntry, TrancoList, build_top_list

__all__ = [
    "CATEGORIES",
    "SOURCES",
    "Blocklist",
    "BlocklistEntry",
    "dedupe_one_url_per_domain",
    "synthesize_feed",
    "TopListEntry",
    "TrancoList",
    "build_top_list",
]
