"""Typed row records for the telemetry store.

These mirror the database schema in :mod:`repro.storage.db`; keeping them
as plain dataclasses lets analysis code work on query results without
touching SQL.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class VisitRow:
    """One page visit (site × OS × crawl)."""

    visit_id: int
    crawl: str
    domain: str
    os_name: str
    success: bool
    error: int
    rank: int | None
    category: str | None
    #: Connectivity-gate skip: a measurement-side outage, not a site
    #: failure (kept out of success/failure accounting, as in Table 1).
    skipped: bool = False
    #: Visit attempts the outcome took (1 = first try).
    attempts: int = 1


@dataclass(frozen=True, slots=True)
class EventRow:
    """One stored NetLog event."""

    visit_id: int
    time: float
    type: int
    source_id: int
    source_type: int
    phase: int
    params_json: str


@dataclass(frozen=True, slots=True)
class DeadLetterRow:
    """One quarantined (crawl, domain, OS) visit.

    A visit lands here when it failed non-transiently ``failures`` times
    under supervision (deadline cancellations, persistent hangs); resume
    loops skip it instead of re-poisoning themselves, and
    ``repro deadletter retry`` re-queues it explicitly.
    """

    crawl: str
    domain: str
    os_name: str
    error: int
    failures: int
    reason: str


@dataclass(frozen=True, slots=True)
class LocalRequestRow:
    """One detected locally-bound request (denormalised for fast queries)."""

    visit_id: int
    crawl: str
    domain: str
    os_name: str
    locality: str
    scheme: str
    host: str
    port: int
    path: str
    time: float | None
    via_redirect: bool
