"""Crash-safe job journal for the ``repro serve`` daemon.

Every accepted upload becomes one row in the ``jobs`` table (migration
v3) keyed by a digest-derived job id, and every state change commits
immediately — the journal *is* the durability story, so a SIGKILLed
server restarted with ``--resume`` knows exactly which jobs it owes its
clients:

* ``done`` rows seed the result cache (their canonical report text is
  stored inline and served byte-identically forever);
* ``queued``/``running`` rows are interrupted work — resume re-runs each
  exactly once from its spooled upload bytes;
* ``quarantined`` rows are poison uploads that crashed the worker too
  many times; they are never retried automatically.

State machine::

    queued -> running -> done
                      -> failed       (invalid upload: terminal verdict)
                      -> queued       (crash/cancel: bounded re-run)
                      -> quarantined  (re-run budget exhausted)

Transitions outside this graph raise :class:`JournalStateError` — a
journal that can silently skip states cannot prove exactly-once recovery.

The optional ``write_fault_hook`` is the ``journal-disk-full`` seam: it
is called with ``job:<id>:<transition>`` before each write and may raise
(the fault injector raises
:class:`~repro.faults.InjectedDiskFullError`); the engine catches it and
degrades gracefully — the job still completes in memory, only its
crash-recovery durability is lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .db import TelemetryStore

#: Fault seam: called with "job:<id>:<transition>" before each write.
JournalWriteHook = Callable[[str], None]

#: Job states (the strings stored in the ``jobs.state`` column).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"

#: The full state vocabulary, in lifecycle order.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, QUARANTINED)

#: target state -> states it may be entered from.
_VALID_FROM = {
    RUNNING: (QUEUED,),
    DONE: (RUNNING,),
    FAILED: (RUNNING,),
    QUARANTINED: (RUNNING,),
    # Re-queue: a running job whose worker died (crash, deadline,
    # process kill) goes back to queued for its bounded re-run.
    QUEUED: (RUNNING,),
}


class JournalStateError(RuntimeError):
    """An illegal job state transition (journal corruption or a bug)."""


@dataclass(frozen=True, slots=True)
class JobRow:
    """One journalled job."""

    job_id: str
    digest: str
    state: str
    size_bytes: int
    attempts: int
    submitted_at: float
    started_at: float | None
    finished_at: float | None
    error: str | None
    report: str | None


_COLUMNS = (
    "job_id, digest, state, size_bytes, attempts, "
    "submitted_at, started_at, finished_at, error, report"
)


def _row(raw) -> JobRow:
    return JobRow(
        job_id=raw[0], digest=raw[1], state=raw[2], size_bytes=raw[3],
        attempts=raw[4], submitted_at=raw[5], started_at=raw[6],
        finished_at=raw[7], error=raw[8], report=raw[9],
    )


class JobJournal:
    """The serve daemon's view of the ``jobs`` table.

    Thin and synchronous: every mutation runs under the store's writer
    lock and commits before returning, so the on-disk journal never lags
    the in-memory engine by more than the statement being written.
    """

    def __init__(
        self,
        store: TelemetryStore,
        *,
        write_fault_hook: JournalWriteHook | None = None,
    ) -> None:
        self._store = store
        self.write_fault_hook = write_fault_hook

    @property
    def store(self) -> TelemetryStore:
        return self._store

    def _write(self, key: str, sql: str, args: tuple) -> int:
        """One journalled mutation: fault seam, statement, commit."""
        if self.write_fault_hook is not None:
            self.write_fault_hook(key)
        store = self._store
        with store._lock:
            cursor = store._execute(sql, args)
            store.commit()
            return cursor.rowcount

    # -- submission ---------------------------------------------------------

    def submit(
        self, job_id: str, digest: str, size_bytes: int, *, now: float
    ) -> bool:
        """Journal a new job as ``queued``; False if the id already exists.

        Idempotent by construction: the job id is digest-derived, so a
        repeat submission of the same bytes lands on the existing row.
        """
        count = self._write(
            f"job:{job_id}:submit",
            "INSERT OR IGNORE INTO jobs "
            "(job_id, digest, state, size_bytes, attempts, submitted_at) "
            "VALUES (?, ?, ?, ?, 0, ?)",
            (job_id, digest, QUEUED, size_bytes, now),
        )
        return count > 0

    # -- transitions --------------------------------------------------------

    def _transition(
        self, job_id: str, to_state: str, *, sets: str, args: tuple
    ) -> None:
        allowed = _VALID_FROM[to_state]
        placeholders = ",".join("?" * len(allowed))
        count = self._write(
            f"job:{job_id}:{to_state}",
            f"UPDATE jobs SET state = ?, {sets} "
            f"WHERE job_id = ? AND state IN ({placeholders})",
            (to_state, *args, job_id, *allowed),
        )
        if count == 0:
            row = self.get(job_id)
            current = row.state if row is not None else "<missing>"
            raise JournalStateError(
                f"job {job_id}: illegal transition {current} -> {to_state}"
            )

    def mark_running(self, job_id: str, *, now: float) -> None:
        """``queued -> running``; counts one attempt."""
        self._transition(
            job_id, RUNNING,
            sets="attempts = attempts + 1, started_at = ?, error = NULL",
            args=(now,),
        )

    def mark_done(self, job_id: str, report: str, *, now: float) -> None:
        """``running -> done`` with the canonical report text inline."""
        self._transition(
            job_id, DONE,
            sets="report = ?, finished_at = ?, error = NULL",
            args=(report, now),
        )

    def mark_failed(self, job_id: str, error: str, *, now: float) -> None:
        """``running -> failed``: a terminal verdict (e.g. not a NetLog)."""
        self._transition(
            job_id, FAILED, sets="error = ?, finished_at = ?", args=(error, now)
        )

    def mark_quarantined(self, job_id: str, error: str, *, now: float) -> None:
        """``running -> quarantined``: the re-run budget is exhausted."""
        self._transition(
            job_id, QUARANTINED,
            sets="error = ?, finished_at = ?",
            args=(error, now),
        )

    def requeue(self, job_id: str, reason: str) -> None:
        """``running -> queued``: the worker died; the job gets re-run."""
        self._transition(job_id, QUEUED, sets="error = ?", args=(reason,))

    def resubmit_lost(self, job_id: str, *, now: float) -> bool:
        """``failed -> queued``, allowed only for spool-loss failures.

        Losing the spooled upload in a crash is a verdict about the
        crash, not about the bytes — when a client re-supplies them the
        job is eligible to run again.  The SQL predicate keeps every
        true verdict (parse failures, quarantines) terminal; returns
        False when the row was not a resurrectable one.
        """
        count = self._write(
            f"job:{job_id}:resubmit",
            "UPDATE jobs SET state = ?, submitted_at = ?, attempts = 0, "
            "error = NULL, report = NULL, started_at = NULL, "
            "finished_at = NULL "
            "WHERE job_id = ? AND state = ? AND error LIKE '%spool lost%'",
            (QUEUED, now, job_id, FAILED),
        )
        return count > 0

    # -- queries ------------------------------------------------------------

    def get(self, job_id: str) -> JobRow | None:
        raw = self._store._execute(
            f"SELECT {_COLUMNS} FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        return _row(raw) if raw is not None else None

    def jobs(self, state: str | None = None) -> list[JobRow]:
        sql = f"SELECT {_COLUMNS} FROM jobs"
        args: tuple = ()
        if state is not None:
            sql += " WHERE state = ?"
            args = (state,)
        rows = self._store._execute(
            sql + " ORDER BY submitted_at, job_id", args
        ).fetchall()
        return [_row(raw) for raw in rows]

    def recoverable(self) -> list[JobRow]:
        """Jobs a killed server owes its clients (queued or running).

        A ``running`` row at startup is the signature of a SIGKILL
        mid-analysis — no clean shutdown ever leaves one behind.
        """
        rows = self._store._execute(
            f"SELECT {_COLUMNS} FROM jobs WHERE state IN (?, ?) "
            "ORDER BY submitted_at, job_id",
            (QUEUED, RUNNING),
        ).fetchall()
        return [_row(raw) for raw in rows]

    def completed_reports(self) -> dict[str, str]:
        """digest -> canonical report text for every ``done`` job."""
        rows = self._store._execute(
            "SELECT digest, report FROM jobs "
            "WHERE state = ? AND report IS NOT NULL",
            (DONE,),
        ).fetchall()
        return {digest: report for digest, report in rows}

    def counts(self) -> dict[str, int]:
        """state -> row count (every state present, zero or not)."""
        out = {state: 0 for state in JOB_STATES}
        for state, count in self._store._execute(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state"
        ):
            out[state] = count
        return out
