"""SQLite-backed telemetry store.

The paper parsed Chrome NetLogs and "stored the network events in a
database for efficient querying" (section 3.1; 11 TB across the study).
This store reproduces that logical design at laptop scale:

* ``visits`` — one row per (crawl, domain, OS) page load with its outcome,
  retry accounting, and the connectivity-skip flag (so stored rows carry
  the same Table 1 semantics as :class:`~repro.crawler.crawl.CrawlStats`);
* ``events`` — raw NetLog events (optional: bulky; stored on request);
* ``local_requests`` — denormalised detected local requests, the table
  every analysis query actually hits — complete enough to reconstruct
  the original :class:`~repro.core.detector.DetectionResult`, which is
  what checkpoint/resume rides on.

Use as a context manager; pass ``":memory:"`` for throwaway stores.

The optional ``write_fault_hook`` is the ``storage.db`` fault seam: it is
called once per visit write with the row key and may raise (the fault
injector raises :class:`~repro.faults.StorageWriteError`) to simulate a
failed write; the campaign layer retries around it.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Callable, Iterable

from .. import obs
from ..core.addresses import Locality, RequestTarget
from ..core.detector import DetectionResult, LocalRequest
from ..netlog.events import NetLogEvent
from .integrity import detection_request_facts, visit_digest
from .migrations import migrate
from .records import DeadLetterRow, LocalRequestRow, VisitRow

#: Fault seam: called with "crawl:domain:os" before each visit write.
WriteFaultHook = Callable[[str], None]

#: How long SQLite itself waits on a held lock before raising
#: ``database is locked`` (PRAGMA busy_timeout, milliseconds).
BUSY_TIMEOUT_MS = 5_000

#: Bounded application-level retry on top of the busy timeout: shard
#: stores are written by worker processes while the merge stage reads
#: them, and a WAL checkpoint can still surface a transient lock.
_LOCK_RETRY_ATTEMPTS = 6
_LOCK_RETRY_BASE_S = 0.05


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    message = str(exc)
    return "database is locked" in message or "database is busy" in message


_COMMIT_SECONDS = obs.histogram(
    "repro_store_commit_seconds",
    "telemetry store commit latency (batch = commit_every auto-commits, "
    "explicit = caller checkpoints and flushes)",
    ("kind",),
)
_VISIT_WRITES = obs.counter(
    "repro_store_visit_writes_total",
    "visit rows written to the telemetry store",
)


class TelemetryStore:
    """SQLite store for crawl telemetry.

    ``serialized=True`` turns on the concurrent-writer mode the
    supervised executor needs: the connection is shared across threads
    behind an internal writer lock, and file-backed stores switch to WAL
    journaling so readers never block a checkpointing writer.

    ``commit_every=N`` batches commits: every Nth write commits the
    transaction (instead of the caller committing per visit), and
    :meth:`flush` forces the tail out on drain/exit.  A crash loses at
    most the last ``N - 1`` writes — exactly the recovery window the
    checkpoint/resume machinery is tested against.

    ``wal=True`` forces WAL journaling regardless of ``serialized``: the
    sharded crawl fabric opens each shard's file-backed store this way so
    a SIGKILLed worker process never corrupts committed rows and the
    merge stage can read a store another process is still writing.

    Cross-process lock contention is absorbed twice: SQLite itself waits
    ``busy_timeout_ms`` on a held lock, and every statement/commit is
    retried a bounded number of times on ``database is locked`` — so
    concurrent shard-merge reads never flake.
    """

    def __init__(
        self,
        path: str = ":memory:",
        *,
        write_fault_hook: WriteFaultHook | None = None,
        serialized: bool = False,
        commit_every: int = 0,
        wal: bool | None = None,
        busy_timeout_ms: int = BUSY_TIMEOUT_MS,
    ) -> None:
        if commit_every < 0:
            raise ValueError("commit_every must be >= 0")
        if busy_timeout_ms < 0:
            raise ValueError("busy_timeout_ms must be >= 0")
        file_backed = path != ":memory:" and not path.startswith("file:")
        if file_backed:
            parent = os.path.dirname(os.path.abspath(path))
            try:
                os.makedirs(parent, exist_ok=True)
            except OSError as exc:
                raise RuntimeError(
                    f"cannot create telemetry store directory {parent!r}: {exc}"
                ) from exc
        self._conn = sqlite3.connect(path, check_same_thread=not serialized)
        self._lock = threading.RLock()
        self.serialized = serialized
        self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
        if wal is None:
            wal = serialized and file_backed
        if wal and file_backed:
            self._conn.execute("PRAGMA journal_mode=WAL")
        else:
            self._conn.execute("PRAGMA journal_mode=MEMORY")
        # Numbered crash-safe migrations (PRAGMA user_version) bring any
        # database — fresh, seed-era, or PR-2-era — to the current schema.
        migrate(self._conn)
        self.write_fault_hook = write_fault_hook
        self.commit_every = commit_every
        self._pending_writes = 0
        self._closed = False

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (integrity scans, ad-hoc queries)."""
        return self._conn

    # -- lock-contention retry --------------------------------------------

    def _retry(self, operation: Callable):
        """Run ``operation``, retrying bounded on cross-process locks.

        SQLite already waits ``busy_timeout`` before surfacing
        ``database is locked``; this adds a short, bounded application
        retry on top so shard stores being merged while a worker process
        checkpoints never flake a reader.
        """
        for attempt in range(1, _LOCK_RETRY_ATTEMPTS + 1):
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                if not _is_locked(exc) or attempt >= _LOCK_RETRY_ATTEMPTS:
                    raise
                time.sleep(_LOCK_RETRY_BASE_S * attempt)

    def _execute(self, sql: str, args: Iterable = ()) -> sqlite3.Cursor:
        """``conn.execute`` with the bounded lock retry."""
        return self._retry(lambda: self._conn.execute(sql, args))

    # -- lifecycle ---------------------------------------------------------

    def _timed_commit(self, kind: str) -> None:
        if _COMMIT_SECONDS.enabled:
            start = time.perf_counter()
            self._retry(self._conn.commit)
            _COMMIT_SECONDS.observe(time.perf_counter() - start, labels=(kind,))
        else:
            self._retry(self._conn.commit)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed (further closes are no-ops)."""
        return self._closed

    def close(self) -> None:
        """Flush any batched writes and release the connection.

        Idempotent: closing an already-closed store is a no-op, so a
        caller stack where several owners defensively close the same
        store (an explicit ``close()`` inside a ``with`` block, the serve
        journal's drain path plus its ``finally``) is always safe.
        """
        with self._lock:
            if self._closed:
                return
            if self.commit_every and self._pending_writes:
                # Batched mode: a clean close flushes the tail batch; only
                # a crash (process death, no close) loses pending writes.
                self._timed_commit("batch")
                self._pending_writes = 0
            self._conn.close()
            self._closed = True

    def __enter__(self) -> "TelemetryStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def commit(self) -> None:
        with self._lock:
            self._timed_commit("explicit")
            self._pending_writes = 0

    def flush(self) -> None:
        """Commit any batched writes (drain/exit path for ``commit_every``)."""
        self.commit()

    def _wrote(self) -> None:
        """Account one write; auto-commit when the batch is full."""
        if not self.commit_every:
            return
        self._pending_writes += 1
        if self._pending_writes >= self.commit_every:
            self._timed_commit("batch")
            self._pending_writes = 0

    # -- writes --------------------------------------------------------------

    def record_visit(
        self,
        crawl: str,
        domain: str,
        os_name: str,
        *,
        success: bool,
        error: int = 0,
        rank: int | None = None,
        category: str | None = None,
        skipped: bool = False,
        attempts: int = 1,
        detection: DetectionResult | None = None,
        events: Iterable[NetLogEvent] | None = None,
        webrtc_policy: str | None = None,
    ) -> int:
        """Store one visit; returns its visit id.

        ``webrtc_policy`` records the policy era the visit's simulated
        browser ran under (``pre-m74`` / ``mdns``); None means the WebRTC
        channel was off.  It is campaign metadata, not visit content, so
        it stays outside the content digest.
        """
        if self.write_fault_hook is not None:
            self.write_fault_hook(f"{crawl}:{domain}:{os_name}")
        _VISIT_WRITES.inc()
        with self._lock:
            return self._record_visit_locked(
                crawl,
                domain,
                os_name,
                success=success,
                error=error,
                rank=rank,
                category=category,
                skipped=skipped,
                attempts=attempts,
                detection=detection,
                events=events,
                webrtc_policy=webrtc_policy,
            )

    def _record_visit_locked(
        self,
        crawl: str,
        domain: str,
        os_name: str,
        *,
        success: bool,
        error: int = 0,
        rank: int | None = None,
        category: str | None = None,
        skipped: bool = False,
        attempts: int = 1,
        detection: DetectionResult | None = None,
        events: Iterable[NetLogEvent] | None = None,
        webrtc_policy: str | None = None,
    ) -> int:
        page_load_time = detection.page_load_time if detection is not None else None
        total_flows = detection.total_flows if detection is not None else None
        request_facts = (
            detection_request_facts(detection) if detection is not None else []
        )
        # Content digest computed at commit time; `repro fsck` recomputes
        # it from the stored rows to detect at-rest corruption.
        digest = visit_digest(
            crawl=crawl,
            domain=domain,
            os_name=os_name,
            success=success,
            error=error,
            rank=rank,
            category=category,
            skipped=skipped,
            page_load_time=page_load_time,
            total_flows=total_flows,
            requests=request_facts,
        )
        # The INSERT below is the statement that acquires the write lock,
        # so it is the one that can see cross-process contention; once it
        # succeeds the transaction holds the lock and the child-row
        # statements cannot be interleaved with another writer.
        cursor = self._execute(
            "INSERT OR REPLACE INTO visits "
            "(crawl, domain, os_name, success, error, rank, category, "
            " skipped, attempts, page_load_time, total_flows, "
            " digest, request_count, webrtc_policy) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                crawl,
                domain,
                os_name,
                int(success),
                error,
                rank,
                category,
                int(skipped),
                attempts,
                page_load_time,
                total_flows,
                digest,
                len(request_facts),
                webrtc_policy,
            ),
        )
        visit_id = int(cursor.lastrowid or 0)
        if events is not None:
            self._conn.executemany(
                "INSERT INTO events VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    (
                        visit_id,
                        event.time,
                        int(event.type),
                        event.source.id,
                        int(event.source.type),
                        int(event.phase),
                        json.dumps(event.params) if event.params else "{}",
                    )
                    for event in events
                ),
            )
        if detection is not None:
            self._conn.executemany(
                "INSERT INTO local_requests "
                "(visit_id, locality, scheme, host, port, path, time, "
                " via_redirect, source_id, method, initiator) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    (
                        visit_id,
                        request.locality.value,
                        request.scheme,
                        request.host,
                        request.port,
                        request.path,
                        request.time,
                        int(request.via_redirect),
                        request.source_id,
                        request.method,
                        request.initiator,
                    )
                    for request in detection.requests
                ),
            )
        self._wrote()
        return visit_id

    def delete_visit(self, crawl: str, domain: str, os_name: str) -> int:
        """Remove one visit and its child rows; returns rows removed.

        The fsck repair tiers use this before rewriting a damaged visit,
        so no stale ``local_requests``/``events`` children survive the
        replacement (plain ``INSERT OR REPLACE`` would orphan them).
        """
        with self._lock:
            ids = [
                row[0]
                for row in self._conn.execute(
                    "SELECT visit_id FROM visits "
                    "WHERE crawl = ? AND domain = ? AND os_name = ?",
                    (crawl, domain, os_name),
                )
            ]
            for visit_id in ids:
                self._conn.execute(
                    "DELETE FROM local_requests WHERE visit_id = ?", (visit_id,)
                )
                self._conn.execute(
                    "DELETE FROM events WHERE visit_id = ?", (visit_id,)
                )
            self._conn.execute(
                "DELETE FROM visits "
                "WHERE crawl = ? AND domain = ? AND os_name = ?",
                (crawl, domain, os_name),
            )
            return len(ids)

    # -- dead-letter queue -------------------------------------------------

    def record_dead_letter(
        self,
        crawl: str,
        domain: str,
        os_name: str,
        *,
        error: int,
        failures: int,
        reason: str = "",
    ) -> None:
        """Park one poison visit (idempotent per (crawl, domain, OS))."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO dead_letters (crawl, domain, os_name, error, "
                "failures, reason) VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (crawl, domain, os_name) DO UPDATE SET "
                "error = excluded.error, failures = excluded.failures, "
                "reason = excluded.reason",
                (crawl, domain, os_name, error, failures, reason),
            )
            self._wrote()

    def dead_letters(self, crawl: str | None = None) -> list[DeadLetterRow]:
        sql = (
            "SELECT crawl, domain, os_name, error, failures, reason "
            "FROM dead_letters"
        )
        args: list[object] = []
        if crawl is not None:
            sql += " WHERE crawl = ?"
            args.append(crawl)
        with self._lock:
            rows = self._execute(
                sql + " ORDER BY crawl, os_name, domain", args
            ).fetchall()
        return [
            DeadLetterRow(
                crawl=row[0], domain=row[1], os_name=row[2],
                error=row[3], failures=row[4], reason=row[5],
            )
            for row in rows
        ]

    def requeue_dead_letters(
        self, crawl: str | None = None, domain: str | None = None
    ) -> int:
        """Clear matching dead letters so a resumed run re-attempts them.

        Deletes the quarantine rows *and* their recorded visit outcomes
        (the failure rows that make resume skip them); returns how many
        visits were re-queued.
        """
        where, args = [], []
        if crawl is not None:
            where.append("crawl = ?")
            args.append(crawl)
        if domain is not None:
            where.append("domain = ?")
            args.append(domain)
        clause = (" WHERE " + " AND ".join(where)) if where else ""
        with self._lock:
            letters = self._conn.execute(
                f"SELECT crawl, domain, os_name FROM dead_letters{clause}", args
            ).fetchall()
            for letter_crawl, letter_domain, letter_os in letters:
                self._conn.execute(
                    "DELETE FROM local_requests WHERE visit_id IN "
                    "(SELECT visit_id FROM visits "
                    " WHERE crawl = ? AND domain = ? AND os_name = ?)",
                    (letter_crawl, letter_domain, letter_os),
                )
                self._conn.execute(
                    "DELETE FROM visits "
                    "WHERE crawl = ? AND domain = ? AND os_name = ?",
                    (letter_crawl, letter_domain, letter_os),
                )
            self._conn.execute(f"DELETE FROM dead_letters{clause}", args)
            self._conn.commit()
            self._pending_writes = 0
        return len(letters)

    # -- queries ----------------------------------------------------------

    def visit_count(self, crawl: str | None = None) -> int:
        if crawl is None:
            row = self._execute("SELECT COUNT(*) FROM visits").fetchone()
        else:
            row = self._execute(
                "SELECT COUNT(*) FROM visits WHERE crawl = ?", (crawl,)
            ).fetchone()
        return int(row[0])

    def success_counts(self, crawl: str) -> dict[str, tuple[int, int]]:
        """Per-OS (successes, failures) for one crawl.

        Connectivity-skipped rows are excluded on both sides — the paper
        never attributes a measurement-side outage to a website.
        """
        out: dict[str, tuple[int, int]] = {}
        for os_name, successes, failures in self._execute(
            "SELECT os_name, SUM(success), SUM(1 - success) "
            "FROM visits WHERE crawl = ? AND skipped = 0 GROUP BY os_name",
            (crawl,),
        ):
            out[os_name] = (int(successes or 0), int(failures or 0))
        return out

    def completed_domains(self, crawl: str, os_name: str) -> set[str]:
        """Domains with a recorded outcome for (crawl, OS) — the
        checkpoint a resumed campaign skips past.  Skipped rows count as
        completed: re-crawling them would let a resumed run diverge from
        the uninterrupted one it must reproduce."""
        return {
            row[0]
            for row in self._execute(
                "SELECT domain FROM visits WHERE crawl = ? AND os_name = ?",
                (crawl, os_name),
            )
        }

    def domains_with_local_activity(
        self, crawl: str, locality: str, os_name: str | None = None
    ) -> list[str]:
        """Distinct domains with stored local requests of a locality."""
        sql = (
            "SELECT DISTINCT v.domain FROM visits v "
            "JOIN local_requests r ON r.visit_id = v.visit_id "
            "WHERE v.crawl = ? AND r.locality = ?"
        )
        args: list[object] = [crawl, locality]
        if os_name is not None:
            sql += " AND v.os_name = ?"
            args.append(os_name)
        return [row[0] for row in self._conn.execute(sql + " ORDER BY v.domain", args)]

    def local_requests_for(
        self, crawl: str, domain: str
    ) -> list[LocalRequestRow]:
        rows = self._conn.execute(
            "SELECT r.visit_id, v.crawl, v.domain, v.os_name, r.locality, "
            "r.scheme, r.host, r.port, r.path, r.time, r.via_redirect "
            "FROM local_requests r JOIN visits v ON v.visit_id = r.visit_id "
            "WHERE v.crawl = ? AND v.domain = ? ORDER BY r.time",
            (crawl, domain),
        ).fetchall()
        return [
            LocalRequestRow(
                visit_id=row[0], crawl=row[1], domain=row[2], os_name=row[3],
                locality=row[4], scheme=row[5], host=row[6], port=row[7],
                path=row[8], time=row[9], via_redirect=bool(row[10]),
            )
            for row in rows
        ]

    def detections_for(self, crawl: str, os_name: str) -> dict[str, DetectionResult]:
        """Reconstruct per-domain detections for one (crawl, OS) pass.

        Rows come back in insertion order (rowid), which is the detector's
        (time, source_id) order — so the rebuilt
        :class:`~repro.core.detector.DetectionResult` compares equal to
        the one the original crawl produced.  Only domains with stored
        local requests appear (the campaign persists detections for
        exactly those).
        """
        visit_rows = self._execute(
            "SELECT visit_id, domain, page_load_time, total_flows "
            "FROM visits WHERE crawl = ? AND os_name = ?",
            (crawl, os_name),
        ).fetchall()
        meta = {row[0]: (row[1], row[2], row[3]) for row in visit_rows}
        if not meta:
            return {}
        out: dict[str, DetectionResult] = {}
        placeholders = ",".join("?" * len(meta))
        for row in self._execute(
            "SELECT visit_id, locality, scheme, host, port, path, time, "
            "via_redirect, source_id, method, initiator "
            f"FROM local_requests WHERE visit_id IN ({placeholders}) "
            "ORDER BY rowid",
            tuple(meta),
        ):
            domain, page_load_time, total_flows = meta[row[0]]
            detection = out.get(domain)
            if detection is None:
                detection = DetectionResult(
                    page_load_time=page_load_time,
                    total_flows=int(total_flows or 0),
                )
                out[domain] = detection
            detection.requests.append(
                LocalRequest(
                    target=RequestTarget(
                        scheme=row[2],
                        host=row[3],
                        port=row[4],
                        path=row[5],
                        locality=Locality(row[1]),
                    ),
                    time=row[6],
                    source_id=row[8],
                    method=row[9],
                    via_redirect=bool(row[7]),
                    initiator=row[10],
                )
            )
        return out

    def visits(self, crawl: str, *, os_name: str | None = None) -> list[VisitRow]:
        sql = (
            "SELECT visit_id, crawl, domain, os_name, success, error, rank, "
            "category, skipped, attempts FROM visits WHERE crawl = ?"
        )
        args: list[object] = [crawl]
        if os_name is not None:
            sql += " AND os_name = ?"
            args.append(os_name)
        return [
            VisitRow(
                visit_id=row[0], crawl=row[1], domain=row[2], os_name=row[3],
                success=bool(row[4]), error=row[5], rank=row[6], category=row[7],
                skipped=bool(row[8]), attempts=row[9],
            )
            for row in self._execute(sql + " ORDER BY visit_id", args)
        ]

    def event_count(self, visit_id: int | None = None) -> int:
        if visit_id is None:
            row = self._conn.execute("SELECT COUNT(*) FROM events").fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM events WHERE visit_id = ?", (visit_id,)
            ).fetchone()
        return int(row[0])
