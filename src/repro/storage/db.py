"""SQLite-backed telemetry store.

The paper parsed Chrome NetLogs and "stored the network events in a
database for efficient querying" (section 3.1; 11 TB across the study).
This store reproduces that logical design at laptop scale:

* ``visits`` — one row per (crawl, domain, OS) page load with its outcome;
* ``events`` — raw NetLog events (optional: bulky; stored on request);
* ``local_requests`` — denormalised detected local requests, the table
  every analysis query actually hits.

Use as a context manager; pass ``":memory:"`` for throwaway stores.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Iterable

from ..core.detector import DetectionResult
from ..netlog.events import NetLogEvent
from .records import LocalRequestRow, VisitRow

_SCHEMA = """
CREATE TABLE IF NOT EXISTS visits (
    visit_id INTEGER PRIMARY KEY AUTOINCREMENT,
    crawl TEXT NOT NULL,
    domain TEXT NOT NULL,
    os_name TEXT NOT NULL,
    success INTEGER NOT NULL,
    error INTEGER NOT NULL DEFAULT 0,
    rank INTEGER,
    category TEXT,
    UNIQUE (crawl, domain, os_name)
);
CREATE TABLE IF NOT EXISTS events (
    visit_id INTEGER NOT NULL REFERENCES visits(visit_id),
    time REAL NOT NULL,
    type INTEGER NOT NULL,
    source_id INTEGER NOT NULL,
    source_type INTEGER NOT NULL,
    phase INTEGER NOT NULL,
    params_json TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS local_requests (
    visit_id INTEGER NOT NULL REFERENCES visits(visit_id),
    locality TEXT NOT NULL,
    scheme TEXT NOT NULL,
    host TEXT NOT NULL,
    port INTEGER NOT NULL,
    path TEXT NOT NULL,
    time REAL,
    via_redirect INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_visits_crawl ON visits(crawl, os_name);
CREATE INDEX IF NOT EXISTS idx_local_visit ON local_requests(visit_id);
CREATE INDEX IF NOT EXISTS idx_local_locality ON local_requests(locality);
"""


class TelemetryStore:
    """SQLite store for crawl telemetry."""

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA journal_mode=MEMORY")
        self._conn.executescript(_SCHEMA)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "TelemetryStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def commit(self) -> None:
        self._conn.commit()

    # -- writes --------------------------------------------------------------

    def record_visit(
        self,
        crawl: str,
        domain: str,
        os_name: str,
        *,
        success: bool,
        error: int = 0,
        rank: int | None = None,
        category: str | None = None,
        detection: DetectionResult | None = None,
        events: Iterable[NetLogEvent] | None = None,
    ) -> int:
        """Store one visit; returns its visit id."""
        cursor = self._conn.execute(
            "INSERT OR REPLACE INTO visits "
            "(crawl, domain, os_name, success, error, rank, category) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (crawl, domain, os_name, int(success), error, rank, category),
        )
        visit_id = int(cursor.lastrowid or 0)
        if events is not None:
            self._conn.executemany(
                "INSERT INTO events VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    (
                        visit_id,
                        event.time,
                        int(event.type),
                        event.source.id,
                        int(event.source.type),
                        int(event.phase),
                        json.dumps(event.params) if event.params else "{}",
                    )
                    for event in events
                ),
            )
        if detection is not None:
            self._conn.executemany(
                "INSERT INTO local_requests VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    (
                        visit_id,
                        request.locality.value,
                        request.scheme,
                        request.host,
                        request.port,
                        request.path,
                        request.time,
                        int(request.via_redirect),
                    )
                    for request in detection.requests
                ),
            )
        return visit_id

    # -- queries ----------------------------------------------------------

    def visit_count(self, crawl: str | None = None) -> int:
        if crawl is None:
            row = self._conn.execute("SELECT COUNT(*) FROM visits").fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM visits WHERE crawl = ?", (crawl,)
            ).fetchone()
        return int(row[0])

    def success_counts(self, crawl: str) -> dict[str, tuple[int, int]]:
        """Per-OS (successes, failures) for one crawl."""
        out: dict[str, tuple[int, int]] = {}
        for os_name, successes, failures in self._conn.execute(
            "SELECT os_name, SUM(success), SUM(1 - success) "
            "FROM visits WHERE crawl = ? GROUP BY os_name",
            (crawl,),
        ):
            out[os_name] = (int(successes or 0), int(failures or 0))
        return out

    def domains_with_local_activity(
        self, crawl: str, locality: str, os_name: str | None = None
    ) -> list[str]:
        """Distinct domains with stored local requests of a locality."""
        sql = (
            "SELECT DISTINCT v.domain FROM visits v "
            "JOIN local_requests r ON r.visit_id = v.visit_id "
            "WHERE v.crawl = ? AND r.locality = ?"
        )
        args: list[object] = [crawl, locality]
        if os_name is not None:
            sql += " AND v.os_name = ?"
            args.append(os_name)
        return [row[0] for row in self._conn.execute(sql + " ORDER BY v.domain", args)]

    def local_requests_for(
        self, crawl: str, domain: str
    ) -> list[LocalRequestRow]:
        rows = self._conn.execute(
            "SELECT r.visit_id, v.crawl, v.domain, v.os_name, r.locality, "
            "r.scheme, r.host, r.port, r.path, r.time, r.via_redirect "
            "FROM local_requests r JOIN visits v ON v.visit_id = r.visit_id "
            "WHERE v.crawl = ? AND v.domain = ? ORDER BY r.time",
            (crawl, domain),
        ).fetchall()
        return [
            LocalRequestRow(
                visit_id=row[0], crawl=row[1], domain=row[2], os_name=row[3],
                locality=row[4], scheme=row[5], host=row[6], port=row[7],
                path=row[8], time=row[9], via_redirect=bool(row[10]),
            )
            for row in rows
        ]

    def visits(self, crawl: str, *, os_name: str | None = None) -> list[VisitRow]:
        sql = (
            "SELECT visit_id, crawl, domain, os_name, success, error, rank, "
            "category FROM visits WHERE crawl = ?"
        )
        args: list[object] = [crawl]
        if os_name is not None:
            sql += " AND os_name = ?"
            args.append(os_name)
        return [
            VisitRow(
                visit_id=row[0], crawl=row[1], domain=row[2], os_name=row[3],
                success=bool(row[4]), error=row[5], rank=row[6], category=row[7],
            )
            for row in self._conn.execute(sql + " ORDER BY visit_id", args)
        ]

    def event_count(self, visit_id: int | None = None) -> int:
        if visit_id is None:
            row = self._conn.execute("SELECT COUNT(*) FROM events").fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM events WHERE visit_id = ?", (visit_id,)
            ).fetchone()
        return int(row[0])
