"""Telemetry persistence (SQLite), mirroring the paper's parsed-log DB."""

from .db import TelemetryStore
from .integrity import (
    FsckFinding,
    FsckKind,
    FsckReport,
    campaign_digest,
    fsck,
    population_revisiter,
    visit_digest,
)
from .migrations import SCHEMA_VERSION, MigrationReport, migrate, schema_version
from .records import EventRow, LocalRequestRow, VisitRow

__all__ = [
    "SCHEMA_VERSION",
    "EventRow",
    "FsckFinding",
    "FsckKind",
    "FsckReport",
    "LocalRequestRow",
    "MigrationReport",
    "TelemetryStore",
    "VisitRow",
    "campaign_digest",
    "fsck",
    "migrate",
    "population_revisiter",
    "schema_version",
    "visit_digest",
]
