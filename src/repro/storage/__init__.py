"""Telemetry persistence (SQLite), mirroring the paper's parsed-log DB."""

from .db import TelemetryStore
from .records import EventRow, LocalRequestRow, VisitRow

__all__ = ["TelemetryStore", "EventRow", "LocalRequestRow", "VisitRow"]
