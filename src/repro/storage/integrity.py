"""End-to-end data integrity: content digests, ``fsck``, tiered repair.

The paper's tables are only as trustworthy as the data at rest they are
reduced from.  This module closes the loop the fault-tolerant *pipeline*
(PR 1/2) left open: verifying the telemetry *after* it has been written,
and repairing what a crash, torn write, or bit flip damaged.

Three pieces:

* :func:`visit_digest` — a SHA-256 content digest over everything a
  stored visit row *means* (outcome, Table 1 fields, every detected
  local request).  Computed at commit time by the store, recomputed by
  ``fsck``; browser-process artifacts (NetLog source ids, retry
  attempts) are excluded, so a deterministic re-visit reproduces the
  digest of the original fault-free visit.
* :func:`fsck` — scans a campaign database (and optionally its NetLog
  archive) for orphaned child rows, digest mismatches, half-committed
  batches, damaged or missing archive documents; with ``repair=True``
  it applies tiered repair: re-parse the archived NetLog via salvage →
  deterministically re-visit the domain → quarantine into the
  dead-letter queue.
* :func:`campaign_digest` — a rollup digest over all visit digests of a
  crawl, the machine-checkable fingerprint-equivalence proof the chaos
  bench compares between repaired and fault-free runs.
"""

from __future__ import annotations

import enum
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from .. import obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (db -> migrations -> here)
    from ..netlog.archive import NetLogArchive
    from .db import TelemetryStore

_FSCK_FINDINGS = obs.counter(
    "repro_fsck_findings_total",
    "fsck findings by corruption kind",
    ("kind",),
)
_FSCK_REPAIRS = obs.counter(
    "repro_fsck_repairs_total",
    "fsck repairs by tier (cleanup, reparse, revisit, quarantine)",
    ("tier",),
)
_FSCK_SECONDS = obs.histogram(
    "repro_fsck_scan_seconds",
    "wall time of one full fsck scan (including any repairs)",
    buckets=(0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0),
)

#: Identifier of the digest scheme, recorded in fsck reports.
DIGEST_ALGORITHM = "sha256-visit-v1"

#: A repair callable: ``revisit(crawl, os_name, domain) -> bool`` that
#: re-crawls one domain and rewrites its store row (and archive document,
#: when one is kept).  See :func:`population_revisiter`.
Revisiter = Callable[[str, str, str], bool]

#: Canonical per-request fact tuple (source ids excluded — they shift
#: across browser instances; see ``finding_fingerprint``).
RequestFacts = Sequence[object]


def visit_digest(
    *,
    crawl: str,
    domain: str,
    os_name: str,
    success: int | bool,
    error: int,
    rank: int | None,
    category: str | None,
    skipped: int | bool,
    page_load_time: float | None,
    total_flows: int | None,
    requests: Iterable[RequestFacts],
) -> str:
    """SHA-256 digest of one visit row plus its local-request rows.

    ``requests`` holds ``(locality, scheme, host, port, path, time,
    via_redirect, method, initiator)`` tuples.  They are sorted by their
    canonical serialisation, so the digest is insensitive to row order —
    a re-parse or re-visit that stores the same facts in a different
    order still matches.
    """
    request_docs = sorted(
        json.dumps(
            [
                locality,
                scheme,
                host,
                port,
                path,
                time,
                int(bool(via_redirect)),
                method,
                initiator,
            ],
            separators=(",", ":"),
        )
        for (
            locality,
            scheme,
            host,
            port,
            path,
            time,
            via_redirect,
            method,
            initiator,
        ) in requests
    )
    payload = json.dumps(
        {
            "algorithm": DIGEST_ALGORITHM,
            "crawl": crawl,
            "domain": domain,
            "os": os_name,
            "success": int(bool(success)),
            "error": int(error),
            "rank": rank,
            "category": category,
            "skipped": int(bool(skipped)),
            "page_load_time": page_load_time,
            "total_flows": total_flows,
            "requests": request_docs,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def detection_request_facts(detection) -> list[tuple]:
    """The digest fact tuples for a live ``DetectionResult``."""
    return [
        (
            request.locality.value,
            request.scheme,
            request.host,
            request.port,
            request.path,
            request.time,
            int(request.via_redirect),
            request.method,
            request.initiator,
        )
        for request in detection.requests
    ]


def campaign_digest(store: "TelemetryStore", crawl: str) -> str:
    """Rollup digest over every visit digest of one crawl.

    Two stores agree on this value iff they agree on every visit's
    content — the fingerprint-equivalence proof emitted by fsck reports
    and asserted by the chaos bench.
    """
    rows = store.connection.execute(
        "SELECT domain, os_name, COALESCE(digest, '') FROM visits "
        "WHERE crawl = ? ORDER BY os_name, domain",
        (crawl,),
    ).fetchall()
    payload = json.dumps([list(row) for row in rows], separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- findings ----------------------------------------------------------------


class FsckKind(str, enum.Enum):
    """What kind of corruption a finding describes."""

    #: ``local_requests`` / ``events`` rows whose parent visit is gone
    #: (e.g. superseded by an ``INSERT OR REPLACE`` re-record).
    ORPHANED_ROWS = "orphaned-rows"
    #: A visit row whose recomputed digest differs from the stored one.
    DIGEST_MISMATCH = "digest-mismatch"
    #: A visit row with no stored digest (pre-migration or torn write).
    MISSING_DIGEST = "missing-digest"
    #: A visit whose stored ``request_count`` disagrees with its actual
    #: child rows — the signature of a half-committed batch.
    HALF_COMMITTED = "half-committed"
    #: An archived NetLog document with checksum/chain/truncation damage.
    ARCHIVE_DAMAGE = "archive-damage"
    #: A successful visit whose expected archive document is absent
    #: (e.g. the write was lost to a disk-full fault).
    MISSING_ARCHIVE = "missing-archive"
    #: An archive document with no corresponding visit row.
    ORPHANED_ARCHIVE = "orphaned-archive"


#: Findings repaired by rewriting the database row (tiers 1-3); archive
#: damage instead needs the document rewritten (tier 2 only).
_ROW_DAMAGE = (
    FsckKind.DIGEST_MISMATCH,
    FsckKind.MISSING_DIGEST,
    FsckKind.HALF_COMMITTED,
    FsckKind.ORPHANED_ARCHIVE,
)


@dataclass(slots=True)
class FsckFinding:
    """One detected integrity violation and what was done about it."""

    kind: FsckKind
    crawl: str
    detail: str
    os_name: str | None = None
    domain: str | None = None
    repaired: bool = False
    #: Which repair tier resolved it: ``cleanup`` (orphan deletion),
    #: ``reparse`` (rebuilt from the archived NetLog), ``revisit``
    #: (deterministic re-crawl), or ``quarantine`` (dead-lettered).
    repair_tier: str | None = None

    def to_json(self) -> dict:
        return {
            "kind": self.kind.value,
            "crawl": self.crawl,
            "os": self.os_name,
            "domain": self.domain,
            "detail": self.detail,
            "repaired": self.repaired,
            "repair_tier": self.repair_tier,
        }


@dataclass(slots=True)
class FsckReport:
    """Machine-readable result of one fsck scan."""

    findings: list[FsckFinding] = field(default_factory=list)
    scanned_visits: int = 0
    scanned_archives: int = 0
    #: Post-scan (post-repair, when repairing) rollup digest per crawl —
    #: the fingerprint-equivalence proof.
    campaign_digests: dict[str, str] = field(default_factory=dict)

    @property
    def repaired(self) -> int:
        return sum(1 for finding in self.findings if finding.repaired)

    @property
    def unrepaired(self) -> int:
        return sum(1 for finding in self.findings if not finding.repaired)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def ok(self) -> bool:
        """True when nothing is left in a damaged state."""
        return self.unrepaired == 0

    def findings_of(self, kind: FsckKind) -> list[FsckFinding]:
        return [finding for finding in self.findings if finding.kind is kind]

    def to_json(self) -> dict:
        return {
            "version": 1,
            "digest_algorithm": DIGEST_ALGORITHM,
            "scanned": {
                "visits": self.scanned_visits,
                "archives": self.scanned_archives,
            },
            "findings": [finding.to_json() for finding in self.findings],
            "repaired": self.repaired,
            "unrepaired": self.unrepaired,
            "campaign_digests": dict(sorted(self.campaign_digests.items())),
            "clean": self.clean,
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [
            f"fsck: scanned {self.scanned_visits} visit(s), "
            f"{self.scanned_archives} archive document(s)"
        ]
        for finding in self.findings:
            where = finding.crawl
            if finding.os_name:
                where += f"/{finding.os_name}"
            if finding.domain:
                where += f"/{finding.domain}"
            status = (
                f"repaired ({finding.repair_tier})"
                if finding.repaired
                else "UNREPAIRED"
            )
            lines.append(
                f"  [{finding.kind.value}] {where}: {finding.detail} — {status}"
            )
        if self.clean:
            lines.append("  no integrity violations found")
        else:
            lines.append(
                f"  {len(self.findings)} finding(s): "
                f"{self.repaired} repaired, {self.unrepaired} unrepaired"
            )
        for crawl, digest in sorted(self.campaign_digests.items()):
            lines.append(f"  campaign digest {crawl}: {digest}")
        return "\n".join(lines)


# -- the scanner -------------------------------------------------------------


def _archive_clean(stats) -> bool:
    """Whether a salvage parse came back undamaged end to end."""
    return (
        not stats.truncated
        and stats.checksum_failures == 0
        and stats.chain_breaks == 0
        and stats.dropped_malformed == 0
        and stats.first_divergence is None
    )


def fsck(
    store: "TelemetryStore",
    archive: "NetLogArchive | None" = None,
    *,
    crawl: str | None = None,
    repair: bool = False,
    revisit: Revisiter | None = None,
    jobs: int | None = None,
) -> FsckReport:
    """Audit (and optionally repair) a campaign database + NetLog archive.

    Scans for every corruption class the threat model names: orphaned
    child rows, digest mismatches, missing digests, half-committed
    batches, damaged/missing/orphaned archive documents.  With
    ``repair=True`` each finding goes through the repair ladder:

    1. **re-parse** — if the visit's archived NetLog verifies clean, the
       row is rebuilt from it via salvage parse + detector;
    2. **re-visit** — else, if a ``revisit`` callable is given, the
       domain is deterministically re-crawled;
    3. **quarantine** — else the damaged row is deleted and the visit is
       parked in the dead-letter queue for a later ``deadletter retry``.

    Orphaned child rows are simply deleted (``cleanup`` tier).  The
    report's per-crawl :func:`campaign_digest` rollups are computed after
    any repairs, so equality with a fault-free run's rollup proves the
    repair restored content, not just consistency.
    """
    scan_start = time.perf_counter() if _FSCK_SECONDS.enabled else 0.0
    report = FsckReport()
    conn = store.connection
    crawls = (
        [crawl]
        if crawl is not None
        else [row[0] for row in conn.execute("SELECT DISTINCT crawl FROM visits")]
    )

    _scan_orphans(store, report, repair)
    for crawl_name in crawls:
        _scan_visits(store, archive, crawl_name, report, repair, revisit)
        if archive is not None:
            _scan_archive(
                store, archive, crawl_name, report, repair, revisit, jobs
            )
        report.campaign_digests[crawl_name] = campaign_digest(store, crawl_name)
    if repair:
        store.commit()
    for finding in report.findings:
        _FSCK_FINDINGS.inc(labels=(finding.kind.value,))
        if finding.repaired:
            _FSCK_REPAIRS.inc(labels=(finding.repair_tier or "unknown",))
    if _FSCK_SECONDS.enabled:
        _FSCK_SECONDS.observe(time.perf_counter() - scan_start)
    return report


def _scan_orphans(
    store: "TelemetryStore", report: FsckReport, repair: bool
) -> None:
    conn = store.connection
    for table in ("local_requests", "events"):
        (count,) = conn.execute(
            f"SELECT COUNT(*) FROM {table} WHERE visit_id NOT IN "
            "(SELECT visit_id FROM visits)"
        ).fetchone()
        if not count:
            continue
        finding = FsckFinding(
            kind=FsckKind.ORPHANED_ROWS,
            crawl="*",
            detail=f"{count} {table} row(s) reference no surviving visit",
        )
        if repair:
            conn.execute(
                f"DELETE FROM {table} WHERE visit_id NOT IN "
                "(SELECT visit_id FROM visits)"
            )
            finding.repaired = True
            finding.repair_tier = "cleanup"
        report.findings.append(finding)


def _scan_visits(
    store: "TelemetryStore",
    archive: "NetLogArchive | None",
    crawl: str,
    report: FsckReport,
    repair: bool,
    revisit: Revisiter | None,
) -> None:
    conn = store.connection
    rows = conn.execute(
        "SELECT visit_id, domain, os_name, success, error, rank, category, "
        "skipped, page_load_time, total_flows, digest, request_count "
        "FROM visits WHERE crawl = ? ORDER BY os_name, domain",
        (crawl,),
    ).fetchall()
    # Does this crawl keep an archive at all?  Only then is a missing
    # document a finding (campaigns may legitimately run archive-less).
    archived_crawl = archive is not None and any(True for _ in archive.entries(crawl))
    for (
        visit_id,
        domain,
        os_name,
        success,
        error,
        rank,
        category,
        skipped,
        page_load_time,
        total_flows,
        digest,
        request_count,
    ) in rows:
        report.scanned_visits += 1
        requests = conn.execute(
            "SELECT locality, scheme, host, port, path, time, via_redirect, "
            "method, initiator FROM local_requests WHERE visit_id = ? "
            "ORDER BY rowid",
            (visit_id,),
        ).fetchall()
        finding: FsckFinding | None = None
        if len(requests) != int(request_count or 0):
            finding = FsckFinding(
                kind=FsckKind.HALF_COMMITTED,
                crawl=crawl,
                os_name=os_name,
                domain=domain,
                detail=(
                    f"visit recorded {request_count} local request(s) but "
                    f"{len(requests)} row(s) are present"
                ),
            )
        elif digest is None:
            finding = FsckFinding(
                kind=FsckKind.MISSING_DIGEST,
                crawl=crawl,
                os_name=os_name,
                domain=domain,
                detail="visit row has no content digest",
            )
        else:
            expected = visit_digest(
                crawl=crawl,
                domain=domain,
                os_name=os_name,
                success=success,
                error=error,
                rank=rank,
                category=category,
                skipped=skipped,
                page_load_time=page_load_time,
                total_flows=total_flows,
                requests=requests,
            )
            if expected != digest:
                finding = FsckFinding(
                    kind=FsckKind.DIGEST_MISMATCH,
                    crawl=crawl,
                    os_name=os_name,
                    domain=domain,
                    detail=(
                        f"stored digest {digest[:12]}… != recomputed "
                        f"{expected[:12]}…"
                    ),
                )
        if (
            finding is None
            and archived_crawl
            and success
            and not skipped
            and not archive.exists(crawl, os_name, domain)
        ):
            finding = FsckFinding(
                kind=FsckKind.MISSING_ARCHIVE,
                crawl=crawl,
                os_name=os_name,
                domain=domain,
                detail="successful visit has no archived NetLog document",
            )
        if finding is None:
            continue
        if repair:
            _repair_finding(store, archive, finding, revisit)
        report.findings.append(finding)


def _scan_archive(
    store: "TelemetryStore",
    archive: "NetLogArchive",
    crawl: str,
    report: FsckReport,
    repair: bool,
    revisit: Revisiter | None,
    jobs: int | None = None,
) -> None:
    conn = store.connection
    recorded = {
        (row[0], row[1])
        for row in conn.execute(
            "SELECT os_name, domain FROM visits WHERE crawl = ?", (crawl,)
        )
    }
    # Verification (the CPU-bound part: a full canonical re-parse of
    # every document) fans out across a process pool under ``jobs``;
    # findings and repairs stay sequential, so reports are byte-stable
    # at any worker count.
    from ..netlog.parallel import verify_paths

    for path, stats in verify_paths(list(archive.entries(crawl)), jobs=jobs):
        report.scanned_archives += 1
        os_name, domain = path.parent.name, path.stem
        if not _archive_clean(stats):
            finding = FsckFinding(
                kind=FsckKind.ARCHIVE_DAMAGE,
                crawl=crawl,
                os_name=os_name,
                domain=domain,
                detail=stats.describe() or "archive document is damaged",
            )
            if repair:
                _repair_finding(store, archive, finding, revisit)
            report.findings.append(finding)
        elif (os_name, domain) not in recorded:
            finding = FsckFinding(
                kind=FsckKind.ORPHANED_ARCHIVE,
                crawl=crawl,
                os_name=os_name,
                domain=domain,
                detail="archive document has no visit row",
            )
            if repair:
                _repair_finding(store, archive, finding, revisit)
            report.findings.append(finding)


# -- tiered repair -----------------------------------------------------------


def _repair_finding(
    store: "TelemetryStore",
    archive: "NetLogArchive | None",
    finding: FsckFinding,
    revisit: Revisiter | None,
) -> None:
    crawl, os_name, domain = finding.crawl, finding.os_name, finding.domain
    assert os_name is not None and domain is not None

    # Tier 1: rebuild the row from the archived NetLog, if it verifies
    # clean end to end.  (An archive-damage finding by definition cannot
    # take this tier — its source of truth is the damaged artifact.)
    if finding.kind in _ROW_DAMAGE and archive is not None:
        if _reparse_row(store, archive, crawl, os_name, domain):
            finding.repaired = True
            finding.repair_tier = "reparse"
            return

    # Tier 2: deterministic re-visit (rewrites row and archive document).
    if revisit is not None:
        store.delete_visit(crawl, domain, os_name)
        if revisit(crawl, os_name, domain):
            finding.repaired = True
            finding.repair_tier = "revisit"
            return

    # Tier 3: quarantine — remove the damaged row (and document) and
    # park the visit in the dead-letter queue for a later retry.
    store.delete_visit(crawl, domain, os_name)
    if archive is not None and finding.kind is FsckKind.ARCHIVE_DAMAGE:
        archive.path_for(crawl, os_name, domain).unlink(missing_ok=True)
    store.record_dead_letter(
        crawl,
        domain,
        os_name,
        error=0,
        failures=1,
        reason=f"fsck: unrecoverable corruption ({finding.kind.value})",
    )
    finding.repaired = True
    finding.repair_tier = "quarantine"


def _reparse_row(
    store: "TelemetryStore",
    archive: "NetLogArchive",
    crawl: str,
    os_name: str,
    domain: str,
) -> bool:
    """Tier-1 repair: rebuild one visit row from its archived NetLog."""
    from ..core.detector import LocalTrafficDetector
    from ..netlog.parser import ParseStats

    path = archive.path_for(crawl, os_name, domain)
    if not path.exists():
        return False
    meta = archive.read_meta(path)
    if meta is None:
        return False
    stats = ParseStats()
    # Stream the archived document straight into a detection sink: flow
    # assembly runs as events parse, without materialising the event list.
    sink = LocalTrafficDetector().sink()
    result = archive.stream_into(crawl, os_name, domain, sink, stats=stats)
    if result is None or not _archive_clean(stats):
        return False
    detection = result
    store.delete_visit(crawl, domain, os_name)
    store.record_visit(
        crawl,
        domain,
        os_name,
        success=bool(meta.get("success", True)),
        error=int(meta.get("error", 0)),
        rank=meta.get("rank"),
        category=meta.get("category"),
        skipped=bool(meta.get("skipped", False)),
        attempts=int(meta.get("attempts", 1)),
        detection=detection if detection.has_local_activity else None,
        webrtc_policy=meta.get("webrtc_policy"),
    )
    return True


# -- the re-visit tier -------------------------------------------------------


def population_revisiter(
    population,
    store: "TelemetryStore",
    archive: "NetLogArchive | None" = None,
    *,
    monitor_window_ms: float | None = None,
    detector=None,
    include_internal: bool = False,
) -> Revisiter:
    """Build a tier-2 repair callable that re-crawls damaged domains.

    The returned callable mirrors the campaign's persistence semantics
    exactly (detections stored only for sites with local activity, the
    same archive metadata), so a repaired row is byte-equivalent in
    digest terms to the row a fault-free campaign would have written.
    """
    from ..crawler.crawl import Crawler
    from ..crawler.vm import OSEnvironment

    def revisit(crawl: str, os_name: str, domain: str) -> bool:
        website = population.by_domain.get(domain)
        if website is None or crawl != population.name:
            return False
        webrtc_policy = getattr(population, "webrtc_policy", None)
        environment = (
            OSEnvironment.for_os(os_name, monitor_window_ms=monitor_window_ms)
            if monitor_window_ms is not None
            else OSEnvironment.for_os(os_name)
        )
        crawler = Crawler(
            environment,
            detector=detector,
            check_connectivity=False,
            include_internal=include_internal,
            capture_netlog=archive is not None,
        )
        record = crawler.crawl_site(website)
        store.record_visit(
            crawl,
            domain,
            os_name,
            success=record.success,
            error=int(record.error),
            rank=record.rank,
            category=record.category,
            skipped=record.connectivity_skipped,
            attempts=record.attempts,
            detection=record.detection if record.has_local_activity else None,
            webrtc_policy=webrtc_policy,
        )
        if archive is not None and record.netlog is not None:
            meta = {
                "crawl": crawl,
                "domain": domain,
                "os": os_name,
                "success": record.success,
                "error": int(record.error),
                "rank": record.rank,
                "category": record.category,
                "skipped": record.connectivity_skipped,
                "attempts": record.attempts,
            }
            if webrtc_policy is not None:
                meta["webrtc_policy"] = webrtc_policy
            archive.write_buffered(crawl, os_name, domain, record.netlog, meta=meta)
        return True

    return revisit
