"""Numbered, crash-safe schema migrations for the telemetry store.

The seed grew its schema by ad-hoc ``ALTER TABLE`` patching on open,
which has no versioning, no atomicity story, and no way to run data
backfills.  This module replaces it with the standard production shape:

* the schema version lives in ``PRAGMA user_version`` (0 = never
  migrated, i.e. a fresh file or a PR-2-era database);
* migrations are numbered steps applied in order, each inside its own
  ``BEGIN IMMEDIATE`` transaction together with the version bump — a
  crash at any point rolls the step back whole, and rerunning
  :func:`migrate` resumes from the last completed step;
* steps are written idempotently (``IF NOT EXISTS`` tables, guarded
  ``ALTER TABLE``) so version-0 databases of any vintage converge on the
  same schema.

The optional ``fault_hook`` is the crash-point seam: it is called with
``migration:v<N>:begin`` / ``migration:v<N>:commit`` around each step and
may raise to simulate dying mid-migration — the coverage the acceptance
criteria demand.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import Callable

from .integrity import visit_digest

#: The schema version this build writes and expects.
SCHEMA_VERSION = 4

#: Crash-point seam: called with a step key; may raise to simulate a crash.
MigrationFaultHook = Callable[[str], None]


def _table_columns(conn: sqlite3.Connection, table: str) -> set[str]:
    return {row[1] for row in conn.execute(f"PRAGMA table_info({table})")}


def _add_column(
    conn: sqlite3.Connection, table: str, column: str, decl: str
) -> None:
    """``ALTER TABLE ADD COLUMN`` guarded for idempotence (SQLite has no
    ``ADD COLUMN IF NOT EXISTS``)."""
    if column not in _table_columns(conn, table):
        conn.execute(f"ALTER TABLE {table} ADD COLUMN {column} {decl}")


# -- step 1: baseline schema (seed layout + PR-2 columns) -------------------

_V1_TABLES = (
    """CREATE TABLE IF NOT EXISTS visits (
        visit_id INTEGER PRIMARY KEY AUTOINCREMENT,
        crawl TEXT NOT NULL,
        domain TEXT NOT NULL,
        os_name TEXT NOT NULL,
        success INTEGER NOT NULL,
        error INTEGER NOT NULL DEFAULT 0,
        rank INTEGER,
        category TEXT,
        skipped INTEGER NOT NULL DEFAULT 0,
        attempts INTEGER NOT NULL DEFAULT 1,
        page_load_time REAL,
        total_flows INTEGER,
        UNIQUE (crawl, domain, os_name)
    )""",
    """CREATE TABLE IF NOT EXISTS events (
        visit_id INTEGER NOT NULL REFERENCES visits(visit_id),
        time REAL NOT NULL,
        type INTEGER NOT NULL,
        source_id INTEGER NOT NULL,
        source_type INTEGER NOT NULL,
        phase INTEGER NOT NULL,
        params_json TEXT NOT NULL DEFAULT '{}'
    )""",
    """CREATE TABLE IF NOT EXISTS local_requests (
        visit_id INTEGER NOT NULL REFERENCES visits(visit_id),
        locality TEXT NOT NULL,
        scheme TEXT NOT NULL,
        host TEXT NOT NULL,
        port INTEGER NOT NULL,
        path TEXT NOT NULL,
        time REAL,
        via_redirect INTEGER NOT NULL DEFAULT 0,
        source_id INTEGER NOT NULL DEFAULT 0,
        method TEXT NOT NULL DEFAULT 'GET',
        initiator TEXT
    )""",
    """CREATE TABLE IF NOT EXISTS dead_letters (
        crawl TEXT NOT NULL,
        domain TEXT NOT NULL,
        os_name TEXT NOT NULL,
        error INTEGER NOT NULL DEFAULT 0,
        failures INTEGER NOT NULL DEFAULT 0,
        reason TEXT NOT NULL DEFAULT '',
        UNIQUE (crawl, domain, os_name)
    )""",
    "CREATE INDEX IF NOT EXISTS idx_visits_crawl ON visits(crawl, os_name)",
    "CREATE INDEX IF NOT EXISTS idx_local_visit ON local_requests(visit_id)",
    "CREATE INDEX IF NOT EXISTS idx_local_locality ON local_requests(locality)",
)

#: Columns added between the seed and PR 2; version-0 databases may
#: predate any of them, so v1 patches whichever are missing.
_V1_COLUMNS = (
    ("visits", "skipped", "INTEGER NOT NULL DEFAULT 0"),
    ("visits", "attempts", "INTEGER NOT NULL DEFAULT 1"),
    ("visits", "page_load_time", "REAL"),
    ("visits", "total_flows", "INTEGER"),
    ("local_requests", "source_id", "INTEGER NOT NULL DEFAULT 0"),
    ("local_requests", "method", "TEXT NOT NULL DEFAULT 'GET'"),
    ("local_requests", "initiator", "TEXT"),
)


def _v1_baseline(conn: sqlite3.Connection) -> None:
    """Converge any version-0 database (fresh, seed-era, or PR-2-era)
    onto the PR-2 schema."""
    for statement in _V1_TABLES:
        conn.execute(statement)
    for table, column, decl in _V1_COLUMNS:
        _add_column(conn, table, column, decl)


# -- step 2: integrity columns + backfill -----------------------------------


def _v2_integrity(conn: sqlite3.Connection) -> None:
    """Add the content-digest and batch-accounting columns and backfill
    them for every existing visit row."""
    _add_column(conn, "visits", "digest", "TEXT")
    _add_column(conn, "visits", "request_count", "INTEGER NOT NULL DEFAULT 0")
    rows = conn.execute(
        "SELECT visit_id, crawl, domain, os_name, success, error, rank, "
        "category, skipped, page_load_time, total_flows "
        "FROM visits WHERE digest IS NULL"
    ).fetchall()
    for (
        visit_id,
        crawl,
        domain,
        os_name,
        success,
        error,
        rank,
        category,
        skipped,
        page_load_time,
        total_flows,
    ) in rows:
        requests = conn.execute(
            "SELECT locality, scheme, host, port, path, time, via_redirect, "
            "method, initiator FROM local_requests WHERE visit_id = ? "
            "ORDER BY rowid",
            (visit_id,),
        ).fetchall()
        digest = visit_digest(
            crawl=crawl,
            domain=domain,
            os_name=os_name,
            success=success,
            error=error,
            rank=rank,
            category=category,
            skipped=skipped,
            page_load_time=page_load_time,
            total_flows=total_flows,
            requests=requests,
        )
        conn.execute(
            "UPDATE visits SET digest = ?, request_count = ? "
            "WHERE visit_id = ?",
            (digest, len(requests), visit_id),
        )


# -- step 3: serve job journal ----------------------------------------------

_V3_TABLES = (
    # The `repro serve` crash-safe job journal: one row per submitted
    # upload, keyed by a digest-derived job id.  State machine:
    # queued -> running -> done/failed/quarantined; `queued`/`running`
    # rows found at startup are the jobs a killed server owes its
    # clients — `--resume` re-runs them exactly once from the spool.
    """CREATE TABLE IF NOT EXISTS jobs (
        job_id TEXT PRIMARY KEY,
        digest TEXT NOT NULL,
        state TEXT NOT NULL DEFAULT 'queued',
        size_bytes INTEGER NOT NULL DEFAULT 0,
        attempts INTEGER NOT NULL DEFAULT 0,
        submitted_at REAL NOT NULL DEFAULT 0,
        started_at REAL,
        finished_at REAL,
        error TEXT,
        report TEXT
    )""",
    "CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs(state)",
    "CREATE INDEX IF NOT EXISTS idx_jobs_digest ON jobs(digest)",
)


def _v3_jobs(conn: sqlite3.Connection) -> None:
    """Add the serve daemon's job journal."""
    for statement in _V3_TABLES:
        conn.execute(statement)


# -- step 4: WebRTC leak channel --------------------------------------------


def _v4_webrtc(conn: sqlite3.Connection) -> None:
    """Record which WebRTC policy era a visit ran under (NULL = the
    channel was off), and index local requests by scheme — the era
    tables (5W/6W) filter on ``scheme = 'webrtc'``.

    Existing rows keep a NULL policy: every pre-v4 campaign ran without
    the WebRTC channel, so NULL is not just the safe default, it is the
    historically correct value — no backfill needed.
    """
    _add_column(conn, "visits", "webrtc_policy", "TEXT")
    conn.execute(
        "CREATE INDEX IF NOT EXISTS idx_local_scheme ON local_requests(scheme)"
    )


@dataclass(frozen=True, slots=True)
class Migration:
    """One numbered schema step."""

    version: int
    description: str
    apply: Callable[[sqlite3.Connection], None]


MIGRATIONS: tuple[Migration, ...] = (
    Migration(1, "baseline schema (seed layout + PR-2 columns)", _v1_baseline),
    Migration(2, "visit content digests + batch accounting", _v2_integrity),
    Migration(3, "serve job journal (crash-safe upload state machine)", _v3_jobs),
    Migration(4, "webrtc policy era column + request scheme index", _v4_webrtc),
)


@dataclass(slots=True)
class MigrationReport:
    """What one :func:`migrate` call did."""

    start_version: int
    end_version: int
    applied: list[int] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def schema_version(conn: sqlite3.Connection) -> int:
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def migrate(
    conn: sqlite3.Connection,
    *,
    fault_hook: MigrationFaultHook | None = None,
) -> MigrationReport:
    """Bring ``conn`` up to :data:`SCHEMA_VERSION`, one atomic step at a time.

    Each step runs inside its own immediate transaction together with its
    ``user_version`` bump: either the step lands whole or the database is
    untouched.  A crash (simulated via ``fault_hook`` raising) between
    steps leaves earlier steps committed; rerunning resumes from there.
    """
    current = schema_version(conn)
    report = MigrationReport(start_version=current, end_version=current)
    # Explicit transaction control: the legacy isolation mode autocommits
    # DDL, which would make a multi-statement step non-atomic.
    saved_isolation = conn.isolation_level
    conn.isolation_level = None
    try:
        for step in MIGRATIONS:
            if step.version <= current:
                continue
            if fault_hook is not None:
                fault_hook(f"migration:v{step.version}:begin")
            conn.execute("BEGIN IMMEDIATE")
            try:
                step.apply(conn)
                if fault_hook is not None:
                    fault_hook(f"migration:v{step.version}:commit")
                conn.execute(f"PRAGMA user_version = {step.version}")
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            current = step.version
            report.applied.append(step.version)
            report.end_version = current
    finally:
        conn.isolation_level = saved_isolation
    return report
