"""Simulated RTCPeerConnection: ICE gathering, STUN checks, mDNS names.

One :class:`IceAgent` per simulated browser executes
:class:`IceSession` s — a page script's request to gather candidates and
probe a set of local peers — and emits the corresponding 100-range
NetLog events (:data:`~repro.netlog.constants.EventType.ICE_GATHERING`
and friends) into the visit's ordered event stream, exactly like the
HTTP/WS request machinery in :mod:`repro.browser.chrome`.

Policy eras
-----------

``pre-m74``
    Host candidates carry the interface's raw RFC 1918 address — the
    historical leak: any page could read the visitor's LAN address from
    ``RTCPeerConnection.onicecandidate``.
``mdns``
    Chrome M74+ behaviour: each host candidate is registered under a
    random ``<uuid>.local`` mDNS name and only the name is exposed.  The
    name resolves only on the local link, so to the page (and to the
    NetLog-level detector, which classifies domain names as PUBLIC) the
    candidate discloses nothing.

Server-reflexive (srflx) candidates carry the public address learned
from a STUN server and exist in both eras; they are public by
construction and never count as local traffic.  STUN *connectivity
checks* to explicit loopback/RFC 1918 peers are observable network
traffic in both eras — the era changes what candidates reveal, not what
the page may probe.

Everything here is a pure function of ``(domain, os, index)`` via the
repo's FNV-1a stable hash: the same visit always yields the same
candidate ports, the same ``.local`` uuids, and the same event times.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..browser.errors import NetError
from ..netlog.constants import EventPhase, EventType
from ..netlog.events import NetLogEvent, NetLogSource

POLICY_PRE_M74 = "pre-m74"
POLICY_MDNS = "mdns"
POLICIES = (POLICY_PRE_M74, POLICY_MDNS)

#: Version tag folded into every mDNS uuid draw; bump to rotate all names.
MDNS_NAME_SEED = "mdns-v1"

#: The crawl VM's LAN interface address per OS (stable per vantage).
HOST_ADDRESS_BY_OS: dict[str, str] = {
    "windows": "192.168.1.112",
    "linux": "192.168.1.74",
    "mac": "10.0.1.23",
}

#: The public (server-reflexive) address STUN reports per OS vantage.
SRFLX_ADDRESS_BY_OS: dict[str, str] = {
    "windows": "143.215.130.12",
    "linux": "143.215.130.14",
    "mac": "73.207.98.41",
}

# Deterministic ICE timing (simulated milliseconds).
_HOST_GATHER_MS = 1.0
_MDNS_REGISTER_MS = 3.0
_SRFLX_RTT_MS = 24.0
_STUN_CHECK_GAP_MS = 5.0
_STUN_RTT_MS = 2.0
#: How long a binding request waits before Chrome gives up on a peer.
STUN_TIMEOUT_MS = 400.0


def _stable_hash(text: str) -> int:
    """FNV-1a, the repo's stable cross-process hash."""
    digest = 2166136261
    for ch in text:
        digest = ((digest ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return digest


def mdns_name(domain: str, os_name: str, index: int) -> str:
    """The ``<uuid>.local`` mDNS name for one host candidate.

    Shaped like the UUIDv4 names real Chrome registers, but drawn from
    the stable hash of ``(seed, domain, os, candidate index)`` so the
    same visit always exposes the same names — byte-stability is what
    lets the era tables assert exact counts.
    """
    words = [
        _stable_hash(f"{MDNS_NAME_SEED}:{domain}:{os_name}:{index}:{block}")
        for block in range(4)
    ]
    hexes = "".join(f"{word:08x}" for word in words)
    return (
        f"{hexes[0:8]}-{hexes[8:12]}-{hexes[12:16]}"
        f"-{hexes[16:20]}-{hexes[20:32]}.local"
    )


def candidate_port(domain: str, os_name: str, index: int) -> int:
    """Deterministic ephemeral UDP port for one candidate."""
    return 50_000 + _stable_hash(f"ice-port:{domain}:{os_name}:{index}") % 10_000


@dataclass(frozen=True, slots=True)
class IcePlan:
    """What a page script asks WebRTC to do.

    ``stun_peers`` are the explicit ``(host, port)`` addresses the page
    feeds into its connectivity checks — loopback or RFC 1918 peers are
    how a page knocks on local services over this channel.
    """

    delay_ms: float = 0.0
    stun_peers: tuple[tuple[str, int], ...] = ()
    gather_srflx: bool = True
    initiator: str | None = None

    def __post_init__(self) -> None:
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be non-negative")


@dataclass(frozen=True, slots=True)
class IceSession:
    """One scheduled RTCPeerConnection run: a plan bound to its page."""

    plan: IcePlan
    policy: str
    domain: str
    page_url: str

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown WebRTC policy {self.policy!r} (known: {POLICIES})"
            )


class IceAgent:
    """Executes ICE sessions for one browser, emitting NetLog events.

    ``stun_hook`` / ``mdns_hook`` are the fault seams (see
    :class:`~repro.faults.injector.FaultInjector`): called per peer /
    per candidate, a returned :class:`~repro.browser.errors.NetError`
    makes that binding check time out or that mDNS registration fail.
    Both failure modes are *masked* from the leak analysis by design —
    the binding request was already on the wire, and a failed mDNS
    registration withholds the (non-leaking) candidate entirely — so
    leak tables stay byte-identical under these faults.
    """

    __slots__ = ("os_name", "stun_hook", "mdns_hook")

    def __init__(
        self,
        os_name: str,
        *,
        stun_hook=None,
        mdns_hook=None,
    ) -> None:
        self.os_name = os_name
        self.stun_hook = stun_hook
        self.mdns_hook = mdns_hook

    # -- event emission ------------------------------------------------------

    def execute(
        self,
        out,
        source: NetLogSource,
        start: float,
        session: IceSession,
    ) -> None:
        """Emit the session's full event sequence into ``out``.

        Events are pushed in nondecreasing time order behind the visit's
        reorder buffer; the caller owns ``out.advance(start)``.
        """
        plan = session.plan
        begin_params = {"url": session.page_url, "policy": session.policy}
        if plan.initiator is not None:
            begin_params["initiator"] = plan.initiator
        self._emit(
            out,
            start,
            EventType.ICE_GATHERING,
            source,
            EventPhase.BEGIN,
            begin_params,
        )
        clock = start
        clock = self._gather_host(out, source, clock, session)
        if plan.gather_srflx:
            clock = self._gather_srflx(out, source, clock, session)
        end = self._run_checks(out, source, clock, session)
        self._emit(
            out,
            end,
            EventType.ICE_GATHERING,
            source,
            EventPhase.END,
            {"url": session.page_url},
        )

    def _gather_host(
        self, out, source: NetLogSource, clock: float, session: IceSession
    ) -> float:
        """The host candidate for the LAN interface; returns the new clock."""
        address = HOST_ADDRESS_BY_OS[self.os_name]
        port = candidate_port(session.domain, self.os_name, 0)
        clock += _HOST_GATHER_MS
        if session.policy == POLICY_PRE_M74:
            self._emit(
                out,
                clock,
                EventType.ICE_CANDIDATE_GATHERED,
                source,
                EventPhase.NONE,
                {
                    "candidate_type": "host",
                    "address": address,
                    "port": port,
                    "protocol": "udp",
                },
            )
            return clock
        # mdns era: register the obfuscated name first; only the name is
        # ever exposed in the candidate.  A failed registration withholds
        # the candidate entirely (Chrome's safe default) — never the raw
        # address.
        name = mdns_name(session.domain, self.os_name, 0)
        error = self.mdns_hook(address) if self.mdns_hook is not None else None
        clock += _MDNS_REGISTER_MS
        if error is not None and error.failed:
            self._emit(
                out,
                clock,
                EventType.MDNS_CANDIDATE_REGISTERED,
                source,
                EventPhase.NONE,
                {"name": name, "net_error": int(error)},
            )
            return clock
        self._emit(
            out,
            clock,
            EventType.MDNS_CANDIDATE_REGISTERED,
            source,
            EventPhase.NONE,
            {"name": name, "net_error": 0},
        )
        self._emit(
            out,
            clock,
            EventType.ICE_CANDIDATE_GATHERED,
            source,
            EventPhase.NONE,
            {
                "candidate_type": "host",
                "address": name,
                "port": port,
                "protocol": "udp",
            },
        )
        return clock

    def _gather_srflx(
        self, out, source: NetLogSource, clock: float, session: IceSession
    ) -> float:
        """The server-reflexive candidate (public, both eras)."""
        clock += _SRFLX_RTT_MS
        self._emit(
            out,
            clock,
            EventType.ICE_CANDIDATE_GATHERED,
            source,
            EventPhase.NONE,
            {
                "candidate_type": "srflx",
                "address": SRFLX_ADDRESS_BY_OS[self.os_name],
                "port": candidate_port(session.domain, self.os_name, 1),
                "protocol": "udp",
            },
        )
        return clock

    def _run_checks(
        self, out, source: NetLogSource, clock: float, session: IceSession
    ) -> float:
        """STUN binding checks to the page's explicit peers.

        Checks run concurrently at a fixed stagger (real ICE paces its
        check list), so one timed-out peer never shifts another peer's
        request time — which is what keeps detection byte-identical
        under ``stun-timeout`` faults.
        """
        last = clock
        for index, (host, port) in enumerate(session.plan.stun_peers):
            sent = clock + _STUN_CHECK_GAP_MS * (index + 1)
            peer = f"{host}:{port}"
            self._emit(
                out,
                sent,
                EventType.STUN_BINDING_REQUEST,
                source,
                EventPhase.NONE,
                {"address": peer, "host": host, "port": port},
            )
            error = self.stun_hook(peer) if self.stun_hook is not None else None
            if error is not None and error.failed:
                replied = sent + STUN_TIMEOUT_MS
                params = {"address": peer, "net_error": int(error)}
            else:
                replied = sent + _STUN_RTT_MS
                params = {"address": peer, "net_error": 0}
            self._emit(
                out,
                replied,
                EventType.STUN_BINDING_RESPONSE,
                source,
                EventPhase.NONE,
                params,
            )
            last = max(last, replied)
        return last

    @staticmethod
    def _emit(
        out,
        time: float,
        type: EventType,
        source: NetLogSource,
        phase: EventPhase,
        params: dict,
    ) -> None:
        out.accept(
            NetLogEvent(
                time=time, type=type, source=source, phase=phase, params=params
            )
        )


#: Default timeout error a struck STUN check reports.
STUN_TIMEOUT_ERROR = NetError.ERR_TIMED_OUT
