"""WebRTC/mDNS local-address leakage simulation.

The modern successor channel to the paper's XHR/WebSocket localhost
probing: pages open an ``RTCPeerConnection``, gather ICE candidates, and
run STUN connectivity checks — all of which can disclose the visitor's
local addresses.  Chrome M74 changed the policy: raw-IP host candidates
were replaced by mDNS-obfuscated ``<uuid>.local`` names, turning the
candidate channel from a leak into a non-leak while STUN checks to
explicit RFC 1918 peers remain observable.

This package models both eras deterministically so leak tables are
byte-stable across runs, worker counts, and shard counts.
"""

from .ice import (
    HOST_ADDRESS_BY_OS,
    POLICIES,
    POLICY_MDNS,
    POLICY_PRE_M74,
    SRFLX_ADDRESS_BY_OS,
    IceAgent,
    IcePlan,
    IceSession,
    candidate_port,
    mdns_name,
)

__all__ = [
    "HOST_ADDRESS_BY_OS",
    "POLICIES",
    "POLICY_MDNS",
    "POLICY_PRE_M74",
    "SRFLX_ADDRESS_BY_OS",
    "IceAgent",
    "IcePlan",
    "IceSession",
    "candidate_port",
    "mdns_name",
]
