"""What-if population generator: non-seeded synthetic webs.

The seeded populations replay the paper's 2020/2021 web.  This generator
builds *hypothetical* webs with configurable behaviour-class prevalence,
supporting the §5.1/§5.2 discussion questions the paper raises but
cannot measure:

* "we may observe an expansion of web-based localhost scanning for
  anti-abuse on other sites" — scale the fraud/bot adoption rate up and
  measure the resulting traffic and detection workload;
* "web trackers may be forced to resort to novel tracking mechanisms" —
  introduce tracker-style scanning at a chosen rate.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .behaviors import (
    NativeAppProbe,
    PortScanBehavior,
    ResourceFetchBehavior,
)
from .population import CrawlPopulation
from .seeds import ASM_PORTS, TM_PORTS
from .website import Website

ALL_OSES = ("windows", "linux", "mac")


@dataclass(frozen=True, slots=True)
class ScenarioRates:
    """Per-site probabilities of carrying each behaviour class.

    The paper's measured baseline is tiny (107 of ~90K loaded sites,
    ≈0.12%); scenarios scale individual classes independently.
    """

    fraud_detection: float = 0.0004
    bot_detection: float = 0.0001
    native_app: float = 0.0001
    developer_error: float = 0.0005
    tracker_scan: float = 0.0

    def validate(self) -> None:
        import dataclasses

        values = dataclasses.asdict(self)
        for name, value in values.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")
        if sum(values.values()) > 1.0:
            raise ValueError("class rates may not sum above 1")


@dataclass(slots=True)
class ScenarioPopulation:
    """A generated population plus its ground-truth assignment."""

    population: CrawlPopulation
    assigned: dict[str, str] = field(default_factory=dict)

    def count(self, behavior: str) -> int:
        return sum(1 for value in self.assigned.values() if value == behavior)


def _fraud(domain: str) -> PortScanBehavior:
    return PortScanBehavior(
        name=f"threatmetrix@h.online-metrix.net ({domain})",
        scheme="wss",
        ports=TM_PORTS,
        active_oses=frozenset({"windows"}),
        delay_ms=9_000.0,
    )


def _bot(domain: str) -> PortScanBehavior:
    del domain
    return PortScanBehavior(
        name="bigip-asm:/TSPD",
        scheme="http",
        ports=ASM_PORTS,
        active_oses=frozenset({"windows"}),
        delay_ms=8_000.0,
    )


def _native(rng: random.Random) -> NativeAppProbe:
    port = rng.choice((28337, 6463, 5320, 6878, 16422))
    path = {
        28337: "/", 6463: "/?v=1", 5320: "/status",
        6878: "/webui/api/service", 16422: "/get_client_ver?v=1",
    }[port]
    return NativeAppProbe(
        name="native-app",
        scheme="ws" if port in (28337, 6463) else "http",
        ports=(port,),
        path=path,
        active_oses=frozenset(ALL_OSES),
        delay_ms=2_000.0,
    )


def _dev_error(domain: str, rng: random.Random) -> ResourceFetchBehavior:
    port = rng.choice((80, 8080, 8888, 3000))
    return ResourceFetchBehavior(
        name=f"dev-file:{domain}",
        urls=(f"http://127.0.0.1:{port}/wp-content/uploads/img.jpg",),
        active_oses=frozenset(ALL_OSES),
        delay_ms=1_000.0,
    )


def _tracker(domain: str) -> PortScanBehavior:
    """A hypothetical tracking scan: the TM technique, repurposed.

    Same shape as the fraud scan (which is the paper's point — the
    technique transfers unchanged), served from a tracker domain.
    """
    return PortScanBehavior(
        name=f"tracker@fingerprint-cdn.example ({domain})",
        scheme="wss",
        ports=TM_PORTS,
        active_oses=frozenset({"windows"}),
        delay_ms=7_000.0,
    )


def generate_scenario(
    size: int,
    rates: ScenarioRates,
    *,
    seed: int = 2021,
    name: str = "scenario",
) -> ScenarioPopulation:
    """Generate a synthetic population under the given prevalence rates."""
    if size <= 0:
        raise ValueError("population size must be positive")
    rates.validate()
    rng = random.Random(seed)
    websites: list[Website] = []
    assigned: dict[str, str] = {}
    active: set[str] = set()
    choices = (
        ("fraud", rates.fraud_detection),
        ("bot", rates.bot_detection),
        ("native", rates.native_app),
        ("dev", rates.developer_error),
        ("tracker", rates.tracker_scan),
    )
    for index in range(size):
        domain = f"site-{name}-{index:06d}.example"
        roll = rng.random()
        cumulative = 0.0
        behavior_kind = None
        for kind, rate in choices:
            cumulative += rate
            if roll < cumulative:
                behavior_kind = kind
                break
        behaviors = []
        if behavior_kind == "fraud":
            behaviors = [_fraud(domain)]
        elif behavior_kind == "bot":
            behaviors = [_bot(domain)]
        elif behavior_kind == "native":
            behaviors = [_native(rng)]
        elif behavior_kind == "dev":
            behaviors = [_dev_error(domain, rng)]
        elif behavior_kind == "tracker":
            behaviors = [_tracker(domain)]
        if behavior_kind is not None:
            assigned[domain] = behavior_kind
            active.add(domain)
        websites.append(
            Website(domain, rank=index + 1, behaviors=behaviors)
        )
    population = CrawlPopulation(
        name=name,
        websites=websites,
        oses=ALL_OSES,
        active_domains=active,
    )
    return ScenarioPopulation(population=population, assigned=assigned)
