"""Website model: a domain, its rank/category, and its landing page.

A :class:`Website` owns everything the crawler needs to visit it: the
landing URL, the behaviours embedded on the page, and per-crawl load
failures (used to reproduce the paper's crawl success statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..browser.errors import NetError
from ..browser.page import Page, PageScript


@dataclass(slots=True)
class Website:
    """One measured website."""

    domain: str
    rank: int | None = None
    category: str | None = None  # malware / abuse / phishing / uncategorized
    https: bool = True
    behaviors: list[PageScript] = field(default_factory=list)
    resources: list[str] = field(default_factory=list)
    #: Internal pages and their scripts (path -> scripts).  The paper only
    #: crawled landing pages and flags internal pages (login, account
    #: creation) as future work (section 3.3); the crawler can opt in via
    #: ``include_internal``.
    internal_pages: dict[str, list[PageScript]] = field(default_factory=dict)
    #: Per-OS injected load failure for this crawl (os name -> error).
    load_errors: dict[str, NetError] = field(default_factory=dict)
    #: Marks sites whose behaviour/OS flags were reconstructed rather than
    #: read verbatim from a paper table (see DESIGN.md §6).
    calibrated: bool = False

    @property
    def landing_url(self) -> str:
        scheme = "https" if self.https else "http"
        return f"{scheme}://{self.domain}/"

    def page(self, path: str = "/") -> Page:
        """Build the :class:`Page` at ``path`` (default: the landing page)."""
        if path == "/":
            return Page(
                url=self.landing_url,
                scripts=list(self.behaviors),
                resources=list(self.resources),
            )
        try:
            scripts = self.internal_pages[path]
        except KeyError:
            raise KeyError(
                f"{self.domain} has no internal page {path!r}"
            ) from None
        return Page(
            url=self.landing_url.rstrip("/") + path,
            scripts=list(scripts),
            resources=list(self.resources),
        )

    def load_error_for(self, os_name: str) -> NetError | None:
        """The injected failure for a crawl on ``os_name``, if any."""
        return self.load_errors.get(os_name)

    def has_local_behavior(self) -> bool:
        """True when any embedded behaviour can generate local traffic.

        Public-noise behaviours do not count; used by populations to keep
        the seeded/active site inventory queryable.
        """
        from .behaviors import PublicResourceBehavior

        scripts = list(self.behaviors)
        for page_scripts in self.internal_pages.values():
            scripts.extend(page_scripts)
        return any(
            not isinstance(script, PublicResourceBehavior)
            for script in scripts
        )
