"""Script behaviour models: what the observed websites actually do.

Each class models one family of local-traffic-generating JavaScript the
paper identified (section 4.3), as a :class:`~repro.browser.page.PageScript`.
Behaviours are *OS-conditional* — the defining empirical fact of the paper
is that, e.g., ThreatMetrix probes localhost only on Windows — and fire at
a configurable delay after page commit, which is what produces the timing
CDFs of Figures 5–7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..browser.page import PlannedRequest, ScriptContext

#: Gap between consecutive probes inside one scan burst (ms).  The scanners
#: fire their port probes nearly simultaneously from a loop.
_PROBE_GAP_MS = 15.0


def _oses(value: Sequence[str]) -> frozenset[str]:
    out = frozenset(value)
    if not out:
        raise ValueError("behaviour must be active on at least one OS")
    return out


@dataclass(frozen=True)
class PortScanBehavior:
    """An anti-abuse localhost port scan (ThreatMetrix / BIG-IP ASM style).

    Probes every port in ``ports`` with the same scheme and path in one
    burst, then optionally uploads collected telemetry to the vendor's
    public endpoint (ThreatMetrix's behaviour: the JS blob posts encrypted
    results back to the vendor-controlled domain, section 4.3.1).
    """

    name: str
    scheme: str
    ports: tuple[int, ...]
    active_oses: frozenset[str]
    path: str = "/"
    delay_ms: float = 8000.0
    host: str = "localhost"
    telemetry_url: str | None = None

    def plan(self, context: ScriptContext) -> list[PlannedRequest]:
        if context.os_name not in self.active_oses:
            return []
        requests = [
            PlannedRequest(
                url=f"{self.scheme}://{self.host}:{port}{self.path}",
                delay_ms=self.delay_ms + index * _PROBE_GAP_MS,
                initiator=self.name,
            )
            for index, port in enumerate(self.ports)
        ]
        if self.telemetry_url:
            requests.append(
                PlannedRequest(
                    url=self.telemetry_url,
                    delay_ms=self.delay_ms + len(self.ports) * _PROBE_GAP_MS + 200.0,
                    method="POST",
                    initiator=self.name,
                )
            )
        return requests


@dataclass(frozen=True)
class NativeAppProbe:
    """Communication with an affiliated native application (section 4.3.3).

    Probes each candidate control port with the app's characteristic path.
    Apps often bind one of several fallback ports (Discord walks
    6463–6472), hence the port list.
    """

    name: str
    scheme: str
    ports: tuple[int, ...]
    path: str
    active_oses: frozenset[str]
    delay_ms: float = 2500.0
    host: str = "127.0.0.1"

    def plan(self, context: ScriptContext) -> list[PlannedRequest]:
        if context.os_name not in self.active_oses:
            return []
        return [
            PlannedRequest(
                url=f"{self.scheme}://{self.host}:{port}{self.path}",
                delay_ms=self.delay_ms + index * _PROBE_GAP_MS,
                initiator=self.name,
            )
            for index, port in enumerate(self.ports)
        ]


@dataclass(frozen=True)
class ResourceFetchBehavior:
    """Fetches of absolute local URLs left in the page (section 4.3.4).

    Models developer-error remnants (images still pointing at the dev
    machine's WordPress, livereload.js, sockjs-node probes) and the
    Unknown-class JSON polls.  ``urls`` are complete URLs including the
    local host and port.
    """

    name: str
    urls: tuple[str, ...]
    active_oses: frozenset[str]
    delay_ms: float = 1200.0

    def plan(self, context: ScriptContext) -> list[PlannedRequest]:
        if context.os_name not in self.active_oses:
            return []
        return [
            PlannedRequest(
                url=url,
                delay_ms=self.delay_ms + index * _PROBE_GAP_MS,
                initiator=self.name,
            )
            for index, url in enumerate(self.urls)
        ]


@dataclass(frozen=True)
class RedirectToLocalBehavior:
    """A page request that 30x-redirects to a local destination.

    Covers the ``http://127.0.0.1/`` redirects the paper saw on
    romadecade.org / fincaraiz.com.co, and the censorship-injected
    ``http://10.10.34.35:80`` iframes (Appendix C): the visible request
    goes to a public URL whose response points the browser at the local
    address.
    """

    name: str
    public_url: str
    local_url: str
    active_oses: frozenset[str]
    delay_ms: float = 800.0

    def plan(self, context: ScriptContext) -> list[PlannedRequest]:
        if context.os_name not in self.active_oses:
            return []
        return [
            PlannedRequest(
                url=self.public_url,
                delay_ms=self.delay_ms,
                initiator=self.name,
                redirect_to=(self.local_url,),
            )
        ]


@dataclass(frozen=True)
class DirectLocalFetch:
    """A single direct fetch of one local URL (iframe/img src).

    The censorship case manifests as an iframe sourced directly at a LAN
    address; unlike :class:`RedirectToLocalBehavior` there is no public
    hop.
    """

    name: str
    local_url: str
    active_oses: frozenset[str]
    delay_ms: float = 600.0

    def plan(self, context: ScriptContext) -> list[PlannedRequest]:
        if context.os_name not in self.active_oses:
            return []
        return [
            PlannedRequest(
                url=self.local_url, delay_ms=self.delay_ms, initiator=self.name
            )
        ]


@dataclass(frozen=True)
class LanSweepBehavior:
    """A web-based LAN discovery sweep — the hypothesised attack.

    Models the sonar.js / lan-js / Acar-et-al. scanners from the
    literature (section 2.1): walk a /24, probing each candidate address
    on a port, optionally following up with device-characteristic paths.
    No site in any of the paper's crawls did this; the behaviour exists
    so the pipeline's ability to catch it is testable, and for the IoT
    attack-surface study in the examples.
    """

    name: str
    subnet: str  # e.g. "192.168.1"
    active_oses: frozenset[str]
    host_range: tuple[int, int] = (1, 32)
    port: int = 80
    probe_paths: tuple[str, ...] = ("/",)
    delay_ms: float = 3000.0
    scheme: str = "http"

    def plan(self, context: ScriptContext) -> list[PlannedRequest]:
        if context.os_name not in self.active_oses:
            return []
        low, high = self.host_range
        if not 1 <= low <= high <= 254:
            raise ValueError("host_range must lie within [1, 254]")
        requests: list[PlannedRequest] = []
        index = 0
        for octet in range(low, high + 1):
            for path in self.probe_paths:
                requests.append(
                    PlannedRequest(
                        url=f"{self.scheme}://{self.subnet}.{octet}:{self.port}{path}",
                        delay_ms=self.delay_ms + index * _PROBE_GAP_MS,
                        initiator=self.name,
                    )
                )
                index += 1
        return requests


@dataclass(frozen=True)
class WebRtcLeakBehavior:
    """A page that opens an RTCPeerConnection and probes local peers.

    The WebRTC successor to the XHR/WS probing families: the script
    gathers ICE candidates (learning the visitor's local address in the
    ``pre-m74`` era, or only an mDNS ``<uuid>.local`` name afterwards)
    and runs STUN connectivity checks against explicit loopback/RFC 1918
    peers.  ``plan`` returns no HTTP requests — the channel lives
    entirely in the ICE machinery — and the browser picks the session up
    through :meth:`plan_ice`.

    ``policy`` is baked in at population-build time from the study's
    ``--webrtc-policy`` flag, so the same behaviour object deterministically
    reproduces either era.
    """

    name: str
    active_oses: frozenset[str]
    policy: str
    stun_peers: tuple[tuple[str, int], ...] = ()
    gather_srflx: bool = True
    delay_ms: float = 1500.0

    def plan(self, context: ScriptContext) -> list[PlannedRequest]:
        del context
        return []

    def plan_ice(self, context: ScriptContext):
        """The ICE session this page runs, or None on inactive OSes."""
        if context.os_name not in self.active_oses:
            return None
        from ..webrtc.ice import IcePlan

        return IcePlan(
            delay_ms=self.delay_ms,
            stun_peers=self.stun_peers,
            gather_srflx=self.gather_srflx,
            initiator=self.name,
        )


@dataclass(frozen=True)
class PublicResourceBehavior:
    """Ordinary third-party fetches — the background noise of a page."""

    name: str
    urls: tuple[str, ...]
    delay_ms: float = 100.0
    active_oses: frozenset[str] = field(
        default_factory=lambda: frozenset({"windows", "linux", "mac"})
    )

    def plan(self, context: ScriptContext) -> list[PlannedRequest]:
        if context.os_name not in self.active_oses:
            return []
        return [
            PlannedRequest(
                url=url,
                delay_ms=self.delay_ms + index * 30.0,
                initiator=self.name,
            )
            for index, url in enumerate(self.urls)
        ]
