"""WHOIS-style ownership substrate.

Section 4.3.1: "Conducting WHOIS lookups on these domains and their IP
addresses, we find that these domains all belong to the ThreatMetrix Inc.
organization."  That lookup is how the paper attributed the fraud scans
to a vendor despite the script loading from per-customer domains
(ebay-us.com, regstat.betfair.com, …).

This registry models the slice of WHOIS the attribution needs: domain →
registrant organisation, with suffix matching so ``regstat.betfair.com``
resolves via ``betfair.com``'s record.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class WhoisRecord:
    """Ownership facts for one domain."""

    domain: str
    organization: str
    #: Loose categorisation used by the attribution rollups.
    kind: str = "first-party"  # first-party | anti-abuse-vendor | cdn | other


class WhoisRegistry:
    """Suffix-matching domain → owner lookups."""

    def __init__(self, records: list[WhoisRecord] | None = None) -> None:
        self._records: dict[str, WhoisRecord] = {}
        for record in records or []:
            self.register(record)

    def register(self, record: WhoisRecord) -> None:
        self._records[record.domain.lower().rstrip(".")] = record

    def lookup(self, domain: str) -> WhoisRecord | None:
        """Find the record for ``domain`` or its closest registered suffix."""
        name = domain.lower().rstrip(".")
        while name:
            record = self._records.get(name)
            if record is not None:
                return record
            _, _, name = name.partition(".")
        return None

    def organization(self, domain: str) -> str | None:
        record = self.lookup(domain)
        return record.organization if record else None

    def __len__(self) -> int:
        return len(self._records)


def default_registry() -> WhoisRegistry:
    """Ownership records for the third-party domains the study met.

    ThreatMetrix fronts its script through customer-branded domains that
    WHOIS nevertheless ties back to the vendor — the paper's key
    attribution step.
    """
    vendor = "ThreatMetrix Inc."
    return WhoisRegistry(
        [
            WhoisRecord("online-metrix.net", vendor, kind="anti-abuse-vendor"),
            WhoisRecord("h.online-metrix.net", vendor, kind="anti-abuse-vendor"),
            WhoisRecord("ebay-us.com", vendor, kind="anti-abuse-vendor"),
            WhoisRecord("regstat.betfair.com", vendor, kind="anti-abuse-vendor"),
            WhoisRecord("f5.com", "F5 Inc.", kind="anti-abuse-vendor"),
            WhoisRecord("ebay.com", "eBay Inc."),
            WhoisRecord("betfair.com", "Betfair Ltd."),
            WhoisRecord("fidelity.com", "FMR LLC"),
            WhoisRecord("example-cdn.com", "Example CDN Co.", kind="cdn"),
        ]
    )
