"""Simulated web content: behaviours, websites, seeds, populations."""

from .behaviors import (
    DirectLocalFetch,
    LanSweepBehavior,
    NativeAppProbe,
    PortScanBehavior,
    PublicResourceBehavior,
    RedirectToLocalBehavior,
    ResourceFetchBehavior,
)
from .internal import LOGIN_PAGE_SCANNERS, LoginPageScanner, login_scan_behavior
from .iot import DEVICE_CATALOG, HomeNetwork, IoTDevice, typical_home_network
from .population import (
    CrawlPopulation,
    build_malicious_population,
    build_top_population,
)
from .website import Website

__all__ = [
    "DirectLocalFetch",
    "LanSweepBehavior",
    "NativeAppProbe",
    "PortScanBehavior",
    "PublicResourceBehavior",
    "RedirectToLocalBehavior",
    "ResourceFetchBehavior",
    "LOGIN_PAGE_SCANNERS",
    "LoginPageScanner",
    "login_scan_behavior",
    "DEVICE_CATALOG",
    "HomeNetwork",
    "IoTDevice",
    "typical_home_network",
    "CrawlPopulation",
    "build_malicious_population",
    "build_top_population",
    "Website",
]
