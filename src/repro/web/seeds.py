"""Ground-truth seed data: the paper's measured tables as structured rows.

This module transcribes Tables 3, 5, 6, 7, 8, 9, 10 and 11 of the paper
(plus the §4.3 narrative) into data the population builder turns into
behaving websites.  Every domain, port set, protocol, URL path and OS flag
comes from the paper where the tables state it; rows the paper gives only
in aggregate ("79 domains omitted for brevity", Figure 2 overlap regions)
are reconstructed and marked ``calibrated=True``.  DESIGN.md §6 documents
each calibration decision; EXPERIMENTS.md records the resulting
paper-vs-measured deltas.

Wildcard path components in the paper's tables (``*.jpg``) are concretised
to stable example names — the analyses only depend on path *shape*.
"""

from __future__ import annotations

from dataclasses import dataclass

W, L, M = "windows", "linux", "mac"
ALL = (W, L, M)
WL = (W, L)
LM = (L, M)
WM = (W, M)

#: The 14 localhost ports ThreatMetrix probes over WSS (Tables 4/5).
TM_PORTS: tuple[int, ...] = (
    3389, 5279, 5900, 5901, 5902, 5903, 5931, 5939, 5944, 5950, 6039, 6040,
    63333, 7070,
)
#: The 7 localhost ports BIG-IP ASM Bot Defense probes over HTTP.
ASM_PORTS: tuple[int, ...] = (4444, 4653, 5555, 7054, 7055, 9515, 17556)

DISCORD_PORTS = tuple(range(6463, 6473))
HOLA_PORTS = tuple(range(6880, 6890))
WOWREALITY_PORTS: tuple[int, ...] = (
    1080, 1194, 2375, 2376, 3000, 3128, 3306, 3479, 4244, 5037, 5242, 5601,
    5938, 6379, 8332, 8333, 8530, 9000, 9050, 9150, 9785, 11211, 15672,
    23399, 27017,
)
NPROTECT_PORTS = tuple(range(14440, 14450))
ANYSIGN_PORTS: tuple[int, ...] = (10531, 31027, 31029)
TRUSTDICE_PORTS: tuple[int, ...] = (50005, 51505, 53005, 54505, 56005)
GNWAY_PORTS = tuple(range(38681, 38688))


@dataclass(frozen=True, slots=True)
class Probe:
    """One (scheme, ports, path) group of localhost requests."""

    scheme: str
    ports: tuple[int, ...]
    path: str = "/"


@dataclass(frozen=True, slots=True)
class LocalhostSeed:
    """A top-100K site observed making localhost requests."""

    domain: str
    rank: int  # 2020 rank where in the 2020 list, else the 2021 rank
    reason: str  # fraud | bot | native | dev | unknown
    probes: tuple[Probe, ...]
    oses_2020: tuple[str, ...] | None  # None: no 2020 activity / not crawled
    oses_2021: tuple[str, ...] | None  # None: no 2021 activity / not crawled
    in_2020_list: bool = True
    in_2021_list: bool = True
    rank_2021: int | None = None
    dev_kind: str | None = None  # file | pentest | livereload | redirect | sockjs | other
    app: str | None = None
    vendor: str | None = None
    calibrated: bool = False


@dataclass(frozen=True, slots=True)
class LanSeed:
    """A site observed making LAN (private-address) requests."""

    domain: str
    rank: int | None
    scheme: str
    ip: str
    port: int
    path: str
    oses: tuple[str, ...]
    crawl: str  # top2020 | top2021 | malicious
    category: str | None = None  # malware | abuse | phishing (malicious only)
    kind: str = "dev"  # dev | censorship | other | unknown
    delay_s: float | None = None
    calibrated: bool = False


@dataclass(frozen=True, slots=True)
class WebRtcSeed:
    """A site that opens an RTCPeerConnection and probes local peers.

    The paper's crawls predate a WebRTC channel in the pipeline, so every
    row here is a calibrated extension (``calibrated=True`` throughout):
    the sites are drawn from the paper's own behaviour-carrying set, with
    STUN peer lists shaped like the XHR/WS probes those sites already
    make.  ``peers`` lists the explicit ``(host, port)`` addresses the
    page feeds its ICE connectivity checks — loopback peers land in
    Table 5W, RFC 1918 peers in Table 6W.  A seed with no peers is a
    gather-only page: it leaks the host candidate's raw LAN address in
    the ``pre-m74`` era and nothing at all under mDNS obfuscation.
    """

    domain: str
    oses: tuple[str, ...]
    peers: tuple[tuple[str, int], ...] = ()
    gather_srflx: bool = True
    delay_s: float | None = None
    calibrated: bool = True


@dataclass(frozen=True, slots=True)
class MaliciousSeed:
    """A blocklisted site observed making localhost requests."""

    domain: str
    category: str  # malware | abuse | phishing
    probes: tuple[Probe, ...]
    oses: tuple[str, ...]
    kind: str  # threatmetrix-clone | native | dev-file | dev-livereload | dev-redirect
    app: str | None = None
    calibrated: bool = False


def _tm(domain: str, rank: int, *, oses_2021: tuple[str, ...] | None,
        in_2021: bool = True, rank_2021: int | None = None,
        vendor: str | None = None, calibrated: bool = False) -> LocalhostSeed:
    """A 2020 ThreatMetrix fraud-detection deployer (always Windows-only)."""
    return LocalhostSeed(
        domain=domain, rank=rank, reason="fraud",
        probes=(Probe("wss", TM_PORTS, "/"),),
        oses_2020=(W,), oses_2021=oses_2021,
        in_2021_list=in_2021, rank_2021=rank_2021,
        vendor=vendor or "h.online-metrix.net", calibrated=calibrated,
    )


def _asm(domain: str, rank: int) -> LocalhostSeed:
    """A 2020 BIG-IP ASM Bot Defense deployer (Windows-only; all stopped
    serving the /TSPD script before the 2021 crawl, section 4.3.2)."""
    return LocalhostSeed(
        domain=domain, rank=rank, reason="bot",
        probes=(Probe("http", ASM_PORTS, "/"),),
        oses_2020=(W,), oses_2021=None,
    )


# ---------------------------------------------------------------------------
# Table 5 — 2020 top-100K localhost requesters (+ Table 11 dev errors)
# ---------------------------------------------------------------------------

_EBAY_RANKS = {
    "ebay.com": 104, "ebay.de": 429, "ebay.co.uk": 536, "ebay.com.au": 932,
    "ebay.it": 1843, "ebay.fr": 2200, "ebay.ca": 2394, "ebay.at": 3200,
    "ebay.ch": 4100, "ebay.in": 5120, "ebay.pl": 6200, "ebay.ie": 7300,
    "ebay.com.sg": 9800, "ebay.com.my": 12050, "ebay.ph": 15400,
    "ebay.es": 1590, "ebay.nl": 1120, "ebay.us": 45156,
}

FRAUD_2020: tuple[LocalhostSeed, ...] = tuple(
    [
        _tm(domain, rank, oses_2021=(W,), vendor="ebay-us.com")
        for domain, rank in sorted(_EBAY_RANKS.items(), key=lambda kv: kv[1])
    ]
    + [
        # Added to match the paper's aggregate of 35 fraud sites / 490
        # Windows WSS requests (DESIGN.md §6).
        _tm("ebay.be", 30500, oses_2021=(W,), vendor="ebay-us.com",
            calibrated=True),
        _tm("fidelity.com", 1250, oses_2021=(W,)),
        _tm("citi.com", 1288, oses_2021=None),
        _tm("citibank.com", 5400, oses_2021=None),
        _tm("citibankonline.com", 7907, oses_2021=None),
        _tm("marktplaats.nl", 5680, oses_2021=None),
        _tm("betfair.com", 7441, oses_2021=(W,), rank_2021=8173,
            vendor="regstat.betfair.com"),
        _tm("tiaa.org", 13119, oses_2021=None),
        _tm("tiaa-cref.org", 57251, oses_2021=None),
        _tm("2dehands.be", 13901, oses_2021=None),
        _tm("santanderbank.com", 25990, oses_2021=(W,)),
        _tm("ameriprise.com", 29104, oses_2021=(W,)),
        _tm("commoncause.org", 34251, oses_2021=None),
        _tm("ctfs.com", 45228, oses_2021=None),
        _tm("2ememain.be", 50853, oses_2021=None),
        _tm("highlow.net", 90641, oses_2021=(W,)),
        _tm("metagenics.com", 97182, oses_2021=(W,)),
    ]
)

BOT_2020: tuple[LocalhostSeed, ...] = (
    _asm("sbi.co.in", 8608),
    _asm("cnes.fr", 25881),
    _asm("din.de", 27491),
    _asm("csob.cz", 32114),
    _asm("anaf.ro", 48803),
    _asm("data.gov.in", 55267),
    _asm("allegiantair.com", 55852),
    _asm("tmdn.org", 58948),
    _asm("beuth.de", 65955),
    _asm("bank.sbi", 99638),
)

NATIVE_2020: tuple[LocalhostSeed, ...] = (
    LocalhostSeed(
        "faceit.com", 5369, "native", (Probe("ws", (28337,), "/"),),
        oses_2020=ALL, oses_2021=WL, app="FACEIT client",
    ),
    LocalhostSeed(
        "cponline.pw", 23218, "native",
        (Probe("ws", DISCORD_PORTS, "/?v=1"),),
        oses_2020=ALL, oses_2021=None, in_2021_list=False, app="Discord",
    ),
    LocalhostSeed(
        "samsungcard.com", 29301, "native",
        (
            Probe("wss", ANYSIGN_PORTS, "/"),
            Probe("https", NPROTECT_PORTS, "/?code=1&dummy=2"),
        ),
        oses_2020=ALL, oses_2021=WL,
        app="nProtect Online Security + AnySign for PC",
    ),
    LocalhostSeed(
        "samsungcard.co.kr", 77550, "native",
        (
            Probe("wss", ANYSIGN_PORTS, "/"),
            Probe("https", NPROTECT_PORTS, "/?code=1&dummy=2"),
        ),
        oses_2020=ALL, oses_2021=WL,
        app="nProtect Online Security + AnySign for PC",
    ),
    LocalhostSeed(
        "gamehouse.com", 36141, "native",
        (Probe("http", (12071, 12072, 17021, 27021),
               "/v1/init.json?api_port=12071&query_id=1"),),
        oses_2020=ALL, oses_2021=None, app="GameHouse client",
    ),
    LocalhostSeed(
        "games.lol", 47690, "native", (Probe("ws", (60202,), "/check"),),
        oses_2020=LM, oses_2021=WL, app="Games.lol client", calibrated=True,
    ),
    LocalhostSeed(
        "zylom.com", 57008, "native",
        (Probe("http", (12071, 17021),
               "/v1/init.json?api_port=12071&query_id=1"),),
        oses_2020=ALL, oses_2021=WL, app="Zylom game manager",
    ),
    LocalhostSeed(
        "iwin.com", 74089, "native",
        (Probe("http", (2080, 2081, 2082), "/version?_=1"),),
        oses_2020=LM, oses_2021=WL, app="iWin Games client", calibrated=True,
    ),
    LocalhostSeed(
        "screenleap.com", 77134, "native",
        (Probe("http", (5320,), "/status"),),
        oses_2020=ALL, oses_2021=None, in_2021_list=False,
        app="Screenleap client",
    ),
    LocalhostSeed(
        "acestream.me", 88902, "native",
        (Probe("http", (6878,), "/webui/api/service"),),
        oses_2020=ALL, oses_2021=None, in_2021_list=False,
        app="Ace Stream client",
    ),
    LocalhostSeed(
        "trustdice.win", 91904, "native",
        (Probe("http", TRUSTDICE_PORTS, "/socket.io"),),
        oses_2020=ALL, oses_2021=WL, app="TrustDice helper",
    ),
    LocalhostSeed(
        "runeline.com", 98789, "native",
        (Probe("ws", DISCORD_PORTS, "/?v=1"),),
        oses_2020=ALL, oses_2021=None, in_2021_list=False, app="Discord",
    ),
)

UNKNOWN_2020: tuple[LocalhostSeed, ...] = (
    LocalhostSeed(
        "hola.org", 243, "unknown", (Probe("http", HOLA_PORTS, "/peers.json"),),
        oses_2020=ALL, oses_2021=WL,
    ),
    LocalhostSeed(
        "wowreality.info", 21245, "unknown",
        (Probe("http", WOWREALITY_PORTS, "/"),),
        oses_2020=ALL, oses_2021=WL,
    ),
    LocalhostSeed(
        "svd-cdn.com", 62048, "unknown",
        (Probe("http", HOLA_PORTS, "/chunk.json"),),
        oses_2020=ALL, oses_2021=WL,
    ),
    LocalhostSeed(
        "usaonlineclassifieds.com", 78456, "unknown",
        (Probe("ws", (2687, 26876), "/"),),
        oses_2020=(W,), oses_2021=None,
    ),
    LocalhostSeed(
        "usnetads.com", 84569, "unknown",
        (Probe("ws", (2687, 26876), "/"),),
        oses_2020=(W,), oses_2021=None,
    ),
)


def _dev(domain: str, rank: int, scheme: str, port: int, path: str,
         oses_2020: tuple[str, ...], *, kind: str,
         oses_2021: tuple[str, ...] | None = None, in_2021: bool = True,
         calibrated: bool = False) -> LocalhostSeed:
    return LocalhostSeed(
        domain=domain, rank=rank, reason="dev",
        probes=(Probe(scheme, (port,), path),),
        oses_2020=oses_2020, oses_2021=oses_2021,
        in_2021_list=in_2021, dev_kind=kind, calibrated=calibrated,
    )


DEV_2020: tuple[LocalhostSeed, ...] = (
    # -- local file server ------------------------------------------------
    _dev("smartcatdesign.net", 22729, "http", 8888,
         "/wp-content/uploads/2018/06/hero.jpg", ALL, kind="file",
         oses_2021=WL),
    _dev("uinsby.ac.id", 36786, "http", 80,
         "/eduma/demo-1/wp-content/uploads/sites/2/2017/11/banner.jpg", ALL,
         kind="file", oses_2021=WL),
    _dev("upbasiceduboard.gov.in", 38865, "http", 1987,
         "/TeacherRecruitment2018/images/notice.jpg", WL, kind="file",
         in_2021=False),
    _dev("walisongo.ac.id", 41468, "http", 80,
         "/wordpress/wp-content/uploads/2015/07/campus.jpg", WL, kind="file",
         oses_2021=WL),
    _dev("classera.com", 41596, "http", 8080,
         "/wp-content/uploads/2020/04/logo.png", WL, kind="file",
         oses_2021=WL),
    _dev("weavesilk.com", 45177, "http", 80, "/Silk%20Static/intro.mp4", ALL,
         kind="file"),
    _dev("upsen.net", 50390, "http", 80, "/6/10/app.js", ALL, kind="file",
         in_2021=False),
    _dev("dsb.cn", 51910, "http", 80, "/cover.jpg", (L,), kind="file"),
    _dev("sin-tech.cn", 56450, "http", 9999,
         "/admin/kindeditor/attached/image/20191017/product.jpg", ALL,
         kind="file", in_2021=False),
    _dev("nwolb.com", 56730, "https", 36762, "/spinner.gif", ALL, kind="file"),
    _dev("cryptopia.co.nz", 57467, "http", 49972, "/favicon.ico", ALL,
         kind="file"),
    _dev("weijuju.com", 63636, "http", 9092, "/image/page/index/bg.png", ALL,
         kind="file", in_2021=False),
    _dev("tdk.gov.tr", 63770, "http", 80,
         "/magazon/magazon-wp/wp-content/uploads/2013/02/favicon.ico", ALL,
         kind="file"),
    _dev("shqilon.com", 65915, "http", 80, "/stop/notice.html", ALL,
         kind="file", in_2021=False),
    _dev("aau.edu.et", 66891, "http", 80,
         "/graduation/wp-content/uploads/2020/06/gown.png", (L,), kind="file"),
    _dev("sirrus.com.br", 67851, "http", 80,
         "/sitesirrus/wp-content/uploads/2017/07/logo.png", ALL, kind="file",
         oses_2021=WL),
    _dev("unionbankph.com", 69708, "http", 8888, "/socket.io/socket.io.js",
         ALL, kind="file"),
    _dev("qubscribe.com", 77636, "https", 443,
         "/wp-content/uploads/2019/03/header.png", LM, kind="file",
         in_2021=False),
    _dev("persian-magento.ir", 77761, "http", 80,
         "/graffito/images/sampledata/shoe.png", ALL, kind="file",
         in_2021=False),
    _dev("serymark.com", 86045, "http", 80,
         "/sm/wp-content/uploads/2017/06/icon.png", ALL, kind="file",
         in_2021=False),
    _dev("ghana.com", 88997, "https", 8080,
         "/gdc/wp-content/themes/consultix/images/flag.png", ALL, kind="file",
         in_2021=False),
    _dev("gomedici.com", 92768, "http", 3000, "/assets/logo.png", LM,
         kind="file", oses_2021=WL, calibrated=True),
    _dev("xaipe.edu.cn", 93798, "http", 80, "/news.html", LM, kind="file",
         in_2021=False),
    _dev("health.com.kh", 94771, "http", 8899,
         "/newhealth/wp-content/uploads/2018/01/clinic.png", ALL, kind="file",
         in_2021=False),
    _dev("urkund.com", 96981, "http", 4337,
         "/wp-content/uploads/2019/07/report.png", LM, kind="file",
         in_2021=False),
    # -- pen test ----------------------------------------------------------
    _dev("rkn.gov.ru", 17826, "http", 5005, "/xook.js", ALL, kind="pentest",
         in_2021=False),
    # -- LiveReload.js ------------------------------------------------------
    _dev("cruzeirodosulvirtual.com.br", 19243, "http", 460, "/livereload.js",
         ALL, kind="livereload"),
    _dev("melissaanddoug.com", 53124, "https", 35729, "/livereload.js", ALL,
         kind="livereload"),
    _dev("airfind.com", 53216, "https", 35729, "/livereload.js", ALL,
         kind="livereload"),
    _dev("hollins.edu", 58629, "https", 35729, "/livereload.js", ALL,
         kind="livereload", calibrated=True),
    _dev("amitriptylineelavilgha.com", 59978, "http", 35729, "/livereload.js",
         ALL, kind="livereload", in_2021=False),
    # -- redirect to 127.0.0.1 ----------------------------------------------
    _dev("romadecade.org", 51142, "http", 80, "/", ALL, kind="redirect",
         in_2021=False),
    _dev("fincaraiz.com.co", 63644, "http", 80, "/", (W,), kind="redirect"),
    # -- SockJS-node (Mac only, Appendix B) ----------------------------------
    _dev("lyfdose.com", 49144, "http", 9000, "/sockjs-node/info?t=1", (M,),
         kind="sockjs"),
    _dev("klik-mag.com", 49990, "https", 9000, "/sockjs-node/info?t=1", (M,),
         kind="sockjs"),
    _dev("acedirectory.org", 51101, "https", 9000, "/sockjs-node/info?t=1",
         (M,), kind="sockjs"),
    _dev("veteranstodayarchives.com", 57249, "https", 9000,
         "/sockjs-node/info?t=1", (M,), kind="sockjs"),
    _dev("smartsearch.me", 66971, "https", 9000, "/sockjs-node/info?t=1",
         (M,), kind="sockjs"),
    # -- other local services -------------------------------------------------
    _dev("zakupki.gov.ru", 7699, "https", 1931, "/record/state", ALL,
         kind="other", in_2021=False),
    _dev("gamezone.com", 24739, "http", 8000, "/setuid", ALL, kind="other",
         calibrated=True),
    _dev("filemail.com", 26399, "http", 56666, "/", ALL, kind="other",
         calibrated=True),
    _dev("interbank.pe", 31518, "http", 9080, "/avisos-portal", ALL,
         kind="other", oses_2021=WL, calibrated=True),
    _dev("fsist.com.br", 58708, "http", 28337, "/getCertificados", ALL,
         kind="other", in_2021=False),
    _dev("spaceappschallenge.org", 62852, "http", 8000, "/graphql", LM,
         kind="other", oses_2021=WL, calibrated=True),
    _dev("fromhomefitness.com", 90791, "https", 8000, "/app/getLicenseKey",
         LM, kind="other", in_2021=False),
)

LOCALHOST_2020: tuple[LocalhostSeed, ...] = (
    FRAUD_2020 + BOT_2020 + NATIVE_2020 + UNKNOWN_2020 + DEV_2020
)


# ---------------------------------------------------------------------------
# Table 7 — sites newly observed in the 2021 crawl (Windows + Linux only)
# ---------------------------------------------------------------------------

def _new2021(domain: str, rank: int, reason: str, probes: tuple[Probe, ...],
             oses: tuple[str, ...], *, in_2020: bool, dev_kind: str | None = None,
             app: str | None = None, vendor: str | None = None,
             calibrated: bool = False) -> LocalhostSeed:
    return LocalhostSeed(
        domain=domain, rank=rank, reason=reason, probes=probes,
        oses_2020=None, oses_2021=oses, in_2020_list=in_2020,
        rank_2021=rank, dev_kind=dev_kind, app=app, vendor=vendor,
        calibrated=calibrated,
    )


_IQIYI = (Probe("http", (16422, 16423), "/get_client_ver?v=1"),)
_THUNDER = (Probe("http", (28317, 36759), "/get_thunder_version/"),)
_EIMZO = (Probe("wss", (64443,), "/service/cryptapi"),)

NEW_2021: tuple[LocalhostSeed, ...] = (
    # -- fraud detection (ThreatMetrix), Windows only ------------------------
    _new2021("cibc.com", 2912, "fraud", (Probe("wss", TM_PORTS, "/"),), (W,),
             in_2020=True, vendor="h.online-metrix.net"),
    _new2021("highlow.com", 10679, "fraud", (Probe("wss", TM_PORTS, "/"),),
             (W,), in_2020=True, vendor="h.online-metrix.net"),
    _new2021("moneybookers.com", 28370, "fraud", (Probe("wss", TM_PORTS, "/"),),
             (W,), in_2020=True, vendor="h.online-metrix.net"),
    _new2021("ebay.com.hk", 31170, "fraud", (Probe("wss", TM_PORTS, "/"),),
             (W,), in_2020=True, vendor="ebay-us.com"),
    _new2021("marks.com", 64012, "fraud", (Probe("wss", TM_PORTS, "/"),),
             (W,), in_2020=True, vendor="h.online-metrix.net"),
    # -- native applications -------------------------------------------------
    _new2021("iqiyi.com", 592, "native", _IQIYI, WL, in_2020=True,
             app="iQIYI client"),
    _new2021("qy.net", 7664, "native", _IQIYI, WL, in_2020=True,
             app="iQIYI client"),
    _new2021("qiyi.com", 10966, "native", _IQIYI, WL, in_2020=True,
             app="iQIYI client"),
    _new2021("iqiyipic.com", 12350, "native", _IQIYI, WL, in_2020=True,
             app="iQIYI client"),
    _new2021("ppstream.com", 15581, "native", _IQIYI, WL, in_2020=True,
             app="iQIYI client"),
    _new2021("ppsimg.com", 34989, "native", _IQIYI, WL, in_2020=False,
             app="iQIYI client"),
    _new2021("soliqservis.uz", 44280, "native", _EIMZO, WL, in_2020=False,
             app="E-IMZO"),
    _new2021("nfstar.net", 75083, "native", _THUNDER, WL, in_2020=False,
             app="Thunder"),
    _new2021("9ekk.com", 80108, "native", _THUNDER, WL, in_2020=False,
             app="Thunder"),
    _new2021("somode.com", 87274, "native", _THUNDER, WL, in_2020=False,
             app="Thunder"),
    _new2021("mcgeeandco.com", 82814, "native",
             (Probe("https", (4000,), "/socket.io/?EIO=3"),), WL,
             in_2020=False, app="companion service"),
    _new2021("71.am", 86605, "native", _IQIYI, WL, in_2020=False,
             app="iQIYI client"),
    _new2021("didox.uz", 94270, "native", _EIMZO, WL, in_2020=False,
             app="E-IMZO"),
    _new2021("gnway.com", 96284, "native",
             (Probe("ws", GNWAY_PORTS, "/"),), (W,), in_2020=False,
             app="GNWay client"),
    # -- developer errors -----------------------------------------------------
    _new2021("phonearena.com", 5154, "dev",
             (Probe("http", (1500,), "/floor-domains"),), WL, in_2020=True,
             dev_kind="other"),
    _new2021("madmimi.com", 5331, "dev",
             (Probe("http", (5555,), "/2.1.2/sockjs.min.js"),), (W,),
             in_2020=True, dev_kind="file"),
    _new2021("nursingworld.org", 14951, "dev",
             (Probe("http", (80,), "/~4af7b9/globalassets/images/nurse.jpg"),),
             (W,), in_2020=True, dev_kind="file"),
    _new2021("ums.ac.id", 21280, "dev",
             (Probe("http", (80,), "/ums-baru/wp-content/uploads/banner.jpg"),),
             WL, in_2020=True, dev_kind="file"),
    _new2021("zee.co.ao", 25940, "dev",
             (Probe("http", (80,), "/industrialwp/wp-content/uploads/logo.jpg"),),
             WL, in_2020=False, dev_kind="file"),
    _new2021("raovatnailsalon.com", 37323, "dev",
             (Probe("https", (443,), "/raovatnailsalon/wp-content/uploads/ad.jpg"),),
             WL, in_2020=False, dev_kind="file"),
    _new2021("panduit.com", 42107, "dev",
             (Probe("http", (4502,), "/apps/panduit/clientlibs/main.js"),),
             (W,), in_2020=True, dev_kind="file"),
    _new2021("internetworld.de", 45497, "dev",
             (Probe("https", (443,), "/"),), WL, in_2020=True,
             dev_kind="redirect"),
    _new2021("mcknights.com", 47861, "dev",
             (Probe("https", (9988,), "/livereload.js"),), WL, in_2020=True,
             dev_kind="livereload", calibrated=True),
    _new2021("san-servis.com", 50650, "dev",
             (Probe("http", (80,), "/vina/vina_febris/images/header.png"),),
             WL, in_2020=True, dev_kind="file"),
    _new2021("postfallsonthego.com", 54756, "dev",
             (Probe("http", (80,),
                    "/magazon/magazon-wp/wp-content/uploads/mag.png"),),
             WL, in_2020=False, dev_kind="file"),
    _new2021("wealthcareportal.com", 55755, "dev",
             (Probe("http", (80,), "/NonExistentImage48762.gif"),), WL,
             in_2020=False, dev_kind="file"),
    _new2021("lited.com", 55477, "dev",
             (Probe("http", (11066,), "/getversionjpg?hash=1"),), WL,
             in_2020=True, dev_kind="other", calibrated=True),
    _new2021("workpermit.com", 68872, "dev",
             (Probe("https", (6081,), "/news-ticker.json"),), WL,
             in_2020=True, dev_kind="other"),
    _new2021("ethiopianreporterjobs.co", 75989, "dev",
             (Probe("https", (443,), "/wp-content/uploads/job.png"),), WL,
             in_2020=False, dev_kind="file"),
    _new2021("macroaxis.com", 77974, "dev",
             (Probe("http", (8080,), "/img/icons/search.png"),), WL,
             in_2020=False, dev_kind="file"),
    _new2021("adfontesmedia.com", 83256, "dev",
             (Probe("http", (8888,),
                    "/adfontesmedia/wp-content/uploads/chart.png"),), WL,
             in_2020=False, dev_kind="file"),
    _new2021("charityvillage.com", 84378, "dev",
             (Probe("http", (8888,), "/core/js/api/web-rules"),), WL,
             in_2020=False, dev_kind="other"),
    _new2021("showfx.ro", 90632, "dev",
             (Probe("https", (443,),
                    "/wordpress/x-street/wp-content/uploads/fx.png"),), WL,
             in_2020=False, dev_kind="file"),
    _new2021("xaydungtrangtrinoithat.com", 98402, "dev",
             (Probe("https", (443,), "/wp-content/uploads/noithat.jpg"),), WL,
             in_2020=False, dev_kind="file"),
)


# ---------------------------------------------------------------------------
# Tables 6 and 10 — LAN requesters in the top-100K crawls
# ---------------------------------------------------------------------------

LAN_2020: tuple[LanSeed, ...] = (
    LanSeed("gsis.gr", 4381, "http", "10.193.31.212", 80,
            "/system/files/2020-06/banner.png", ALL, "top2020"),
    LanSeed("farsroid.com", 19523, "http", "10.10.34.35", 80, "/", (W,),
            "top2020", kind="censorship"),
    LanSeed("saddleback.edu", 35262, "https", "10.156.2.50", 443,
            "/favicon.ico", (W,), "top2020"),
    LanSeed("skalvibytte.no", 46972, "http", "10.0.0.200", 80,
            "/wordpress/wp-content/uploads/2020/04/tour.mp4", ALL, "top2020"),
    LanSeed("unib.ac.id", 56325, "http", "192.168.64.160", 80,
            "/wp-content/uploads/2019/10/campus.jpg", ALL, "top2020"),
    LanSeed("adnsolutions.com", 61554, "http", "10.0.20.16", 80,
            "/wp-content/uploads/2018/11/team.jpg", (L,), "top2020",
            delay_s=16.0),
    LanSeed("tra97fn35n5brvxki5sj8x5x34k2t4d67j883fgt.xyz", 65302, "http",
            "10.10.34.35", 80, "/", (M,), "top2020", kind="censorship",
            delay_s=15.0),
    LanSeed("zoom.lk", 73062, "https", "192.168.0.208", 443,
            "/wp_011_test_demos/wp-content/uploads/2017/05/photo.jpg", (M,),
            "top2020"),
    LanSeed("1-movies.ir", 91632, "http", "10.10.34.35", 80, "/", ALL,
            "top2020", kind="censorship"),
)

LAN_2021: tuple[LanSeed, ...] = (
    LanSeed("blogsky.com", 4847, "http", "10.10.34.34", 80, "/", WL,
            "top2021", kind="censorship"),
    LanSeed("jollibeedelivery.qa", 23723, "http", "192.168.8.241", 5000,
            "/MyPhone/c2cinfo", WL, "top2021", kind="other"),
    LanSeed("unib.ac.id", 47356, "https", "192.168.64.160", 443,
            "/wp-content/uploads/2019/10/campus.jpg", (L,), "top2021"),
    LanSeed("bahrain.bh", 61472, "https", "192.168.110.72", 443,
            "/matomo/matomo.js", WL, "top2021"),
    LanSeed("auda.org.au", 69494, "https", "10.50.1.242", 8450,
            "/libraries/slick/slick/loader.gif", WL, "top2021"),
    LanSeed("mre.gov.br", 73274, "https", "192.168.33.187", 443,
            "/modules/mod_acontece/assets/news.css", (L,), "top2021"),
    LanSeed("haiwaihai.cn", 95595, "http", "172.16.0.4", 1117,
            "/UpLoadFile/20160801/photo.jpg", WL, "top2021"),
    LanSeed("techshout.com", 96554, "https", "192.168.0.120", 443,
            "/wp_011_gadgets/wp-content/uploads/gadget.jpg", WL, "top2021"),
)


# ---------------------------------------------------------------------------
# Tables 5W and 6W — WebRTC local-address leakage (calibrated extension)
# ---------------------------------------------------------------------------

#: Sites seeded with an RTCPeerConnection behaviour when a study runs with
#: ``--webrtc-policy``.  Every domain already carries an XHR/WS behaviour in
#: the 2020 crawl, so enabling the channel never moves a domain between the
#: active and filler sets — the Table 1 failure draw is identical with the
#: channel on or off.
WEBRTC_SEEDS: tuple[WebRtcSeed, ...] = (
    # Loopback STUN peers → Table 5W (localhost), both eras.
    WebRtcSeed("ebay.com", (W,), peers=(("127.0.0.1", 3478),)),
    WebRtcSeed("hola.org", ALL,
               peers=(("127.0.0.1", 6880), ("127.0.0.1", 6881))),
    WebRtcSeed("faceit.com", ALL, peers=(("127.0.0.1", 28337),)),
    # RFC 1918 STUN peers → Table 6W (LAN), both eras.
    WebRtcSeed("gsis.gr", ALL, peers=(("10.193.31.212", 3478),)),
    WebRtcSeed("wowreality.info", ALL,
               peers=(("192.168.0.1", 3478), ("192.168.0.254", 3478))),
    # Gather-only: leaks the raw host candidate pre-M74, nothing after.
    WebRtcSeed("fidelity.com", (W,)),
    WebRtcSeed("unib.ac.id", ALL),
)


# ---------------------------------------------------------------------------
# Tables 8 and 9 — malicious webpages with local activity
# ---------------------------------------------------------------------------

_TM_CLONE_DOMAINS: tuple[str, ...] = (
    "ebaybuy.com.buying-item-guest.com",
    "100-25-26-254.cprapid.com",
    "advancedlearningdynamics.com",
    "smarturl.it",
    "customer-ebay.com",
    "citibank.gulajawajahe.my.id",
    "www.citibank.gulajawajahe.my.id",
    "o2-billing.org",
    "samarasecrets.com",
    "sic-week.000webhostapp.com",
    "signin01.kauf-eday.de",
    "hotelmontiazzurri.com",
    "mahdistock.com",
    "adesignsovast.com",
)

#: Four clone domains reconstructed to match Figure 4b's 252 Windows WSS
#: requests (= 18 clone sites x 14 ports).
_TM_CLONE_CALIBRATED: tuple[str, ...] = (
    "secure-ebay-signin.com",
    "ebay-account-verify.net",
    "citi-online-secure.com",
    "fidelity-login-check.com",
)


def _wp_malware_oses(index: int) -> tuple[str, ...]:
    """OS availability of the i-th compromised-WordPress malware site.

    The paper lists these 79 domains only in aggregate; the per-OS pattern
    (64 on all three OSes, 1 Windows+Linux, 10 Linux-only, 4 Mac-only) is
    calibrated so Table 2's malware marginals (W 72 / L 83 / M 75) hold
    after adding the nine individually named sites.
    """
    if index < 64:
        return ALL
    if index < 65:
        return WL
    if index < 75:
        return (L,)
    return (M,)


def _wp_malware_sites() -> list[MaliciousSeed]:
    sites = []
    for index in range(79):
        domain = f"blog{index:02d}.compromised-wp.net"
        sites.append(
            MaliciousSeed(
                domain=domain, category="malware",
                probes=(Probe(
                    "http", (80,),
                    f"/blog/wp-content/uploads/2020/05/img{index:02d}.jpg",
                ),),
                oses=_wp_malware_oses(index), kind="dev-file",
                calibrated=True,
            )
        )
    return sites


MALICIOUS_LOCALHOST: tuple[MaliciousSeed, ...] = tuple(
    _wp_malware_sites()
    + [
        MaliciousSeed("acffiorentina.ru", "malware",
                      (Probe("http", (8080,), "/socket.io/socket.io.js"),),
                      ALL, "dev-file"),
        MaliciousSeed("elilaifs.cn", "malware", _THUNDER, ALL, "native",
                      app="Thunder"),
        MaliciousSeed("boatattorney.com", "malware",
                      (Probe("https", (35729,), "/livereload.js"),), WL,
                      "dev-livereload"),
        MaliciousSeed("jdih.purworejokab.go.id", "malware",
                      (Probe("http", (80,), "/website-bphn-bk/logo.png"),),
                      ALL, "dev-file"),
        MaliciousSeed("metolegal.com", "malware",
                      (Probe("http", (80,), "/metolegal/wp-includes/js/jquery.js"),),
                      ALL, "dev-file"),
        MaliciousSeed("ppdb.smp1sbw.sch.id", "malware",
                      (Probe("http", (80,), "/ppdbv3/ro-error/err.css"),),
                      (L,), "dev-file"),
        MaliciousSeed("scopesports.net", "malware",
                      (Probe("http", (80,), "/scope/xpertspanel/panel.js"),),
                      (M,), "dev-file"),
        MaliciousSeed("tonyhealy.co.za", "malware",
                      (Probe("http", (80,), "/"),), ALL, "dev-redirect"),
        MaliciousSeed("oceanos.com.co", "malware",
                      (Probe("http", (80,), "/wp-oceanos/banner.jpg"),), ALL,
                      "dev-file"),
    ]
    + [
        MaliciousSeed(domain, "phishing", (Probe("wss", TM_PORTS, "/"),),
                      (W,), "threatmetrix-clone")
        for domain in _TM_CLONE_DOMAINS
    ]
    + [
        MaliciousSeed(domain, "phishing", (Probe("wss", TM_PORTS, "/"),),
                      (W,), "threatmetrix-clone", calibrated=True)
        for domain in _TM_CLONE_CALIBRATED
    ]
    + [
        MaliciousSeed("ag4.gartenbau-olching.de", "phishing",
                      (Probe("http", (80,), "/"),), WL, "dev-redirect"),
        MaliciousSeed("grp02.id.rakutan-co-jpr.buzz", "phishing",
                      (Probe("http", (80,), "/"),), WL, "dev-redirect"),
    ]
    + [
        MaliciousSeed(f"rakuten.co.jp.id{index}.icu", "phishing",
                      (Probe("http", (80,), "/"),), (L,), "dev-redirect")
        for index in range(1, 9)
    ]
    + [
        MaliciousSeed("www.ip.rakuten.1ex.info", "phishing",
                      (Probe("http", (80,), "/"),), (L,), "dev-redirect"),
        MaliciousSeed("rakuteni.co.jp.ai12.info", "phishing",
                      (Probe("http", (80,), "/"),), (L,), "dev-redirect"),
        MaliciousSeed("www.ip.rakuten.rbimomro.icu", "phishing",
                      (Probe("http", (80,), "/"),), (L,), "dev-redirect"),
    ]
    + [
        MaliciousSeed(f"amazon.co.jp.sign{index:02d}.xyz", "phishing",
                      (Probe("http", (80,), "/robots.txt"),), (L,),
                      "dev-file")
        for index in range(12)
    ]
    + [
        MaliciousSeed("elmagra.net", "phishing",
                      (Probe("http", (80,), "/dashboard-v1/app.js"),), WL,
                      "dev-file"),
        MaliciousSeed("etoro-invest.org", "phishing",
                      (Probe("http", (80,), "/StudentForum//index.html"),),
                      ALL, "dev-file"),
        MaliciousSeed("survivalhabits.com", "phishing",
                      (Probe("http", (44056,), "/NonExistentImage33090.gif"),),
                      LM, "dev-file", calibrated=True),
        MaliciousSeed("evolution-postepay.com", "phishing",
                      (Probe("https", (5140,), "/NonExistentImage19258.gif"),),
                      LM, "dev-file", calibrated=True),
        MaliciousSeed("postepaynuovo.com", "phishing",
                      (Probe("https", (62389,), "/NonExistentImage55353.gif"),),
                      ALL, "dev-file"),
        MaliciousSeed("sbloccareposte.com", "phishing",
                      (Probe("http", (44938,), "/NonExistentImage37362.gif"),),
                      (W,), "dev-file"),
        MaliciousSeed("verificapostepay.com", "phishing",
                      (Probe("https", (49622,), "/NonExistentImage20705.gif"),),
                      LM, "dev-file", calibrated=True),
        MaliciousSeed("aladdinstar.com", "phishing",
                      (Probe("https", (8443,), "/images/star.png"),), ALL,
                      "dev-file"),
    ]
    + [
        # Calibrated filler so the phishing marginals (W 25 / L 41 / M 9,
        # Table 2) hold: six Linux-only plus three Linux+Mac dev-error
        # phishing sites.
        MaliciousSeed(f"phish-shop-{index}.com", "phishing",
                      (Probe("http", (80,),
                             f"/shop/wp-content/uploads/item{index}.jpg"),),
                      (L,) if index < 6 else LM, "dev-file", calibrated=True)
        for index in range(9)
    ]
)

MALICIOUS_LAN: tuple[LanSeed, ...] = (
    LanSeed("test.laitspa.it", None, "http", "10.2.70.15", 80, "/style.css",
            ALL, "malicious", category="malware"),
    LanSeed("wangzonghang.cn", None, "http", "192.168.0.226", 1080,
            "/wp-content/themes/shop/main.css", WL, "malicious",
            category="malware"),
    LanSeed("crasar.org", None, "http", "192.168.1.8", 80,
            "/crasar/wp-content/themes/news.css", ALL, "malicious",
            category="malware"),
    LanSeed("www.crasar.org", None, "http", "192.168.1.8", 80,
            "/crasar/wp-content/themes/news.css", ALL, "malicious",
            category="malware"),
    LanSeed("mihanpajooh.com", None, "http", "10.10.34.35", 80, "/", WM,
            "malicious", category="malware", kind="censorship",
            calibrated=True),
    LanSeed("ahs.si", None, "https", "192.168.33.10", 443,
            "/wp-content/uploads/2019/12/logo.png", ALL, "malicious",
            category="malware", calibrated=True),
    LanSeed("fixusgroup.com", None, "https", "172.26.6.230", 443,
            "/wp-content/uploads/2020/02/icon.png", ALL, "malicious",
            category="malware"),
    LanSeed("zoom.lk", None, "http", "192.168.0.208", 80,
            "/wp_011_test_demos/wp-content/uploads/2017/05/photo.jpg", ALL,
            "malicious", category="malware"),
    LanSeed("001tel.com", None, "https", "172.16.205.110", 443,
            "/usershare/player.js", ALL, "malicious", category="abuse"),
)


# ---------------------------------------------------------------------------
# Population size constants (section 3 / Tables 1 and 2)
# ---------------------------------------------------------------------------

TOP_LIST_SIZE = 100_000

#: Malicious category sizes (Table 2); the remainder up to Table 1's
#: 146,181 crawled URLs is uncategorised.
MALWARE_COUNT = 103_541
ABUSE_COUNT = 24_958
PHISHING_COUNT = 16_426
MALICIOUS_TOTAL = 146_181
UNCATEGORIZED_COUNT = (
    MALICIOUS_TOTAL - MALWARE_COUNT - ABUSE_COUNT - PHISHING_COUNT
)

#: Table 1 crawl outcomes: (crawl, os) -> (successes, {error: count}).
TABLE1_TARGETS: dict[tuple[str, str], tuple[int, dict[str, int]]] = {
    ("top2020", W): (89_744, {"NAME_NOT_RESOLVED": 9_179, "CONN_REFUSED": 355,
                              "CONN_RESET": 248, "CERT_CN_INVALID": 236,
                              "Others": 238}),
    ("top2020", M): (89_819, {"NAME_NOT_RESOLVED": 9_001, "CONN_REFUSED": 345,
                              "CONN_RESET": 193, "CERT_CN_INVALID": 226,
                              "Others": 416}),
    ("top2020", L): (90_175, {"NAME_NOT_RESOLVED": 8_612, "CONN_REFUSED": 335,
                              "CONN_RESET": 247, "CERT_CN_INVALID": 235,
                              "Others": 396}),
    ("top2021", W): (91_765, {"NAME_NOT_RESOLVED": 7_287, "CONN_REFUSED": 239,
                              "CONN_RESET": 230, "CERT_CN_INVALID": 251,
                              "Others": 228}),
    ("top2021", L): (91_719, {"NAME_NOT_RESOLVED": 7_309, "CONN_REFUSED": 272,
                              "CONN_RESET": 126, "CERT_CN_INVALID": 248,
                              "Others": 326}),
    ("malicious", W): (100_317, {"NAME_NOT_RESOLVED": 40_715,
                                 "CONN_REFUSED": 1_475, "CONN_RESET": 530,
                                 "CERT_CN_INVALID": 1_341, "Others": 1_803}),
    ("malicious", M): (103_154, {"NAME_NOT_RESOLVED": 37_310,
                                 "CONN_REFUSED": 1_488, "CONN_RESET": 523,
                                 "CERT_CN_INVALID": 1_314, "Others": 2_392}),
    ("malicious", L): (106_078, {"NAME_NOT_RESOLVED": 34_723,
                                 "CONN_REFUSED": 1_346, "CONN_RESET": 521,
                                 "CERT_CN_INVALID": 1_313, "Others": 2_200}),
}

#: Per-category successful-load counts for the malicious crawls, derived
#: from Table 2's success rates with the malware share absorbing rounding
#: so each crawl's total matches Table 1 exactly (DESIGN.md §6).
MALICIOUS_CATEGORY_SUCCESSES: dict[str, dict[str, int]] = {
    W: {"abuse": 23_710, "phishing": 11_991,
        "uncategorized": UNCATEGORIZED_COUNT,
        "malware": 100_317 - 23_710 - 11_991 - UNCATEGORIZED_COUNT},
    M: {"abuse": 23_211, "phishing": 11_334,
        "uncategorized": UNCATEGORIZED_COUNT,
        "malware": 103_154 - 23_211 - 11_334 - UNCATEGORIZED_COUNT},
    L: {"abuse": 24_209, "phishing": 12_484,
        "uncategorized": UNCATEGORIZED_COUNT,
        "malware": 106_078 - 24_209 - 12_484 - UNCATEGORIZED_COUNT},
}


def localhost_seeds_2020() -> tuple[LocalhostSeed, ...]:
    """All 2020 localhost-active seeds (should number 107)."""
    return LOCALHOST_2020


def localhost_seeds_2021() -> list[LocalhostSeed]:
    """All seeds active in the 2021 crawl (continuing + new; 82 sites)."""
    continuing = [s for s in LOCALHOST_2020 if s.oses_2021]
    return continuing + [s for s in NEW_2021 if s.oses_2021]


def all_localhost_seeds() -> list[LocalhostSeed]:
    """Every top-list localhost seed, 2020 and 2021."""
    return list(LOCALHOST_2020) + list(NEW_2021)
