"""Population builders: seeds → crawlable website populations.

Turns the ground-truth rows of :mod:`repro.web.seeds` into full measurement
populations:

* ``top2020`` / ``top2021`` — Tranco-style 100K lists with the seeded
  behaviour-carrying sites at their paper ranks and inert filler elsewhere;
* ``malicious`` — the 146K blocklist population across malware / abuse /
  phishing / uncategorised, with the seeded active sites embedded.

Crawl failures (Table 1) are injected here, deterministically: a seeded
pseudo-random subset of *filler* domains per (crawl, OS) is assigned the
exact per-error-type counts the paper reports.  Seeded behaviour-carrying
sites always load (they were, by construction, observed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..browser.errors import OTHER_ERROR_POOL, NetError
from ..browser.page import PageScript
from ..browser.useragent import ALL_OSES, LINUX, WINDOWS
from ..toplists.tranco import TrancoList, build_top_list
from . import seeds as S
from .behaviors import (
    DirectLocalFetch,
    NativeAppProbe,
    PortScanBehavior,
    RedirectToLocalBehavior,
    ResourceFetchBehavior,
    WebRtcLeakBehavior,
)
from .website import Website

#: Delay overrides (seconds) for specific sites, calibrating the tails of
#: the Figure 5a timing CDFs (Linux max 17 s, Mac max 14 s).
_DELAY_OVERRIDES_S: dict[str, float] = {
    "aau.edu.et": 16.5,
    "xaipe.edu.cn": 13.8,
}


def _stable_hash(text: str) -> int:
    """FNV-1a over the domain: stable across runs and processes."""
    digest = 2166136261
    for ch in text:
        digest = ((digest ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return digest


def _delay_ms(domain: str, reason: str) -> float:
    """First-local-request delay for a site, by behaviour class.

    The spreads are calibrated to Figures 5–7: the anti-abuse scanners
    fire late (4–17 s, median ≈10 s — they wait for page quiescence),
    developer-error fetches fire during load (0.5–5 s), native-app probes
    and the unknown pollers fall in between.
    """
    override = _DELAY_OVERRIDES_S.get(domain)
    if override is not None:
        return override * 1000.0
    h = _stable_hash(domain)
    if reason in ("fraud", "bot"):
        return 10_000.0 + h % 7001
    if reason == "native":
        return 1000.0 + h % 7001
    if reason == "dev":
        return 500.0 + h % 4501
    return 2000.0 + h % 10001  # unknown


def _lan_delay_ms(seed: S.LanSeed) -> float:
    if seed.delay_s is not None:
        return seed.delay_s * 1000.0
    return 1000.0 + _stable_hash(seed.domain) % 4001


@dataclass(slots=True)
class CrawlPopulation:
    """A complete population for one measurement campaign."""

    name: str
    websites: list[Website]
    oses: tuple[str, ...]
    top_list: TrancoList | None = None
    by_domain: dict[str, Website] = field(default_factory=dict)
    #: Domains seeded with local-traffic behaviour (the "interesting" set).
    active_domains: set[str] = field(default_factory=set)
    #: WebRTC policy era the population was built with ("pre-m74" |
    #: "mdns"), or None when the WebRTC channel is disabled.
    webrtc_policy: str | None = None

    def __post_init__(self) -> None:
        if not self.by_domain:
            self.by_domain = {w.domain: w for w in self.websites}

    def __len__(self) -> int:
        return len(self.websites)

    def website(self, domain: str) -> Website:
        return self.by_domain[domain]


# ---------------------------------------------------------------------------
# Behaviour construction
# ---------------------------------------------------------------------------

def _localhost_behaviors(
    seed: S.LocalhostSeed, oses: tuple[str, ...]
) -> list[PageScript]:
    """Instantiate the behaviours for one localhost seed, active on
    ``oses`` (which crawl-year OS flags to use is the caller's choice)."""
    active = frozenset(oses)
    delay = _delay_ms(seed.domain, seed.reason)
    scripts: list[PageScript] = []
    if seed.reason == "fraud":
        vendor = seed.vendor or "h.online-metrix.net"
        scripts.append(
            PortScanBehavior(
                name=f"threatmetrix@{vendor}",
                scheme="wss",
                ports=S.TM_PORTS,
                active_oses=active,
                delay_ms=delay,
                telemetry_url=f"https://{vendor}/fp/clear.png",
            )
        )
    elif seed.reason == "bot":
        scripts.append(
            PortScanBehavior(
                name="bigip-asm:/TSPD",
                scheme="http",
                ports=S.ASM_PORTS,
                active_oses=active,
                delay_ms=delay,
            )
        )
    elif seed.reason in ("native", "unknown"):
        for probe in seed.probes:
            scripts.append(
                NativeAppProbe(
                    name=seed.app or f"{seed.reason}:{seed.domain}",
                    scheme=probe.scheme,
                    ports=probe.ports,
                    path=probe.path,
                    active_oses=active,
                    delay_ms=delay,
                    host="localhost"
                    if probe.scheme in ("ws", "wss")
                    else "127.0.0.1",
                )
            )
    elif seed.reason == "dev":
        for probe in seed.probes:
            if seed.dev_kind == "redirect":
                scripts.append(
                    RedirectToLocalBehavior(
                        name=f"dev-redirect:{seed.domain}",
                        public_url=f"{probe.scheme}://{seed.domain}/home",
                        local_url=(
                            f"{probe.scheme}://127.0.0.1:{probe.ports[0]}"
                            f"{probe.path}"
                        ),
                        active_oses=active,
                        delay_ms=delay,
                    )
                )
            else:
                host = "127.0.0.1" if seed.dev_kind == "file" else "localhost"
                scripts.append(
                    ResourceFetchBehavior(
                        name=f"dev-{seed.dev_kind}:{seed.domain}",
                        urls=tuple(
                            f"{probe.scheme}://{host}:{port}{probe.path}"
                            for port in probe.ports
                        ),
                        active_oses=active,
                        delay_ms=delay,
                    )
                )
    else:
        raise ValueError(f"unknown seed reason {seed.reason!r}")
    return scripts


def _webrtc_behavior(seed: S.WebRtcSeed, policy: str) -> PageScript:
    """Instantiate the RTCPeerConnection behaviour for one WebRTC seed."""
    if seed.delay_s is not None:
        delay = seed.delay_s * 1000.0
    else:
        delay = 1000.0 + _stable_hash(f"webrtc:{seed.domain}") % 3001
    return WebRtcLeakBehavior(
        name=f"webrtc:{seed.domain}",
        active_oses=frozenset(seed.oses),
        policy=policy,
        stun_peers=seed.peers,
        gather_srflx=seed.gather_srflx,
        delay_ms=delay,
    )


def _lan_behavior(seed: S.LanSeed) -> PageScript:
    url = f"{seed.scheme}://{seed.ip}:{seed.port}{seed.path}"
    if seed.kind == "censorship":
        # Censorship injection manifests as an iframe sourced directly at
        # the blackhole LAN address (Appendix C).
        return DirectLocalFetch(
            name=f"censorship-iframe:{seed.domain}",
            local_url=url,
            active_oses=frozenset(seed.oses),
            delay_ms=_lan_delay_ms(seed),
        )
    return ResourceFetchBehavior(
        name=f"lan-{seed.kind}:{seed.domain}",
        urls=(url,),
        active_oses=frozenset(seed.oses),
        delay_ms=_lan_delay_ms(seed),
    )


def _malicious_behaviors(seed: S.MaliciousSeed) -> list[PageScript]:
    active = frozenset(seed.oses)
    delay = _delay_ms(seed.domain, _malicious_reason(seed.kind))
    scripts: list[PageScript] = []
    for probe in seed.probes:
        if seed.kind == "threatmetrix-clone":
            scripts.append(
                PortScanBehavior(
                    name=f"threatmetrix@{seed.domain} (cloned)",
                    scheme=probe.scheme,
                    ports=probe.ports,
                    active_oses=active,
                    delay_ms=delay,
                    telemetry_url="https://h.online-metrix.net/fp/clear.png",
                )
            )
        elif seed.kind == "native":
            scripts.append(
                NativeAppProbe(
                    name=seed.app or seed.domain,
                    scheme=probe.scheme,
                    ports=probe.ports,
                    path=probe.path,
                    active_oses=active,
                    delay_ms=delay,
                )
            )
        elif seed.kind == "dev-redirect":
            scripts.append(
                RedirectToLocalBehavior(
                    name=f"dev-redirect:{seed.domain}",
                    public_url=f"{probe.scheme}://{seed.domain}/home",
                    local_url=(
                        f"{probe.scheme}://127.0.0.1:{probe.ports[0]}{probe.path}"
                    ),
                    active_oses=active,
                    delay_ms=delay,
                )
            )
        else:  # dev-file / dev-livereload
            host = "localhost" if seed.kind == "dev-livereload" else "127.0.0.1"
            scripts.append(
                ResourceFetchBehavior(
                    name=f"{seed.kind}:{seed.domain}",
                    urls=tuple(
                        f"{probe.scheme}://{host}:{port}{probe.path}"
                        for port in probe.ports
                    ),
                    active_oses=active,
                    delay_ms=delay,
                )
            )
    return scripts


def _malicious_reason(kind: str) -> str:
    if kind == "threatmetrix-clone":
        return "fraud"
    if kind == "native":
        return "native"
    return "dev"


def _public_noise(domain: str) -> list[str]:
    """A couple of ordinary third-party fetches for realism."""
    return [
        f"https://cdn.{domain}/static/app.js",
        "https://fonts.example-cdn.com/roboto.woff2",
    ]


# ---------------------------------------------------------------------------
# Failure injection
# ---------------------------------------------------------------------------

def _assign_failures(
    websites: list[Website],
    eligible: list[Website],
    os_name: str,
    error_counts: dict[str, int],
    seed_key: str,
) -> None:
    """Inject per-OS load failures with exact per-type counts.

    ``eligible`` lists the filler sites that may fail; the draw is a
    seeded sample so re-building the population reproduces the same
    failing set.
    """
    del websites  # failures mutate eligible entries in place
    total_failures = sum(error_counts.values())
    if total_failures > len(eligible):
        raise ValueError(
            f"{seed_key}: {total_failures} failures requested but only "
            f"{len(eligible)} eligible sites"
        )
    rng = random.Random(seed_key)
    failing = rng.sample(eligible, total_failures)
    cursor = 0
    others_cycle = 0
    for bucket, count in error_counts.items():
        for _ in range(count):
            site = failing[cursor]
            cursor += 1
            if bucket == "NAME_NOT_RESOLVED":
                error = NetError.ERR_NAME_NOT_RESOLVED
            elif bucket == "CONN_REFUSED":
                error = NetError.ERR_CONNECTION_REFUSED
            elif bucket == "CONN_RESET":
                error = NetError.ERR_CONNECTION_RESET
            elif bucket == "CERT_CN_INVALID":
                error = NetError.ERR_CERT_COMMON_NAME_INVALID
            else:
                error = OTHER_ERROR_POOL[others_cycle % len(OTHER_ERROR_POOL)]
                others_cycle += 1
            site.load_errors[os_name] = error


def _scaled_counts(counts: dict[str, int], scale: float) -> dict[str, int]:
    if scale >= 1.0:
        return dict(counts)
    return {bucket: int(count * scale) for bucket, count in counts.items()}


# ---------------------------------------------------------------------------
# Top-100K populations
# ---------------------------------------------------------------------------

def _top_seed_ranks(year: int) -> dict[str, int]:
    """domain -> rank for every seed present in the given year's list."""
    ranks: dict[str, int] = {}
    for seed in S.LOCALHOST_2020:
        if year == 2020 and seed.in_2020_list:
            ranks[seed.domain] = seed.rank
        elif year == 2021 and seed.in_2021_list:
            ranks[seed.domain] = seed.rank_2021 or seed.rank
    for seed in S.NEW_2021:
        if year == 2020 and seed.in_2020_list:
            ranks.setdefault(seed.domain, seed.rank)
        elif year == 2021:
            ranks.setdefault(seed.domain, seed.rank_2021 or seed.rank)
    lan_seeds = S.LAN_2020 if year == 2020 else S.LAN_2021
    for lan in lan_seeds:
        if lan.rank is not None:
            ranks.setdefault(lan.domain, lan.rank)
    return ranks


def build_top_population(
    year: int,
    *,
    scale: float = 1.0,
    with_failures: bool = True,
    base_list: TrancoList | None = None,
    login_page_scanners: bool = True,
    webrtc_policy: str | None = None,
) -> CrawlPopulation:
    """Build the ``top2020`` or ``top2021`` population.

    ``scale`` < 1 shrinks the *filler* while keeping every seeded site —
    fast enough for unit tests, with failure counts scaled to match.
    ``base_list`` may pass the 2020 list when building 2021, to model the
    ~75% snapshot overlap.  ``login_page_scanners`` seeds the §3.3
    extension sites whose ThreatMetrix scan lives on their /signin page;
    they are invisible to the default landing-page crawl, so every paper
    table is unaffected unless ``include_internal`` crawling is enabled.
    ``webrtc_policy`` (``"pre-m74"`` | ``"mdns"``) additionally arms the
    WebRTC seeds with an RTCPeerConnection behaviour of that era; the
    default None leaves every existing output byte-identical.  WebRTC
    seeds all sit on domains that are already behaviour-active, so the
    filler set — and therefore the Table 1 failure draw — is the same
    with the channel on or off.
    """
    if year not in (2020, 2021):
        raise ValueError("year must be 2020 or 2021")
    if webrtc_policy is not None:
        from ..webrtc.ice import POLICIES

        if webrtc_policy not in POLICIES:
            raise ValueError(
                f"unknown WebRTC policy {webrtc_policy!r} (known: {POLICIES})"
            )
    crawl = f"top{year}"
    oses = ALL_OSES if year == 2020 else (WINDOWS, LINUX)
    size = max(int(S.TOP_LIST_SIZE * scale), 1)
    seed_ranks = _top_seed_ranks(year)
    login_by_domain: dict[str, "LoginPageScanner"] = {}
    if login_page_scanners:
        from .internal import LOGIN_PAGE_SCANNERS, LoginPageScanner

        for scanner in LOGIN_PAGE_SCANNERS:
            login_by_domain[scanner.domain] = scanner
            seed_ranks.setdefault(scanner.domain, scanner.rank)
    if scale < 1.0:
        # Compress seed ranks into the shrunken list while preserving order.
        ordered = sorted(seed_ranks.items(), key=lambda kv: kv[1])
        seed_ranks = {
            domain: max(1, int(rank * scale)) for domain, rank in ordered
        }
        size = max(size, len(seed_ranks) + 1)

    top_list = build_top_list(
        crawl,
        size,
        seed_ranks,
        filler_generation="t20" if year == 2020 else "t21",
        reuse_filler_from=base_list,
    )

    localhost_by_domain: dict[str, S.LocalhostSeed] = {}
    for seed in list(S.LOCALHOST_2020) + list(S.NEW_2021):
        localhost_by_domain.setdefault(seed.domain, seed)
    lan_by_domain = {
        lan.domain: lan for lan in (S.LAN_2020 if year == 2020 else S.LAN_2021)
    }
    webrtc_by_domain: dict[str, S.WebRtcSeed] = (
        {seed.domain: seed for seed in S.WEBRTC_SEEDS}
        if webrtc_policy is not None
        else {}
    )

    websites: list[Website] = []
    active: set[str] = set()
    filler: list[Website] = []
    for entry in top_list:
        behaviors: list[PageScript] = []
        seed = localhost_by_domain.get(entry.domain)
        if seed is not None:
            seed_oses = seed.oses_2020 if year == 2020 else seed.oses_2021
            if seed_oses:
                behaviors.extend(_localhost_behaviors(seed, seed_oses))
        lan = lan_by_domain.get(entry.domain)
        if lan is not None:
            behaviors.append(_lan_behavior(lan))
        webrtc = webrtc_by_domain.get(entry.domain)
        if webrtc is not None and behaviors:
            # Only armed on already-active domains: a WebRTC seed on an
            # otherwise-inert domain would shrink the filler set and
            # reshuffle the seeded Table 1 failure draw.
            behaviors.append(_webrtc_behavior(webrtc, webrtc_policy))
        internal_pages: dict[str, list[PageScript]] = {}
        login = login_by_domain.get(entry.domain)
        if login is not None:
            from .internal import login_scan_behavior

            internal_pages[login.login_path] = [login_scan_behavior(login)]
        site = Website(
            domain=entry.domain,
            rank=entry.rank,
            https=True,
            behaviors=behaviors,
            internal_pages=internal_pages,
            resources=_public_noise(entry.domain)
            if behaviors or internal_pages
            else [],
            calibrated=bool(seed and seed.calibrated)
            or bool(lan and lan.calibrated)
            or login is not None,
        )
        websites.append(site)
        if behaviors or internal_pages:
            active.add(entry.domain)
        else:
            filler.append(site)

    if with_failures:
        for os_name in oses:
            targets = S.TABLE1_TARGETS.get((crawl, os_name))
            if targets is None:
                continue
            _, error_counts = targets
            _assign_failures(
                websites,
                filler,
                os_name,
                _scaled_counts(error_counts, scale),
                seed_key=f"{crawl}:{os_name}",
            )

    return CrawlPopulation(
        name=crawl,
        websites=websites,
        oses=oses,
        top_list=top_list,
        active_domains=active,
        webrtc_policy=webrtc_policy,
    )


# ---------------------------------------------------------------------------
# Malicious population
# ---------------------------------------------------------------------------

_CATEGORY_TOTALS = {
    "malware": S.MALWARE_COUNT,
    "abuse": S.ABUSE_COUNT,
    "phishing": S.PHISHING_COUNT,
    "uncategorized": S.UNCATEGORIZED_COUNT,
}


def build_malicious_population(
    *, scale: float = 1.0, with_failures: bool = True
) -> CrawlPopulation:
    """Build the blocklist-derived malicious population (all three OSes)."""
    localhost_by_domain = {m.domain: m for m in S.MALICIOUS_LOCALHOST}
    lan_by_domain = {lan.domain: lan for lan in S.MALICIOUS_LAN}

    websites: list[Website] = []
    active: set[str] = set()
    filler_by_category: dict[str, list[Website]] = {
        category: [] for category in _CATEGORY_TOTALS
    }

    seeded_per_category: dict[str, int] = {c: 0 for c in _CATEGORY_TOTALS}
    for domain in set(localhost_by_domain) | set(lan_by_domain):
        seed = localhost_by_domain.get(domain)
        lan = lan_by_domain.get(domain)
        category = seed.category if seed else lan.category  # type: ignore[union-attr]
        behaviors: list[PageScript] = []
        if seed is not None:
            behaviors.extend(_malicious_behaviors(seed))
        if lan is not None:
            behaviors.append(_lan_behavior(lan))
        websites.append(
            Website(
                domain=domain,
                category=category,
                https=False,
                behaviors=behaviors,
                resources=_public_noise(domain),
                calibrated=bool(seed and seed.calibrated)
                or bool(lan and lan.calibrated),
            )
        )
        active.add(domain)
        seeded_per_category[category] = seeded_per_category.get(category, 0) + 1

    for category, total in _CATEGORY_TOTALS.items():
        filler_count = max(int(total * scale) - seeded_per_category[category], 0)
        for index in range(filler_count):
            site = Website(
                domain=f"{category[:5]}{index:06d}.blocklisted.example",
                category=category,
                https=False,
            )
            websites.append(site)
            filler_by_category[category].append(site)

    if with_failures:
        for os_name in ALL_OSES:
            _, error_counts = S.TABLE1_TARGETS[("malicious", os_name)]
            type_total = sum(error_counts.values())
            # Per-category failure counts come from Table 2's success
            # rates; error types are then drawn proportionally from
            # Table 1's per-type totals within each category.
            remaining_types = {
                bucket: int(count * scale) for bucket, count in error_counts.items()
            }
            categories = ["malware", "abuse", "phishing", "uncategorized"]
            for position, category in enumerate(categories):
                total = _CATEGORY_TOTALS[category]
                successes = S.MALICIOUS_CATEGORY_SUCCESSES[os_name].get(
                    category, total
                )
                failures = int((total - successes) * scale)
                failures = min(failures, len(filler_by_category[category]))
                if failures <= 0:
                    continue
                if position == len(categories) - 1:
                    share = dict(remaining_types)
                else:
                    share = {
                        bucket: min(
                            int(round(count * failures / max(type_total, 1))),
                            remaining_types[bucket],
                        )
                        for bucket, count in error_counts.items()
                    }
                # Keep the per-category total exact by topping up the
                # dominant DNS bucket.
                drift = failures - sum(share.values())
                share["NAME_NOT_RESOLVED"] = max(
                    share.get("NAME_NOT_RESOLVED", 0) + drift, 0
                )
                for bucket, used in share.items():
                    remaining_types[bucket] = max(
                        remaining_types.get(bucket, 0) - used, 0
                    )
                _assign_failures(
                    websites,
                    filler_by_category[category],
                    os_name,
                    share,
                    seed_key=f"malicious:{os_name}:{category}",
                )

    return CrawlPopulation(
        name="malicious",
        websites=websites,
        oses=ALL_OSES,
        active_domains=active,
    )
