"""Simulated home networks with IoT devices exposing HTTP interfaces.

Substrate for the attack scenario the paper looked for but did not find
(section 2.1, Acar et al.): webpages discovering and interacting with
LAN devices.  A :class:`HomeNetwork` places devices at RFC1918 addresses
and installs their HTTP interfaces into a browser-visible service table,
so a (hypothetical) web-based LAN sweep has something real to find — and
so defense evaluations can measure what such a sweep would learn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..browser.network import LocalServiceTable

#: Device catalogue: (kind, default port, characteristic HTTP path).
DEVICE_CATALOG: dict[str, tuple[int, str]] = {
    "router": (80, "/cgi-bin/luci"),
    "camera": (80, "/onvif/device_service"),
    "printer": (80, "/hp/device/info"),
    "smart-tv": (8008, "/ssdp/device-desc.xml"),
    "speaker": (1400, "/xml/device_description.xml"),
    "nas": (5000, "/webman/index.cgi"),
    "thermostat": (80, "/sys/info"),
}


@dataclass(frozen=True, slots=True)
class IoTDevice:
    """One LAN device with an exposed HTTP interface."""

    kind: str
    address: str
    port: int
    probe_path: str

    @classmethod
    def of_kind(cls, kind: str, address: str) -> "IoTDevice":
        try:
            port, path = DEVICE_CATALOG[kind]
        except KeyError:
            raise ValueError(f"unknown device kind {kind!r}") from None
        return cls(kind=kind, address=address, port=port, probe_path=path)

    @property
    def url(self) -> str:
        return f"http://{self.address}:{self.port}{self.probe_path}"


@dataclass(slots=True)
class HomeNetwork:
    """A user's LAN: a /24 with a router and some devices."""

    subnet: str = "192.168.1"
    devices: list[IoTDevice] = field(default_factory=list)

    def add_device(self, kind: str, host_octet: int) -> IoTDevice:
        if not 1 <= host_octet <= 254:
            raise ValueError("host octet must be in [1, 254]")
        address = f"{self.subnet}.{host_octet}"
        if any(d.address == address for d in self.devices):
            raise ValueError(f"address {address} already occupied")
        device = IoTDevice.of_kind(kind, address)
        self.devices.append(device)
        return device

    def install(self, table: LocalServiceTable) -> None:
        """Expose every device's interface in a browser service table."""
        for device in self.devices:
            table.open_service(device.address, device.port)

    def service_table(self) -> LocalServiceTable:
        table = LocalServiceTable()
        self.install(table)
        return table

    def addresses(self) -> list[str]:
        return [device.address for device in self.devices]


def typical_home_network(*, seed: int = 11, device_count: int = 4) -> HomeNetwork:
    """A deterministic, plausible home network.

    Always contains a router at .1; the remaining devices are drawn from
    the catalogue with seeded placement — the growing-IoT-household the
    paper cites (Kumar et al.) as raising the stakes.
    """
    import random

    if device_count < 1:
        raise ValueError("a home network needs at least the router")
    rng = random.Random(seed)
    network = HomeNetwork()
    network.add_device("router", 1)
    kinds = [k for k in DEVICE_CATALOG if k != "router"]
    used = {1}
    for _ in range(device_count - 1):
        kind = rng.choice(kinds)
        octet = rng.randrange(2, 255)
        while octet in used:
            octet = rng.randrange(2, 255)
        used.add(octet)
        network.add_device(kind, octet)
    return network
