"""Login-page-only scanner deployments — the §3.3 lower-bound extension.

The paper notes its landing-page-only crawl yields a *lower bound*: a
contemporaneous investigation (Abrams, "List of well-known web sites that
port scan their visitors", reference [5]) found several sites deploying
ThreatMetrix specifically on **login pages**, invisible to a landing-page
crawl.  The paper confirms its landing-page set is a superset of that
post's findings for landing pages and leaves internal pages to future
work.

This module seeds that future-work scenario: a handful of top-ranked
sites (drawn from the brands the blog post names; ranks reconstructed,
so all rows are ``calibrated``) run the full ThreatMetrix scan on their
``/signin`` page and nothing on their landing page.  A default crawl
reports 107 localhost sites for 2020; a crawl with
``include_internal=True`` additionally surfaces these.
"""

from __future__ import annotations

from dataclasses import dataclass

from .behaviors import PortScanBehavior
from .seeds import TM_PORTS


@dataclass(frozen=True, slots=True)
class LoginPageScanner:
    """A site whose anti-fraud scan lives on its sign-in page only."""

    domain: str
    rank: int
    login_path: str = "/signin"


#: Brands the blog post [5] reported as port-scanning on login pages and
#: that do not already appear in the paper's landing-page tables.
LOGIN_PAGE_SCANNERS: tuple[LoginPageScanner, ...] = (
    LoginPageScanner("chase.com", 29),
    LoginPageScanner("sky.com", 960),
    LoginPageScanner("tdbank.com", 1890),
    LoginPageScanner("gumtree.com", 2704),
    LoginPageScanner("netteller.com", 8120),
)


def login_scan_behavior(scanner: LoginPageScanner) -> PortScanBehavior:
    """The ThreatMetrix scan as deployed on the sign-in page."""
    return PortScanBehavior(
        name=f"threatmetrix@h.online-metrix.net ({scanner.login_path})",
        scheme="wss",
        ports=TM_PORTS,
        active_oses=frozenset({"windows"}),
        delay_ms=6_000.0,
        telemetry_url="https://h.online-metrix.net/fp/clear.png",
    )
