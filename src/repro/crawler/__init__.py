"""Measurement harness: connectivity gate, per-OS crawler, campaigns."""

from .campaign import Campaign, CampaignResult, run_campaign
from .connectivity import PROBE_HOST, PROBE_PORT, ConnectivityChecker
from .crawl import Crawler, CrawlRecord, CrawlStats
from .vm import VANTAGE_BY_OS, OSEnvironment

__all__ = [
    "Campaign",
    "CampaignResult",
    "run_campaign",
    "PROBE_HOST",
    "PROBE_PORT",
    "ConnectivityChecker",
    "Crawler",
    "CrawlRecord",
    "CrawlStats",
    "VANTAGE_BY_OS",
    "OSEnvironment",
]
