"""Measurement harness: connectivity gate, per-OS crawler, campaigns."""

from .campaign import Campaign, CampaignResult, finding_fingerprint, run_campaign
from .connectivity import PROBE_HOST, PROBE_PORT, ConnectivityChecker
from .crawl import Crawler, CrawlRecord, CrawlStats
from .fabric import (
    CrawlFabric,
    FabricConfig,
    FabricError,
    FabricReport,
    FabricResult,
    MergeDivergenceError,
    resolve_shards,
)
from .retry import DEFAULT_RETRY_POLICY, NO_RETRY, RetryPolicy, VirtualClock
from .shard import PopulationSpec, ShardConfig, run_shard, subpopulation
from .vm import VANTAGE_BY_OS, OSEnvironment

__all__ = [
    "Campaign",
    "CampaignResult",
    "finding_fingerprint",
    "run_campaign",
    "CrawlFabric",
    "FabricConfig",
    "FabricError",
    "FabricReport",
    "FabricResult",
    "MergeDivergenceError",
    "resolve_shards",
    "PopulationSpec",
    "ShardConfig",
    "run_shard",
    "subpopulation",
    "PROBE_HOST",
    "PROBE_PORT",
    "ConnectivityChecker",
    "Crawler",
    "CrawlRecord",
    "CrawlStats",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "NO_RETRY",
    "VirtualClock",
    "VANTAGE_BY_OS",
    "OSEnvironment",
]
