"""Pre-visit connectivity checking.

Section 3.1: "before visiting a webpage, we first check for network
connectivity by pinging Google's DNS server (8.8.8.8)", so that load
failures can be distinguished from measurement-side outages.  The checker
models that gate, including injectable outages for testing the crawl
loop's retry/skip behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..browser.network import SimulatedNetwork

PROBE_HOST = "8.8.8.8"
PROBE_PORT = 53


@dataclass(slots=True)
class ConnectivityChecker:
    """Checks upstream connectivity before each page visit."""

    network: SimulatedNetwork
    #: Injected outage flag; set True to simulate losing the uplink.
    outage: bool = False
    checks: int = 0
    failures: int = 0

    def check(self) -> bool:
        """True when the measurement host can reach the Internet."""
        self.checks += 1
        if self.outage:
            self.failures += 1
            return False
        outcome = self.network.connect(PROBE_HOST, PROBE_PORT)
        if not outcome.ok:
            self.failures += 1
            return False
        return True
