"""Pre-visit connectivity checking.

Section 3.1: "before visiting a webpage, we first check for network
connectivity by pinging Google's DNS server (8.8.8.8)", so that load
failures can be distinguished from measurement-side outages.  The checker
models that gate, including injectable outages for testing the crawl
loop's retry/skip behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..browser.network import SimulatedNetwork

PROBE_HOST = "8.8.8.8"
PROBE_PORT = 53

#: Fault seam: called once per check; returning True means the uplink is
#: down for this check (bounded outages come from the fault injector).
OutageHook = Callable[[], bool]


@dataclass(slots=True)
class ConnectivityChecker:
    """Checks upstream connectivity before each page visit."""

    network: SimulatedNetwork
    #: Injected outage flag; set True to simulate losing the uplink.
    outage: bool = False
    #: Scheduled-outage seam (see :class:`~repro.faults.FaultInjector`).
    fault_hook: OutageHook | None = None
    checks: int = 0
    failures: int = 0

    def check(self) -> bool:
        """True when the measurement host can reach the Internet."""
        self.checks += 1
        if self.outage or (self.fault_hook is not None and self.fault_hook()):
            self.failures += 1
            return False
        outcome = self.network.connect(PROBE_HOST, PROBE_PORT)
        if not outcome.ok:
            self.failures += 1
            return False
        return True
