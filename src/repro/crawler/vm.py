"""Crawl environments: the three OS vantage points of the measurement.

The paper ran Windows 10 and Ubuntu 20.04 crawls in VMware VMs on Georgia
Tech's network, and the Mac OS X crawl on a MacBook Air on a residential
Comcast connection (section 3.1).  An :class:`OSEnvironment` bundles an OS
identity with its network vantage and builds fresh simulated browsers; the
vantage label is carried through so analyses can check for vantage-point
effects (section 3.3 discusses why none were expected or found).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..browser.chrome import DEFAULT_MONITOR_WINDOW_MS, SimulatedChrome
from ..browser.dns import SimulatedResolver
from ..browser.network import LocalServiceTable, SimulatedNetwork
from ..browser.useragent import LINUX, MAC, WINDOWS, OSIdentity, identity_for

#: Network vantage per OS, as in the paper's setup.
VANTAGE_BY_OS = {
    WINDOWS: "gatech-isp",
    LINUX: "gatech-isp",
    MAC: "comcast-residential",
}


@dataclass(slots=True)
class OSEnvironment:
    """One crawl VM (or bare-metal Mac): OS identity + network stack."""

    identity: OSIdentity
    vantage: str
    services: LocalServiceTable = field(default_factory=LocalServiceTable)
    monitor_window_ms: float = DEFAULT_MONITOR_WINDOW_MS

    @classmethod
    def for_os(
        cls,
        os_name: str,
        *,
        monitor_window_ms: float = DEFAULT_MONITOR_WINDOW_MS,
    ) -> "OSEnvironment":
        return cls(
            identity=identity_for(os_name),
            vantage=VANTAGE_BY_OS[os_name],
            monitor_window_ms=monitor_window_ms,
        )

    @property
    def os_name(self) -> str:
        return self.identity.name

    def network(self, *, fault_hook=None) -> SimulatedNetwork:
        return SimulatedNetwork(services=self.services, fault_hook=fault_hook)

    def browser(
        self,
        *,
        resolver: SimulatedResolver | None = None,
        network: SimulatedNetwork | None = None,
        webrtc=None,
    ) -> SimulatedChrome:
        """A fresh Chrome instance (clean profile) in this environment."""
        return SimulatedChrome(
            self.identity,
            resolver=resolver,
            network=network if network is not None else self.network(),
            monitor_window_ms=self.monitor_window_ms,
            webrtc=webrtc,
        )
