"""Multi-OS measurement campaigns — the paper's three crawls end to end.

A :class:`Campaign` runs one population across every OS it is defined for
(sequentially, as the paper did: "we start measurements on each OS at
different times"), keeps the crawl statistics per OS (Table 1), and folds
the per-visit detections into per-site :class:`~repro.core.report.SiteFinding`
records with a behaviour classification (RQ3).

Only sites that exhibited local activity retain their detections —
everything else contributes to statistics and is dropped, which is what
keeps full 100K×OS campaigns in memory.

Campaigns are resilient by construction:

* a :class:`~repro.crawler.retry.RetryPolicy` re-attempts transient visit
  failures before they land in a Table 1 bucket;
* a :class:`~repro.faults.FaultPlan` can be attached to inject scheduled
  faults at every pipeline seam (chaos testing);
* with a persistent :class:`~repro.storage.db.TelemetryStore`, progress
  is checkpointed per visit, and ``run(..., resume=True)`` skips every
  (crawl, OS, domain) already recorded — a campaign killed mid-run picks
  up where it stopped and produces findings identical to an uninterrupted
  one (see :func:`finding_fingerprint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .. import obs
from ..browser.errors import NetError, table1_bucket
from ..core.classifier import BehaviorClassifier
from ..core.detector import LocalTrafficDetector
from ..core.report import SiteFinding
from ..faults.injector import (
    FaultInjector,
    InjectedCrashError,
    ScopedFaultInjector,
    StorageWriteError,
)
from ..faults.plan import FaultPlan
from ..netlog.archive import NetLogArchive
from ..storage.db import TelemetryStore
from ..web.population import CrawlPopulation
from .crawl import Crawler, CrawlRecord, CrawlStats
from .executor import CampaignInterrupted, ExecutorConfig, SupervisedExecutor
from .retry import NO_RETRY, RetryPolicy
from .vm import OSEnvironment

_VISITS = obs.counter(
    "repro_visits_total",
    "completed visits by OS and result (ok, error, skipped)",
    ("os", "result"),
)
_LOCAL_ACTIVE = obs.counter(
    "repro_local_active_visits_total",
    "visits that detected local network activity, by OS",
    ("os",),
)
_ARCHIVE_FAILURES = obs.counter(
    "repro_archive_write_failures_total",
    "NetLog archive documents lost to exhausted write retries",
)


@dataclass(slots=True)
class CampaignResult:
    """Everything a campaign measured."""

    name: str
    oses: tuple[str, ...]
    stats: dict[str, CrawlStats] = field(default_factory=dict)
    findings: list[SiteFinding] = field(default_factory=list)
    # Lazy domain → finding index: per-site lookups over a 100K-site
    # campaign would otherwise be a quadratic linear scan.  Rebuilt
    # whenever the findings list is replaced or its length changes.
    _finding_index: dict[str, SiteFinding] = field(
        default_factory=dict, repr=False, compare=False
    )
    _finding_index_basis: list[SiteFinding] | None = field(
        default=None, repr=False, compare=False
    )

    def finding(self, domain: str) -> SiteFinding | None:
        if self._finding_index_basis is not self.findings or len(
            self._finding_index
        ) != len(self.findings):
            self._finding_index = {f.domain: f for f in self.findings}
            self._finding_index_basis = self.findings
        return self._finding_index.get(domain)

    @property
    def total_successes(self) -> int:
        return sum(stats.successes for stats in self.stats.values())


def finding_fingerprint(finding: SiteFinding) -> tuple:
    """Canonical identity of one finding, for invariance checks.

    Covers everything a finding *means* — domain, rank, category,
    behaviour verdict, and every detected local request with its timing —
    while excluding browser-process artifacts (NetLog source ids), which
    legitimately shift when retries or a resume change how many pages a
    browser instance has loaded before a given site.
    """
    classification = (
        (
            finding.classification.behavior.value,
            finding.classification.signature_name,
        )
        if finding.classification is not None
        else None
    )
    per_os = tuple(
        (
            os_name,
            detection.page_load_time,
            detection.total_flows,
            tuple(
                (
                    request.locality.value,
                    request.scheme,
                    request.host,
                    request.port,
                    request.path,
                    request.time,
                    request.method,
                    request.via_redirect,
                    request.initiator,
                )
                for request in detection.requests
            ),
        )
        for os_name, detection in sorted(finding.per_os.items())
    )
    return (
        finding.domain,
        finding.rank,
        finding.population,
        finding.category,
        classification,
        per_os,
    )


class Campaign:
    """Runs one population across its OS matrix and classifies findings."""

    def __init__(
        self,
        *,
        monitor_window_ms: float | None = None,
        detector: LocalTrafficDetector | None = None,
        classifier: BehaviorClassifier | None = None,
        check_connectivity: bool = False,
        include_internal: bool = False,
        store: TelemetryStore | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        injector: FaultInjector | None = None,
        checkpoint_every: int = 0,
        executor: ExecutorConfig | None = None,
        netlog_archive: NetLogArchive | None = None,
        netlog_format: str | None = None,
        on_visit: Callable[[CrawlRecord], None] | None = None,
    ) -> None:
        self.monitor_window_ms = monitor_window_ms
        self.detector = detector
        self.classifier = classifier if classifier is not None else BehaviorClassifier()
        self.include_internal = include_internal
        # Optional persistence, mirroring the paper's parse-into-a-database
        # step: every visit outcome is stored; detected local requests are
        # stored for sites that had any (raw events are not persisted by
        # default — at paper scale they were the 11 TB problem).
        self.store = store
        # The connectivity gate adds one probe per visit; campaigns over
        # synthetic populations have no outages, so it defaults off for
        # throughput and can be enabled to exercise the full loop.
        self.check_connectivity = check_connectivity
        self.retry_policy = retry_policy if retry_policy is not None else NO_RETRY
        # Chaos knobs: a plan builds a fresh injector per run(); passing an
        # injector explicitly shares its attempt state across runs.
        self.fault_plan = fault_plan
        self._shared_injector = injector
        #: The injector the most recent run() used (None without faults) —
        #: exposes per-kind injection counts to benches and tests.
        self.last_injector: FaultInjector | None = injector
        # Commit the store every N visits so a crash loses at most N rows;
        # 0 commits once per OS pass (plus once at the end).
        self.checkpoint_every = checkpoint_every
        # Supervised parallel execution: when a config is given, visits
        # run through a SupervisedExecutor (worker pool + watchdog +
        # deadlines + dead-letter quarantine) instead of the sequential
        # loop.  Results are invariant under the worker count.
        self.executor_config = executor
        #: The executor the most recent supervised run() used — exposes
        #: supervision statistics (cancellations, quarantines, drains).
        self.last_executor: SupervisedExecutor | None = None
        # Optional raw-capture archive: every successful visit's NetLog
        # is persisted as a checksummed document (the paper kept every
        # capture; `repro fsck` repairs database damage from it).
        self.netlog_archive = netlog_archive
        # Document encoding for archived captures: "json" or "binary"
        # (None defers to the codec default).  Detection and analysis are
        # format-agnostic, so this is purely an operational knob.
        self.netlog_format = netlog_format
        #: Archive documents lost to exhausted disk-full retries in the
        #: most recent run() — holes `repro fsck` will flag.
        self.archive_failures = 0
        # Live-progress hook: called once per visit the moment it
        # completes (from worker threads in supervised mode — must be
        # thread-safe).  Restored rows on a resume are not re-reported.
        self.on_visit = on_visit
        # Policy era of the population the current run() is crawling;
        # recorded on every stored visit row (NULL = channel off).
        self._webrtc_policy: str | None = None

    def _make_injector(self) -> FaultInjector | None:
        if self._shared_injector is not None:
            return self._shared_injector
        if self.fault_plan is not None:
            return FaultInjector(self.fault_plan)
        return None

    def run(
        self, population: CrawlPopulation, *, resume: bool = False
    ) -> CampaignResult:
        """Crawl ``population`` on every OS it is defined for.

        With ``resume=True`` (requires a store), every (OS, domain) that
        already has a stored outcome is restored from the database instead
        of being re-crawled; the returned result is indistinguishable —
        same Table 1 statistics, same findings — from a run that was never
        interrupted.
        """
        if resume and self.store is None:
            raise ValueError("resume=True requires a persistent store")
        injector = self._make_injector()
        self.last_injector = injector
        self.archive_failures = 0
        self._webrtc_policy = getattr(population, "webrtc_policy", None)
        if self.store is not None:
            self.store.write_fault_hook = (
                injector.storage_hook if injector is not None else None
            )
        result = CampaignResult(name=population.name, oses=population.oses)
        findings: dict[str, SiteFinding] = {}
        try:
            with obs.span(
                "campaign",
                category="campaign",
                args={"population": population.name, "resume": resume},
            ):
                if self.executor_config is not None:
                    self._run_supervised(
                        population, result, findings, injector, resume
                    )
                else:
                    for os_name in population.oses:
                        with obs.span(
                            "os-pass", category="campaign",
                            args={"os": os_name},
                        ):
                            self._run_os(
                                population, os_name, result, findings,
                                injector, resume,
                            )
                        if self.store is not None:
                            self.store.commit()
        except (InjectedCrashError, CampaignInterrupted):
            # A simulated hard crash or a graceful signal drain: flush
            # what completed so a resumed campaign starts from this exact
            # checkpoint, then propagate.
            if self.store is not None:
                self.store.commit()
            raise

        for finding in findings.values():
            finding.classification = self.classifier.classify_per_os(
                {
                    os_name: detection.requests
                    for os_name, detection in finding.per_os.items()
                }
            )
        result.findings = sorted(
            findings.values(),
            key=lambda f: (f.rank if f.rank is not None else 10**9, f.domain),
        )
        if self.store is not None:
            self.store.commit()
        return result

    # -- one OS pass -------------------------------------------------------

    def _run_os(
        self,
        population: CrawlPopulation,
        os_name: str,
        result: CampaignResult,
        findings: dict[str, SiteFinding],
        injector: FaultInjector | None,
        resume: bool,
    ) -> None:
        environment = (
            OSEnvironment.for_os(os_name, monitor_window_ms=self.monitor_window_ms)
            if self.monitor_window_ms is not None
            else OSEnvironment.for_os(os_name)
        )
        crawler = Crawler(
            environment,
            detector=self.detector,
            check_connectivity=self.check_connectivity,
            include_internal=self.include_internal,
            retry_policy=self.retry_policy,
            injector=injector,
            capture_netlog=self.netlog_archive is not None,
            netlog_format=self.netlog_format,
        )
        stats = CrawlStats(os_name=os_name, crawl=population.name)
        result.stats[os_name] = stats

        websites = population.websites
        if resume:
            done = self._restore_os(population.name, os_name, stats, findings)
            if done:
                websites = [w for w in websites if w.domain not in done]

        for index, record in enumerate(crawler.crawl(websites), start=1):
            if injector is not None:
                # The crash seam fires before the record is accounted or
                # persisted: a crashed visit leaves no trace, exactly like
                # a killed process, and resume re-crawls it.
                injector.on_visit()
            stats.record(record)
            self._persist(population.name, os_name, record)
            self._fold(record, os_name, findings, population.name)
            self._observe_visit(record)
            if (
                self.checkpoint_every
                and self.store is not None
                and index % self.checkpoint_every == 0
            ):
                self.store.commit()

    # -- supervised (parallel) execution -----------------------------------

    def _run_supervised(
        self,
        population: CrawlPopulation,
        result: CampaignResult,
        findings: dict[str, SiteFinding],
        injector: FaultInjector | None,
        resume: bool,
    ) -> None:
        """Run every OS pass through the supervised worker-pool executor.

        The executor merges each pass's outcomes back in submission
        (domain) order before they reach stats/finding folding, so the
        result is byte-identical to a single-worker run regardless of
        the configured worker count.
        """
        assert self.executor_config is not None
        if (
            self.store is not None
            and self.executor_config.workers > 1
            and not self.store.serialized
        ):
            raise ValueError(
                "workers > 1 requires a TelemetryStore opened with "
                "serialized=True (worker threads share the writer)"
            )
        executor = SupervisedExecutor(self.executor_config)
        self.last_executor = executor
        index_base = 0
        with executor.supervise():
            for os_name in population.oses:
                with obs.span(
                    "os-pass", category="campaign", args={"os": os_name}
                ):
                    index_base += self._run_os_supervised(
                        population, os_name, result, findings, injector,
                        resume, executor, index_base,
                    )
                if self.store is not None:
                    self.store.commit()

    def _run_os_supervised(
        self,
        population: CrawlPopulation,
        os_name: str,
        result: CampaignResult,
        findings: dict[str, SiteFinding],
        injector: FaultInjector | None,
        resume: bool,
        executor: SupervisedExecutor,
        index_base: int,
    ) -> int:
        """One supervised OS pass; returns how many visits it scheduled."""
        environment = (
            OSEnvironment.for_os(os_name, monitor_window_ms=self.monitor_window_ms)
            if self.monitor_window_ms is not None
            else OSEnvironment.for_os(os_name)
        )
        stats = CrawlStats(os_name=os_name, crawl=population.name)
        result.stats[os_name] = stats

        websites = population.websites
        if resume:
            done = self._restore_os(population.name, os_name, stats, findings)
            if done:
                websites = [w for w in websites if w.domain not in done]

        def crawler_factory(scoped: ScopedFaultInjector | None) -> Crawler:
            # Same construction as the sequential pass; the fault seams
            # thread through the worker's per-visit-scoped injector view
            # (its hook surface matches the base injector's).
            return Crawler(
                environment,
                detector=self.detector,
                check_connectivity=self.check_connectivity,
                include_internal=self.include_internal,
                retry_policy=self.retry_policy,
                injector=scoped,
                capture_netlog=self.netlog_archive is not None,
                netlog_format=self.netlog_format,
            )

        def persist(record_os: str, record: CrawlRecord) -> None:
            self._persist(population.name, record_os, record)

        def dead_letter(
            record_os: str, record: CrawlRecord, failures: int
        ) -> None:
            if self.store is None:
                return
            self.store.record_dead_letter(
                population.name,
                record.domain,
                record_os,
                error=int(record.error),
                failures=failures,
                reason="visit deadline exceeded (hang or pathological page)",
            )

        outcomes = executor.run_pass(
            os_name,
            websites,
            crawler_factory=crawler_factory,
            injector=injector,
            index_base=index_base,
            persist=(
                persist
                if self.store is not None or self.netlog_archive is not None
                else None
            ),
            dead_letter=dead_letter if self.store is not None else None,
            on_outcome=lambda outcome: self._observe_visit(outcome.record),
        )
        for outcome in outcomes:
            stats.record(outcome.record)
            self._fold(outcome.record, os_name, findings, population.name)
        return len(websites)

    def _restore_os(
        self,
        crawl: str,
        os_name: str,
        stats: CrawlStats,
        findings: dict[str, SiteFinding],
    ) -> set[str]:
        """Rebuild stats and findings for already-recorded visits."""
        assert self.store is not None
        rows = self.store.visits(crawl, os_name=os_name)
        if not rows:
            return set()
        detections = self.store.detections_for(crawl, os_name)
        done: set[str] = set()
        for row in rows:
            done.add(row.domain)
            stats.total_attempts += row.attempts
            if row.attempts > 1:
                stats.retried += 1
            if row.skipped:
                stats.skipped += 1
                continue
            if row.success:
                stats.successes += 1
                if row.attempts > 1:
                    stats.recovered += 1
            else:
                stats.failures += 1
                try:
                    bucket = table1_bucket(NetError(row.error))
                except ValueError:
                    bucket = "Others"
                assert stats.errors is not None
                stats.errors[bucket] = stats.errors.get(bucket, 0) + 1
                continue
            detection = detections.get(row.domain)
            if detection is None or not detection.has_local_activity:
                continue
            finding = findings.get(row.domain)
            if finding is None:
                finding = SiteFinding(
                    domain=row.domain,
                    rank=row.rank,
                    population=crawl,
                    category=row.category,
                )
                findings[row.domain] = finding
            finding.per_os[os_name] = detection
        return done

    # -- per-record plumbing ----------------------------------------------

    def _observe_visit(self, record: CrawlRecord) -> None:
        """Per-visit observability: metrics, then the live-progress hook."""
        if _VISITS.enabled:
            result = (
                "skipped"
                if record.connectivity_skipped
                else ("ok" if record.success else "error")
            )
            _VISITS.inc(labels=(record.os_name, result))
            if record.has_local_activity:
                _LOCAL_ACTIVE.inc(labels=(record.os_name,))
        if self.on_visit is not None:
            self.on_visit(record)

    def _persist(self, crawl: str, os_name: str, record: CrawlRecord) -> None:
        if self.netlog_archive is not None and record.netlog is not None:
            self._archive_events(crawl, os_name, record)
            record.netlog = None
        if self.store is None:
            return
        write_attempts = 0
        # The write retry budget mirrors the visit retry budget: storage
        # faults are transient by definition (the injector's model), but a
        # campaign run without retries keeps the seed's fail-fast shape.
        budget = self.retry_policy.max_attempts
        while True:
            write_attempts += 1
            try:
                self.store.record_visit(
                    crawl,
                    record.domain,
                    os_name,
                    success=record.success,
                    error=int(record.error),
                    rank=record.rank,
                    category=record.category,
                    skipped=record.connectivity_skipped,
                    attempts=record.attempts,
                    detection=record.detection
                    if record.has_local_activity
                    else None,
                    webrtc_policy=self._webrtc_policy,
                )
                return
            except StorageWriteError:
                if write_attempts >= budget:
                    raise

    def _archive_events(
        self, crawl: str, os_name: str, record: CrawlRecord
    ) -> None:
        """Persist one visit's streamed NetLog capture into the archive.

        The record carries a :class:`NetLogBuffer` — events were already
        serialised to record text while the visit ran, so archiving just
        wraps the buffer into a document and writes it.  Disk-full faults
        are retried under the same budget as storage writes; on exhaustion
        the document is *dropped* (the visit row survives) and counted in
        :attr:`archive_failures` — `repro fsck` flags the hole as a
        missing-archive finding.
        """
        assert self.netlog_archive is not None and record.netlog is not None
        injector = self.last_injector
        key = f"{crawl}:{os_name}:{record.domain}"
        meta = {
            "crawl": crawl,
            "domain": record.domain,
            "os": os_name,
            "success": record.success,
            "error": int(record.error),
            "rank": record.rank,
            "category": record.category,
            "skipped": record.connectivity_skipped,
            "attempts": record.attempts,
        }
        # Only webrtc-enabled campaigns carry the key: channel-off
        # archives stay byte-identical to pre-v4 ones.
        if self._webrtc_policy is not None:
            meta["webrtc_policy"] = self._webrtc_policy
        attempts = 0
        budget = self.retry_policy.max_attempts
        while True:
            attempts += 1
            try:
                if injector is not None:
                    injector.archive_write_hook(key)
                self.netlog_archive.write_buffered(
                    crawl,
                    os_name,
                    record.domain,
                    record.netlog,
                    meta=meta,
                    corrupt=(
                        injector.corrupt_netlog if injector is not None else None
                    ),
                )
                return
            except OSError:
                if attempts >= budget:
                    self.archive_failures += 1
                    _ARCHIVE_FAILURES.inc()
                    return

    def _fold(
        self,
        record: CrawlRecord,
        os_name: str,
        findings: dict[str, SiteFinding],
        population_name: str,
    ) -> None:
        if not record.has_local_activity:
            return
        finding = findings.get(record.domain)
        if finding is None:
            finding = SiteFinding(
                domain=record.domain,
                rank=record.rank,
                population=population_name,
                category=record.category,
            )
            findings[record.domain] = finding
        assert record.detection is not None
        finding.per_os[os_name] = record.detection


def run_campaign(
    population: CrawlPopulation,
    *,
    monitor_window_ms: float | None = None,
) -> CampaignResult:
    """Convenience one-shot campaign with default components."""
    return Campaign(monitor_window_ms=monitor_window_ms).run(population)
