"""Multi-OS measurement campaigns — the paper's three crawls end to end.

A :class:`Campaign` runs one population across every OS it is defined for
(sequentially, as the paper did: "we start measurements on each OS at
different times"), keeps the crawl statistics per OS (Table 1), and folds
the per-visit detections into per-site :class:`~repro.core.report.SiteFinding`
records with a behaviour classification (RQ3).

Only sites that exhibited local activity retain their detections —
everything else contributes to statistics and is dropped, which is what
keeps full 100K×OS campaigns in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.classifier import BehaviorClassifier
from ..core.detector import LocalTrafficDetector
from ..core.report import SiteFinding
from ..storage.db import TelemetryStore
from ..web.population import CrawlPopulation
from .crawl import Crawler, CrawlStats
from .vm import OSEnvironment


@dataclass(slots=True)
class CampaignResult:
    """Everything a campaign measured."""

    name: str
    oses: tuple[str, ...]
    stats: dict[str, CrawlStats] = field(default_factory=dict)
    findings: list[SiteFinding] = field(default_factory=list)

    def finding(self, domain: str) -> SiteFinding | None:
        for finding in self.findings:
            if finding.domain == domain:
                return finding
        return None

    @property
    def total_successes(self) -> int:
        return sum(stats.successes for stats in self.stats.values())


class Campaign:
    """Runs one population across its OS matrix and classifies findings."""

    def __init__(
        self,
        *,
        monitor_window_ms: float | None = None,
        detector: LocalTrafficDetector | None = None,
        classifier: BehaviorClassifier | None = None,
        check_connectivity: bool = False,
        include_internal: bool = False,
        store: TelemetryStore | None = None,
    ) -> None:
        self.monitor_window_ms = monitor_window_ms
        self.detector = detector
        self.classifier = classifier if classifier is not None else BehaviorClassifier()
        self.include_internal = include_internal
        # Optional persistence, mirroring the paper's parse-into-a-database
        # step: every visit outcome is stored; detected local requests are
        # stored for sites that had any (raw events are not persisted by
        # default — at paper scale they were the 11 TB problem).
        self.store = store
        # The connectivity gate adds one probe per visit; campaigns over
        # synthetic populations have no outages, so it defaults off for
        # throughput and can be enabled to exercise the full loop.
        self.check_connectivity = check_connectivity

    def run(self, population: CrawlPopulation) -> CampaignResult:
        """Crawl ``population`` on every OS it is defined for."""
        result = CampaignResult(name=population.name, oses=population.oses)
        findings: dict[str, SiteFinding] = {}
        for os_name in population.oses:
            environment = (
                OSEnvironment.for_os(os_name, monitor_window_ms=self.monitor_window_ms)
                if self.monitor_window_ms is not None
                else OSEnvironment.for_os(os_name)
            )
            crawler = Crawler(
                environment,
                detector=self.detector,
                check_connectivity=self.check_connectivity,
                include_internal=self.include_internal,
            )
            records, stats = crawler.crawl_population(population)
            result.stats[os_name] = stats
            for record in records:
                if self.store is not None:
                    self.store.record_visit(
                        population.name,
                        record.domain,
                        os_name,
                        success=record.success,
                        error=int(record.error),
                        rank=record.rank,
                        category=record.category,
                        detection=record.detection
                        if record.has_local_activity
                        else None,
                    )
                if not record.has_local_activity:
                    continue
                finding = findings.get(record.domain)
                if finding is None:
                    finding = SiteFinding(
                        domain=record.domain,
                        rank=record.rank,
                        population=population.name,
                        category=record.category,
                    )
                    findings[record.domain] = finding
                assert record.detection is not None
                finding.per_os[os_name] = record.detection

        for finding in findings.values():
            finding.classification = self.classifier.classify_per_os(
                {
                    os_name: detection.requests
                    for os_name, detection in finding.per_os.items()
                }
            )
        result.findings = sorted(
            findings.values(),
            key=lambda f: (f.rank if f.rank is not None else 10**9, f.domain),
        )
        if self.store is not None:
            self.store.commit()
        return result


def run_campaign(
    population: CrawlPopulation,
    *,
    monitor_window_ms: float | None = None,
) -> CampaignResult:
    """Convenience one-shot campaign with default components."""
    return Campaign(monitor_window_ms=monitor_window_ms).run(population)
