"""Single-OS crawling: visit landing pages, collect and detect telemetry.

One :class:`Crawler` drives one OS environment over a population: for each
website it runs the connectivity gate, visits the landing page with the
simulated browser for the monitoring window, then runs the local-traffic
detector over the captured NetLog events.  Output is a stream of
:class:`CrawlRecord` rows — the unit the storage and analysis layers
consume.

Transient failures (resolver hiccups, resets, uplink outages — injected
or organic) are retried under a :class:`~repro.crawler.retry.RetryPolicy`
before they land in a Table 1 bucket; backoff waits accrue on a virtual
clock, so resilience costs simulated seconds, not wall-clock ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .. import obs
from ..browser.errors import NetError, table1_bucket
from ..core.detector import DetectionResult, LocalTrafficDetector
from ..faults.injector import FaultInjector
from ..netlog.events import NetLogEvent
from ..netlog.pipeline import EventSink, ListSink, Tee
from ..netlog.binary import BinaryNetLogBuffer
from ..netlog.codec import make_capture_buffer
from ..netlog.writer import NetLogBuffer
from ..web.population import CrawlPopulation
from ..web.website import Website
from .connectivity import ConnectivityChecker
from .retry import NO_RETRY, RetryPolicy, VirtualClock
from .vm import OSEnvironment

_RETRIES = obs.counter(
    "repro_visit_retries_total",
    "visit re-attempts by the NetError class that triggered them",
    ("error",),
)
_BACKOFF_MS = obs.counter(
    "repro_visit_backoff_sim_ms_total",
    "simulated milliseconds spent backing off between attempts",
)


@dataclass(slots=True)
class CrawlRecord:
    """Outcome of visiting one site on one OS."""

    domain: str
    os_name: str
    success: bool
    error: NetError = NetError.OK
    rank: int | None = None
    category: str | None = None
    detection: DetectionResult | None = None
    connectivity_skipped: bool = False
    #: How many visit attempts this outcome took (1 = no retries needed).
    attempts: int = 1
    #: Total simulated backoff spent between those attempts.
    backoff_ms: float = 0.0
    #: Raw NetLog events of the successful attempt — populated only when
    #: the crawler runs with ``capture_events=True`` (debugging and
    #: equivalence tests).  Archiving campaigns no longer buffer events
    #: here: they stream each event into :attr:`netlog` as it is emitted.
    events: list[NetLogEvent] | None = None
    #: Streamed serialised NetLog capture of the successful attempt
    #: (``capture_netlog=True``): events were rendered to their record
    #: encoding (JSON text or binary frames, per the crawler's
    #: ``netlog_format``) as the visit ran, ready for the archive to wrap
    #: into a document; the campaign clears it once the document is
    #: written.
    netlog: "NetLogBuffer | BinaryNetLogBuffer | None" = None

    @property
    def error_bucket(self) -> str | None:
        """Table 1 failure column for this record, or None on success."""
        if self.success:
            return None
        return table1_bucket(self.error)

    @property
    def has_local_activity(self) -> bool:
        return bool(self.detection and self.detection.has_local_activity)

    @property
    def recovered(self) -> bool:
        """Succeeded, but only after at least one retry."""
        return self.success and self.attempts > 1


@dataclass(slots=True)
class CrawlStats:
    """Success/failure accounting for one crawl (one Table 1 row)."""

    os_name: str
    crawl: str
    successes: int = 0
    failures: int = 0
    errors: dict[str, int] | None = None
    skipped: int = 0
    #: Visit attempts across all records (== total when retries are off).
    total_attempts: int = 0
    #: Records that needed more than one attempt.
    retried: int = 0
    #: Records that failed transiently but succeeded on a retry.
    recovered: int = 0
    #: Simulated milliseconds spent backing off between attempts.
    backoff_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.errors is None:
            self.errors = {}

    @property
    def total(self) -> int:
        return self.successes + self.failures

    def record(self, record: CrawlRecord) -> None:
        self.total_attempts += record.attempts
        self.backoff_ms += record.backoff_ms
        if record.attempts > 1:
            self.retried += 1
        if record.recovered:
            self.recovered += 1
        if record.connectivity_skipped:
            self.skipped += 1
            return
        if record.success:
            self.successes += 1
        else:
            self.failures += 1
            bucket = record.error_bucket or "Others"
            assert self.errors is not None
            self.errors[bucket] = self.errors.get(bucket, 0) + 1


class Crawler:
    """Visits websites on one OS and detects their local traffic."""

    def __init__(
        self,
        environment: OSEnvironment,
        *,
        detector: LocalTrafficDetector | None = None,
        check_connectivity: bool = True,
        include_internal: bool = False,
        retry_policy: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        capture_events: bool = False,
        capture_netlog: bool = False,
        netlog_format: str | None = None,
    ) -> None:
        self.environment = environment
        # Keep the successful attempt's raw NetLog events on the record;
        # off by default — at paper scale raw events were the 11 TB
        # problem.  Archiving campaigns use ``capture_netlog`` instead:
        # events are serialised to record text as the browser emits them
        # (one pass, no object buffer) and the campaign archives the
        # finished buffer.
        self.capture_events = capture_events
        self.capture_netlog = capture_netlog
        # Capture buffer encoding: "json" or "binary" (None defers to the
        # codec default, normally JSON or $REPRO_NETLOG_FORMAT).
        self.netlog_format = netlog_format
        self.detector = detector if detector is not None else LocalTrafficDetector()
        self.retry_policy = retry_policy if retry_policy is not None else NO_RETRY
        self.injector = injector
        self.clock = VirtualClock()
        if injector is not None:
            # Thread the fault seams through the whole stack this crawler
            # owns: resolver, network, and connectivity gate.
            from ..browser.dns import SimulatedResolver
            from ..webrtc.ice import IceAgent

            network = environment.network(fault_hook=injector.connect_hook)
            self.browser = environment.browser(
                resolver=SimulatedResolver(fault_hook=injector.dns_hook),
                network=network,
                webrtc=IceAgent(
                    environment.os_name,
                    stun_hook=injector.stun_hook,
                    mdns_hook=injector.mdns_hook,
                ),
            )
            self.connectivity = ConnectivityChecker(
                network=self.browser.network,
                fault_hook=injector.connectivity_hook,
            )
        else:
            self.browser = environment.browser()
            self.connectivity = ConnectivityChecker(network=self.browser.network)
        self.check_connectivity = check_connectivity
        # The paper crawled landing pages only (section 3.3 lists internal
        # pages as future work); opting in visits every declared internal
        # page too and merges its local requests into the site record.
        self.include_internal = include_internal

    def _sim_now_ms(self) -> float:
        return self.clock.now_ms

    def crawl_site(self, website: Website) -> CrawlRecord:
        """Visit one website, retrying transient failures per policy.

        The connectivity gate runs before every attempt and has its own
        wait budget: a bounded uplink outage is ridden out with backoff
        rather than charged against the site's visit attempts, so an
        outage and a transient site failure never compound into a
        spurious Table 1 entry.
        """
        if not obs.enabled():
            return self._crawl_site(website)
        with obs.span(
            "visit",
            category="crawl",
            sim_now=self._sim_now_ms,
            args={"domain": website.domain, "os": self.environment.os_name},
        ) as span_args:
            record = self._crawl_site(website)
            span_args["success"] = record.success
            if record.attempts > 1:
                span_args["attempts"] = record.attempts
            return record

    def _crawl_site(self, website: Website) -> CrawlRecord:
        policy = self.retry_policy
        attempt = 0
        backoff_total = 0.0
        while True:
            attempt += 1
            skip, backoff_total = self._await_connectivity(website, backoff_total)
            if skip is not None:
                # Uplink stayed down through the wait budget: record a
                # skip rather than misattribute the failure (section 3.1).
                skip.attempts = attempt
                skip.backoff_ms = backoff_total
                return skip
            record = self._visit_once(website)
            record.attempts = attempt
            record.backoff_ms = backoff_total
            if record.success or not policy.should_retry(record.error, attempt):
                return record
            _RETRIES.inc(labels=(record.error.name,))
            wait = policy.backoff_ms(website.domain, attempt)
            _BACKOFF_MS.inc(wait)
            backoff_total += wait
            self.clock.advance(wait)

    def _await_connectivity(
        self, website: Website, backoff_total: float
    ) -> tuple[CrawlRecord | None, float]:
        """Run the connectivity gate, waiting out bounded outages.

        Returns ``(skip_record, backoff)`` when the uplink is still down
        after the wait budget, ``(None, backoff)`` when it is safe to
        visit.  The wait budget matches the retry budget
        (``max_attempts - 1`` re-checks), so the seed's no-retry policy
        keeps its skip-immediately behaviour.
        """
        if not self.check_connectivity:
            return None, backoff_total
        policy = self.retry_policy
        waits = 0
        while not self.connectivity.check():
            if (
                not policy.retry_connectivity_skips
                or waits >= policy.max_attempts - 1
            ):
                return (
                    CrawlRecord(
                        domain=website.domain,
                        os_name=self.environment.os_name,
                        success=False,
                        error=NetError.ERR_INTERNET_DISCONNECTED,
                        rank=website.rank,
                        category=website.category,
                        connectivity_skipped=True,
                    ),
                    backoff_total,
                )
            waits += 1
            wait = policy.backoff_ms(f"{website.domain}@gate", waits)
            backoff_total += wait
            self.clock.advance(wait)
        return None, backoff_total

    def _visit_once(self, website: Website) -> CrawlRecord:
        """One visit attempt: page load and detection (gate already run).

        Single-pass streaming: detection (and, when capturing, the raw
        event collector / serialised NetLog buffer) ride the browser's
        ordered event stream through one sink graph — no post-hoc
        re-walk of a materialised event list.  A failed attempt's
        partial stream is simply discarded with its sinks.
        """
        os_name = self.environment.os_name
        forced = website.load_error_for(os_name)
        detection = self.detector.sink()
        sinks: list[EventSink] = [detection]
        collector = ListSink() if self.capture_events else None
        if collector is not None:
            sinks.append(collector)
        netlog = (
            make_capture_buffer(self.netlog_format, checksums=True)
            if self.capture_netlog
            else None
        )
        if netlog is not None:
            sinks.append(netlog)
        sink = sinks[0] if len(sinks) == 1 else Tee(*sinks)
        visit = self.browser.visit(
            website.page(), forced_error=forced, sink=sink
        )
        record = CrawlRecord(
            domain=website.domain,
            os_name=os_name,
            success=visit.success,
            error=visit.error,
            rank=website.rank,
            category=website.category,
        )
        if visit.success:
            record.detection = detection.finish()
            if collector is not None:
                record.events = collector.finish()
            if netlog is not None:
                record.netlog = netlog.finish()
            if self.include_internal and website.internal_pages:
                self._crawl_internal_pages(website, record)
        return record

    def _crawl_internal_pages(
        self, website: Website, record: CrawlRecord
    ) -> None:
        """Visit declared internal pages, merging their local requests."""
        assert record.detection is not None
        for path in website.internal_pages:
            sink = self.detector.sink()
            visit = self.browser.visit(website.page(path), sink=sink)
            if not visit.success:
                continue
            detection = sink.finish()
            record.detection.requests.extend(detection.requests)
            record.detection.total_flows += detection.total_flows

    def crawl(self, websites: Iterable[Website]) -> Iterator[CrawlRecord]:
        """Visit each website once, in order, yielding records."""
        for website in websites:
            yield self.crawl_site(website)

    def crawl_population(
        self, population: CrawlPopulation
    ) -> tuple[list[CrawlRecord], CrawlStats]:
        """Crawl a whole population on this OS, with stats accounting."""
        stats = CrawlStats(os_name=self.environment.os_name, crawl=population.name)
        records: list[CrawlRecord] = []
        for record in self.crawl(population.websites):
            stats.record(record)
            records.append(record)
        return records, stats
