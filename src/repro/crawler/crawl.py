"""Single-OS crawling: visit landing pages, collect and detect telemetry.

One :class:`Crawler` drives one OS environment over a population: for each
website it runs the connectivity gate, visits the landing page with the
simulated browser for the monitoring window, then runs the local-traffic
detector over the captured NetLog events.  Output is a stream of
:class:`CrawlRecord` rows — the unit the storage and analysis layers
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..browser.errors import NetError, table1_bucket
from ..core.detector import DetectionResult, LocalTrafficDetector
from ..web.population import CrawlPopulation
from ..web.website import Website
from .connectivity import ConnectivityChecker
from .vm import OSEnvironment


@dataclass(slots=True)
class CrawlRecord:
    """Outcome of visiting one site on one OS."""

    domain: str
    os_name: str
    success: bool
    error: NetError = NetError.OK
    rank: int | None = None
    category: str | None = None
    detection: DetectionResult | None = None
    connectivity_skipped: bool = False

    @property
    def error_bucket(self) -> str | None:
        """Table 1 failure column for this record, or None on success."""
        if self.success:
            return None
        return table1_bucket(self.error)

    @property
    def has_local_activity(self) -> bool:
        return bool(self.detection and self.detection.has_local_activity)


@dataclass(slots=True)
class CrawlStats:
    """Success/failure accounting for one crawl (one Table 1 row)."""

    os_name: str
    crawl: str
    successes: int = 0
    failures: int = 0
    errors: dict[str, int] | None = None
    skipped: int = 0

    def __post_init__(self) -> None:
        if self.errors is None:
            self.errors = {}

    @property
    def total(self) -> int:
        return self.successes + self.failures

    def record(self, record: CrawlRecord) -> None:
        if record.connectivity_skipped:
            self.skipped += 1
            return
        if record.success:
            self.successes += 1
        else:
            self.failures += 1
            bucket = record.error_bucket or "Others"
            assert self.errors is not None
            self.errors[bucket] = self.errors.get(bucket, 0) + 1


class Crawler:
    """Visits websites on one OS and detects their local traffic."""

    def __init__(
        self,
        environment: OSEnvironment,
        *,
        detector: LocalTrafficDetector | None = None,
        check_connectivity: bool = True,
        include_internal: bool = False,
    ) -> None:
        self.environment = environment
        self.detector = detector if detector is not None else LocalTrafficDetector()
        self.browser = environment.browser()
        self.connectivity = ConnectivityChecker(network=self.browser.network)
        self.check_connectivity = check_connectivity
        # The paper crawled landing pages only (section 3.3 lists internal
        # pages as future work); opting in visits every declared internal
        # page too and merges its local requests into the site record.
        self.include_internal = include_internal

    def crawl_site(self, website: Website) -> CrawlRecord:
        """Visit one website's landing page and analyse its telemetry."""
        os_name = self.environment.os_name
        if self.check_connectivity and not self.connectivity.check():
            # No Internet on our side: skip rather than misattribute the
            # failure to the website (section 3.1).
            return CrawlRecord(
                domain=website.domain,
                os_name=os_name,
                success=False,
                error=NetError.ERR_INTERNET_DISCONNECTED,
                rank=website.rank,
                category=website.category,
                connectivity_skipped=True,
            )
        forced = website.load_error_for(os_name)
        visit = self.browser.visit(website.page(), forced_error=forced)
        record = CrawlRecord(
            domain=website.domain,
            os_name=os_name,
            success=visit.success,
            error=visit.error,
            rank=website.rank,
            category=website.category,
        )
        if visit.success:
            record.detection = self.detector.detect(visit.events)
            if self.include_internal and website.internal_pages:
                self._crawl_internal_pages(website, record)
        return record

    def _crawl_internal_pages(
        self, website: Website, record: CrawlRecord
    ) -> None:
        """Visit declared internal pages, merging their local requests."""
        assert record.detection is not None
        for path in website.internal_pages:
            visit = self.browser.visit(website.page(path))
            if not visit.success:
                continue
            detection = self.detector.detect(visit.events)
            record.detection.requests.extend(detection.requests)
            record.detection.total_flows += detection.total_flows

    def crawl(
        self, websites: Iterable[Website], *, crawl_name: str = ""
    ) -> Iterator[CrawlRecord]:
        """Visit each website once, in order, yielding records."""
        for website in websites:
            yield self.crawl_site(website)

    def crawl_population(
        self, population: CrawlPopulation
    ) -> tuple[list[CrawlRecord], CrawlStats]:
        """Crawl a whole population on this OS, with stats accounting."""
        stats = CrawlStats(os_name=self.environment.os_name, crawl=population.name)
        records: list[CrawlRecord] = []
        for record in self.crawl(population.websites, crawl_name=population.name):
            stats.record(record)
            records.append(record)
        return records, stats
