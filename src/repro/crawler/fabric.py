"""Crash-tolerant sharded multi-process crawl fabric.

The paper ran its 100K+-site crawls from a single orchestrator; the
ROADMAP's north star is million-domain campaigns, which makes the
harness itself the availability problem: a crawl that dies with one
worker process — or silently drops that worker's slice — skews every
measured table.  The fabric makes partial process failure a non-event:

* the coordinator partitions the toplist into domain **chunks** and runs
  N **shard** worker processes (:mod:`repro.crawler.shard`), each with
  its own WAL-mode telemetry store and NetLog archive directory;
* shards are supervised by **heartbeat liveness**: a crashed process
  (non-zero exit, SIGKILL) or a stalled one (no heartbeat inside the
  timeout) is killed and restarted — bounded per shard — and the new
  generation *resumes* from the dead one's committed rows;
* dispatch is pull-based with **work stealing**: an idle shard takes
  pending chunks from the most-loaded peer, so a restarted or slow shard
  sheds surplus work instead of dragging the campaign;
* a **merge** stage folds every shard store into one rollup store,
  deduplicating by (crawl, domain, OS) and *proving* convergence row by
  row: a duplicate's content digest must match what the rollup already
  holds, and every merged row's digest is recomputed on insert — so the
  rollup's campaign digest (and the findings' fingerprints) are
  byte-identical to a serial single-process run, even when shards were
  SIGKILLed mid-visit and resumed.

The merge is idempotent (re-running it converges), which also makes the
fabric itself resumable: ``run(resume=True)`` first folds any leftover
shard stores from an interrupted run into the rollup, then crawls only
what the rollup is still missing.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import queue
import shutil
import time
from dataclasses import dataclass, field

from .. import obs
from ..netlog.archive import NetLogArchive
from ..netlog.codec import codec_for_suffix
from ..storage.db import TelemetryStore
from ..faults.plan import FaultPlan
from .campaign import Campaign, CampaignResult
from .executor import CampaignInterrupted
from . import shard as shard_proto
from .shard import PopulationSpec, ShardConfig, run_shard

_LIVE_SHARDS = obs.gauge(
    "repro_fabric_live_shards",
    "shard worker processes currently believed alive",
)
_STEALS = obs.counter(
    "repro_fabric_steals_total",
    "chunks stolen by an idle shard from a loaded peer",
)
_RESTARTS = obs.counter(
    "repro_fabric_restarts_total",
    "shard worker restarts by cause",
    ("reason",),
)
_RESTART_SECONDS = obs.histogram(
    "repro_fabric_restart_seconds",
    "time to replace a dead or stalled shard process",
)
_MERGE_SECONDS = obs.histogram(
    "repro_fabric_merge_seconds",
    "time to fold one shard store into the campaign rollup",
)


class FabricError(RuntimeError):
    """The fabric cannot make progress (e.g. every shard is dead)."""


class MergeDivergenceError(FabricError):
    """Two stores hold different content for the same visit.

    This is the invariant the whole design rests on — visits are
    deterministic functions of the population, so duplicated work from
    crash/steal overlap must be byte-identical.  Divergence means a bug
    (or at-rest corruption), never something to paper over.
    """


def resolve_shards(shards: int) -> int:
    """Resolve the CLI's 0-sentinel: auto-size from the CPU count."""
    if shards < 0:
        raise ValueError("shards must be >= 0 (0 = auto from os.cpu_count())")
    return shards if shards > 0 else (os.cpu_count() or 1)


@dataclass(frozen=True, slots=True)
class FabricConfig:
    """Coordinator tuning knobs (defaults suit tests and laptop runs)."""

    shards: int
    #: Domains per chunk; 0 auto-sizes to ~4 chunks per shard so there
    #: is always surplus to steal.
    chunk_size: int = 0
    retries: int = 1
    check_connectivity: bool = False
    checkpoint_every: int = 1
    heartbeat_interval_s: float = 0.2
    #: No heartbeat for this long (while a chunk is in flight) = stalled.
    heartbeat_timeout_s: float = 10.0
    #: A spawned process must report ready within this budget.
    spawn_timeout_s: float = 60.0
    #: Restart budget per shard; exhausted = the shard is abandoned and
    #: its work is reassigned to surviving peers.
    max_restarts: int = 2
    poll_interval_s: float = 0.02
    #: How long to wait for drained shards to exit before killing them.
    drain_timeout_s: float = 30.0
    #: Archive document encoding ("json"/"binary"; None = codec default).
    netlog_format: str | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1 once resolved")
        if self.chunk_size < 0:
            raise ValueError("chunk_size must be >= 0 (0 = auto)")
        if self.retries < 1:
            raise ValueError("retries must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")


@dataclass(frozen=True, slots=True)
class _Chunk:
    chunk_id: int
    domains: tuple[str, ...]


@dataclass(slots=True)
class _ShardHandle:
    """Coordinator-side view of one shard worker."""

    shard_id: int
    store_path: str
    archive_dir: str | None
    process: multiprocessing.process.BaseProcess | None = None
    tasks: object = None
    events: object = None
    generation: int = 0
    pending: collections.deque = field(default_factory=collections.deque)
    inflight: _Chunk | None = None
    ready: bool = False
    drained: bool = False
    dead: bool = False
    restarts: int = 0
    visits: int = 0
    last_seen: float = 0.0
    spawned_at: float = 0.0
    last_error: str = ""


@dataclass(slots=True)
class FabricReport:
    """What the fabric did to finish the campaign (for benches/tests)."""

    shards: int
    chunks: int = 0
    steals: int = 0
    restarts: dict[int, list[str]] = field(default_factory=dict)
    dead_shards: list[int] = field(default_factory=list)
    rows_merged: int = 0
    #: Rows a second store also held — crash/steal overlap, proven
    #: content-identical during the merge.
    duplicate_rows: int = 0
    dead_letters_merged: int = 0
    archive_docs_merged: int = 0
    merge_seconds: float = 0.0
    visits: int = 0
    interrupted: bool = False

    @property
    def total_restarts(self) -> int:
        return sum(len(reasons) for reasons in self.restarts.values())


@dataclass(slots=True)
class FabricResult:
    result: CampaignResult
    report: FabricReport


class CrawlFabric:
    """Coordinator: shard the population, supervise, merge, prove.

    ``workdir`` holds the per-shard stores (``shard-NN.db``), per-shard
    NetLog archive directories, and (by default) the rollup store; it is
    the unit of fabric resume — keep it to resume an interrupted run,
    delete it to start over.
    """

    def __init__(
        self,
        spec: PopulationSpec,
        config: FabricConfig,
        *,
        workdir: str,
        rollup_path: str | None = None,
        archive_root: str | None = None,
        fault_plan: FaultPlan | None = None,
        on_visit=None,
    ) -> None:
        self.spec = spec
        self.config = config
        self.workdir = workdir
        self.rollup_path = rollup_path or os.path.join(workdir, "rollup.db")
        self.archive_root = archive_root
        self.fault_plan = fault_plan
        #: Coarse live-progress hook: called with the per-shard visit
        #: total whenever a heartbeat or chunk completion arrives.
        self.on_visit = on_visit
        self.report = FabricReport(shards=config.shards)
        os.makedirs(workdir, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def _store_path(self, shard_id: int) -> str:
        return os.path.join(self.workdir, f"shard-{shard_id:02d}.db")

    def _archive_dir(self, shard_id: int) -> str | None:
        if self.archive_root is None:
            return None
        return os.path.join(self.workdir, f"netlog-{shard_id:02d}")

    def _shard_store_paths(self) -> list[str]:
        return sorted(
            os.path.join(self.workdir, name)
            for name in os.listdir(self.workdir)
            if name.startswith("shard-") and name.endswith(".db")
        )

    # -- the run -----------------------------------------------------------

    def run(self, *, resume: bool = False) -> FabricResult:
        population = self.spec.build()
        crawl = population.name

        if resume:
            # Fold whatever an interrupted run left behind first, so the
            # remaining-work computation sees every committed row.
            self._merge_all(crawl)

        remaining = self._remaining_domains(population, resume=resume)
        chunks = self._partition(remaining)
        self.report.chunks = len(chunks)

        interrupted = False
        if chunks:
            interrupted = self._supervise(chunks)
        self._merge_all(crawl)
        if interrupted:
            self.report.interrupted = True
            raise CampaignInterrupted(
                "sharded campaign drained on signal; shard stores merged — "
                "rerun with resume to finish"
            )
        result = self._assemble(population)
        return FabricResult(result=result, report=self.report)

    # -- planning ----------------------------------------------------------

    def _remaining_domains(
        self, population, *, resume: bool
    ) -> list[str]:
        if not resume or not os.path.exists(self.rollup_path):
            return [w.domain for w in population.websites]
        with TelemetryStore(self.rollup_path, wal=True) as rollup:
            done: set[str] | None = None
            for os_name in population.oses:
                completed = rollup.completed_domains(population.name, os_name)
                done = completed if done is None else (done & completed)
        done = done or set()
        # Domains recorded for only *some* OSes are re-crawled whole: the
        # duplicate rows are content-identical and the merge dedupes them.
        return [w.domain for w in population.websites if w.domain not in done]

    def _partition(self, domains: list[str]) -> list[_Chunk]:
        if not domains:
            return []
        size = self.config.chunk_size
        if size <= 0:
            size = max(1, -(-len(domains) // (self.config.shards * 4)))
        return [
            _Chunk(chunk_id=index, domains=tuple(domains[start:start + size]))
            for index, start in enumerate(range(0, len(domains), size))
        ]

    # -- supervision loop --------------------------------------------------

    def _supervise(self, chunks: list[_Chunk]) -> bool:
        """Run the worker fleet until every chunk completes.

        Returns True if a signal interrupted the run (after draining the
        children), False on normal completion.
        """
        ctx = multiprocessing.get_context("spawn")
        self._ctx = ctx
        self._stop = ctx.Event()
        shards: dict[int, _ShardHandle] = {
            shard_id: _ShardHandle(
                shard_id=shard_id,
                store_path=self._store_path(shard_id),
                archive_dir=self._archive_dir(shard_id),
            )
            for shard_id in range(self.config.shards)
        }
        # Home assignment stripes chunks round-robin across shards;
        # stealing rebalances from there.
        for index, chunk in enumerate(chunks):
            shards[index % self.config.shards].pending.append(chunk)

        completed: set[int] = set()
        interrupted = False
        self._handles = list(shards.values())
        previous_handlers = self._install_signal_handlers()
        try:
            for handle in shards.values():
                self._spawn(handle)
            while len(completed) < len(chunks):
                if self._stop.is_set():
                    interrupted = True
                    break
                progressed = self._pump_events(shards, completed)
                self._check_liveness(shards)
                if not any(
                    not handle.dead for handle in shards.values()
                ):
                    raise FabricError(
                        "every shard exhausted its restart budget; "
                        f"last error: {self._last_error(shards)!r}"
                    )
                if not progressed:
                    time.sleep(self.config.poll_interval_s)
            self._drain(shards, interrupted=interrupted)
        finally:
            self._restore_signal_handlers(previous_handlers)
            for handle in shards.values():
                self._reap(handle)
            _LIVE_SHARDS.set(0)
        return interrupted

    def _install_signal_handlers(self):
        import signal as signal_module

        def request_drain(signum, frame):
            del frame
            # Propagates to every shard through the shared stop event;
            # children flush their stores before exiting, and the
            # coordinator checkpoints by merging what they committed.
            self._stop.set()

        previous = {}
        try:
            for signum in (signal_module.SIGINT, signal_module.SIGTERM):
                previous[signum] = signal_module.signal(signum, request_drain)
        except ValueError:
            # Not the main thread (tests, embedding): signals stay where
            # they are; the stop event can still be set directly.
            pass
        return previous

    def _restore_signal_handlers(self, previous) -> None:
        import signal as signal_module

        for signum, handler in previous.items():
            signal_module.signal(signum, handler)

    def _spawn(self, handle: _ShardHandle) -> None:
        config = ShardConfig(
            shard_id=handle.shard_id,
            generation=handle.generation,
            spec=self.spec,
            store_path=handle.store_path,
            archive_dir=handle.archive_dir,
            fault_plan=self.fault_plan,
            retries=self.config.retries,
            check_connectivity=self.config.check_connectivity,
            checkpoint_every=self.config.checkpoint_every,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            netlog_format=self.config.netlog_format,
        )
        handle.tasks = self._ctx.Queue()
        handle.events = self._ctx.Queue()
        # Daemon workers: if the coordinator dies anyway, the runtime
        # reaps them instead of leaving orphans holding the stores.
        process = self._ctx.Process(
            target=run_shard,
            args=(config, handle.tasks, handle.events, self._stop),
            name=f"repro-shard-{handle.shard_id}",
            daemon=True,
        )
        process.start()
        handle.process = process
        handle.ready = False
        handle.drained = False
        handle.spawned_at = time.monotonic()
        handle.last_seen = handle.spawned_at
        self._update_live_gauge()

    def _update_live_gauge(self) -> None:
        # The gauge reflects processes with a live OS pid.
        live = 0
        for handle in getattr(self, "_handles", ()):
            if handle.process is not None and handle.process.is_alive():
                live += 1
        _LIVE_SHARDS.set(live)

    def _pump_events(
        self, shards: dict[int, _ShardHandle], completed: set[int]
    ) -> bool:
        progressed = False
        now = time.monotonic()
        for handle in shards.values():
            if handle.events is None or handle.dead:
                continue
            while True:
                try:
                    event = handle.events.get_nowait()
                except queue.Empty:
                    break
                except (EOFError, OSError):
                    break  # channel torn by a killed producer
                progressed = True
                kind = event[0]
                if event[2] != handle.generation:
                    continue  # stale: a previous incarnation's tail
                handle.last_seen = now
                if kind == shard_proto.EVENT_READY:
                    handle.ready = True
                    self._dispatch(handle, shards)
                elif kind == shard_proto.EVENT_HEARTBEAT:
                    handle.visits = event[3]
                    self._report_progress(shards)
                elif kind == shard_proto.EVENT_CHUNK_DONE:
                    _, _, _, chunk_id, visits = event
                    handle.visits = visits
                    if (
                        handle.inflight is not None
                        and handle.inflight.chunk_id == chunk_id
                    ):
                        handle.inflight = None
                    completed.add(chunk_id)
                    self._report_progress(shards)
                    self._dispatch(handle, shards)
                elif kind == shard_proto.EVENT_DRAINED:
                    handle.drained = True
                    handle.visits = event[3]
                elif kind == shard_proto.EVENT_ERROR:
                    handle.last_error = event[3]
        self._update_live_gauge()
        return progressed

    def _report_progress(self, shards: dict[int, _ShardHandle]) -> None:
        if self.on_visit is not None:
            self.on_visit(sum(h.visits for h in shards.values()))

    def _dispatch(
        self, handle: _ShardHandle, shards: dict[int, _ShardHandle]
    ) -> None:
        if handle.dead or not handle.ready or handle.tasks is None:
            return
        if handle.inflight is not None:
            # A restarted generation re-runs its in-flight chunk; resume
            # skips whatever the dead generation already committed.
            self._send_chunk(handle, handle.inflight)
            return
        if handle.pending:
            chunk = handle.pending.popleft()
        else:
            victim = max(
                (
                    peer
                    for peer in shards.values()
                    if peer is not handle and not peer.dead and peer.pending
                ),
                key=lambda peer: len(peer.pending),
                default=None,
            )
            if victim is None:
                return  # nothing to do: stay idle until drain
            # Steal from the tail: the victim's furthest-future work.
            chunk = victim.pending.pop()
            self.report.steals += 1
            _STEALS.inc()
        handle.inflight = chunk
        self._send_chunk(handle, chunk)

    def _send_chunk(self, handle: _ShardHandle, chunk: _Chunk) -> None:
        handle.tasks.put(
            (shard_proto.TASK_CHUNK, chunk.chunk_id, chunk.domains)
        )

    def _check_liveness(self, shards: dict[int, _ShardHandle]) -> None:
        now = time.monotonic()
        for handle in shards.values():
            if handle.dead or handle.process is None:
                continue
            exitcode = handle.process.exitcode
            if exitcode is not None and not handle.drained:
                self._restart(handle, shards, reason="crash")
                continue
            if not handle.ready:
                if now - handle.spawned_at > self.config.spawn_timeout_s:
                    self._restart(handle, shards, reason="spawn-timeout")
                continue
            if (
                handle.inflight is not None
                and now - handle.last_seen > self.config.heartbeat_timeout_s
            ):
                self._restart(handle, shards, reason="stall")

    def _restart(
        self,
        handle: _ShardHandle,
        shards: dict[int, _ShardHandle],
        *,
        reason: str,
    ) -> None:
        started = time.monotonic()
        self.report.restarts.setdefault(handle.shard_id, []).append(reason)
        _RESTARTS.inc(labels=(reason,))
        self._reap(handle)
        if handle.restarts >= self.config.max_restarts:
            # Budget exhausted: abandon the shard, reassign its work.
            # Its committed rows still reach the rollup at merge time.
            handle.dead = True
            self.report.dead_shards.append(handle.shard_id)
            orphans = list(handle.pending)
            if handle.inflight is not None:
                orphans.insert(0, handle.inflight)
                handle.inflight = None
            handle.pending.clear()
            survivors = [h for h in shards.values() if not h.dead]
            for index, chunk in enumerate(orphans):
                if survivors:
                    survivors[index % len(survivors)].pending.append(chunk)
            for survivor in survivors:
                self._dispatch(survivor, shards)
            return
        handle.restarts += 1
        handle.generation += 1
        self._spawn(handle)
        _RESTART_SECONDS.observe(time.monotonic() - started)

    def _reap(self, handle: _ShardHandle) -> None:
        """Kill the process (if needed) and tear down its queues."""
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=5.0)
        for channel in (handle.tasks, handle.events):
            if channel is None:
                continue
            try:
                channel.close()
                channel.cancel_join_thread()
            except (OSError, AttributeError):
                pass
        handle.tasks = None
        handle.events = None

    def _drain(
        self, shards: dict[int, _ShardHandle], *, interrupted: bool
    ) -> None:
        """Ask every live shard to flush and exit; wait, then reap."""
        if interrupted:
            self._stop.set()
        for handle in shards.values():
            if handle.dead or handle.process is None or handle.tasks is None:
                continue
            try:
                handle.tasks.put((shard_proto.TASK_DRAIN,))
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + self.config.drain_timeout_s
        waiting = [
            h for h in shards.values()
            if not h.dead and h.process is not None
        ]
        while waiting and time.monotonic() < deadline:
            self._pump_events(shards, set())
            waiting = [
                h for h in waiting
                if h.process.exitcode is None and not h.drained
            ]
            if waiting:
                time.sleep(self.config.poll_interval_s)
        for handle in shards.values():
            self._reap(handle)
        self.report.visits = sum(h.visits for h in shards.values())

    def _last_error(self, shards: dict[int, _ShardHandle]) -> str:
        for handle in shards.values():
            if handle.last_error:
                return handle.last_error
        return ""

    # -- merge -------------------------------------------------------------

    def _merge_all(self, crawl: str) -> None:
        """Fold every shard store (and archive) into the rollup.

        Idempotent: already-merged rows are verified (digest equality)
        and skipped, so a merge interrupted at any point — even killed
        mid-fold — converges when re-run.
        """
        started = time.monotonic()
        with TelemetryStore(self.rollup_path, wal=True) as rollup:
            for path in self._shard_store_paths():
                fold_started = time.monotonic()
                with TelemetryStore(path, wal=True) as source:
                    self._merge_store(source, rollup, crawl)
                _MERGE_SECONDS.observe(time.monotonic() - fold_started)
            rollup.commit()
        if self.archive_root is not None:
            self._merge_archives(crawl)
        self.report.merge_seconds += time.monotonic() - started

    def _merge_store(
        self, source: TelemetryStore, rollup: TelemetryStore, crawl: str
    ) -> None:
        source_digests = {
            (row[0], row[1]): row[2]
            for row in source.connection.execute(
                "SELECT domain, os_name, COALESCE(digest, '') "
                "FROM visits WHERE crawl = ?",
                (crawl,),
            )
        }
        if not source_digests:
            return
        rollup_digests = {
            (row[0], row[1]): row[2]
            for row in rollup.connection.execute(
                "SELECT domain, os_name, COALESCE(digest, '') "
                "FROM visits WHERE crawl = ?",
                (crawl,),
            )
        }
        detections = {
            os_name: source.detections_for(crawl, os_name)
            for os_name in {key[1] for key in source_digests}
        }
        for row in source.visits(crawl):
            key = (row.domain, row.os_name)
            expected = source_digests[key]
            held = rollup_digests.get(key)
            if held is not None:
                if held != expected:
                    raise MergeDivergenceError(
                        f"visit {crawl}:{row.domain}:{row.os_name} differs "
                        f"between shard store and rollup "
                        f"({expected[:12]}… vs {held[:12]}…)"
                    )
                self.report.duplicate_rows += 1
                continue
            detection = detections[row.os_name].get(row.domain)
            visit_id = rollup.record_visit(
                crawl,
                row.domain,
                row.os_name,
                success=row.success,
                error=row.error,
                rank=row.rank,
                category=row.category,
                skipped=row.skipped,
                attempts=row.attempts,
                detection=detection,
            )
            written = rollup.connection.execute(
                "SELECT digest FROM visits WHERE visit_id = ?", (visit_id,)
            ).fetchone()[0]
            if written != expected:
                # The rollup recomputed the digest from the merged facts;
                # disagreement means the shard row was damaged in flight.
                raise MergeDivergenceError(
                    f"visit {crawl}:{row.domain}:{row.os_name} failed "
                    f"digest re-verification on merge "
                    f"({expected[:12]}… vs {written[:12]}…)"
                )
            rollup_digests[key] = expected
            self.report.rows_merged += 1
        for letter in source.dead_letters(crawl):
            rollup.record_dead_letter(
                letter.crawl,
                letter.domain,
                letter.os_name,
                error=letter.error,
                failures=letter.failures,
                reason=letter.reason,
            )
            self.report.dead_letters_merged += 1

    def _merge_archives(self, crawl: str) -> None:
        assert self.archive_root is not None
        destination = NetLogArchive(self.archive_root)
        for shard_id in range(self.config.shards):
            shard_dir = self._archive_dir(shard_id)
            if shard_dir is None or not os.path.isdir(shard_dir):
                continue
            source = NetLogArchive(shard_dir)
            for path in source.entries(crawl):
                os_name, domain_file = path.parts[-2], path.parts[-1]
                codec = codec_for_suffix(path.suffix)
                if codec is None:  # pragma: no cover - entries() filters
                    continue
                target = destination.path_for(
                    crawl,
                    os_name,
                    domain_file[: -len(codec.suffix)],
                    format=codec.name,
                )
                if target.exists():
                    continue  # checksummed duplicates are identical
                target.parent.mkdir(parents=True, exist_ok=True)
                shutil.copyfile(path, target)
                self.report.archive_docs_merged += 1

    # -- result assembly ---------------------------------------------------

    def _assemble(self, population) -> CampaignResult:
        """Rebuild the exact serial CampaignResult from the rollup.

        A resumed campaign over a store that already holds every visit
        crawls nothing: it restores stats and findings from the rows,
        classifies, and sorts — the identical code path a single-process
        run finishes with, which is why the output is byte-identical.
        (If a row is somehow missing it is crawled here, serially —
        self-healing, and still deterministic.)
        """
        with TelemetryStore(self.rollup_path, wal=True) as rollup:
            campaign = Campaign(store=rollup)
            result = campaign.run(population, resume=True)
        return result
