"""Supervised, deterministic worker-pool executor for campaign visits.

The sequential campaign loop (one visit at a time, no supervision) has
two failure modes the paper's own crawls hit: a single wedged visit
stalls the whole run forever, and a deterministically-failing visit
re-kills every resumed run.  This executor fixes both while keeping the
property the whole analysis stack depends on — **results are invariant
under the worker count**:

* Visits are assigned to ``workers`` round-robin in submission order and
  merged back in that order, so Table 1/Table 5 outputs are byte-identical
  at ``--workers 1`` and ``--workers 8``.
* Every visit attempt runs under a dual deadline: a *simulated* budget
  (``visit_deadline_ms``, mirroring the paper's 20 s NetLog window — a
  ``slow`` fault that stalls past it is cancelled deterministically) and
  a *wall-clock* guard enforced by the :class:`~.watchdog.Watchdog`
  (a ``hang`` fault — or a real wedge — is cancelled at most one poll
  interval past the deadline).
* Cancelled attempts are re-tried up to ``quarantine_after`` times; a
  visit that keeps failing is parked exactly once in the store's
  persistent dead-letter queue and recorded as an ``ERR_VISIT_DEADLINE``
  Table 1 failure, so resumed campaigns never re-poison themselves.
* SIGINT/SIGTERM request a graceful drain: dispatch stops, in-flight
  visits finish (or are cancelled by the watchdog), checkpoints flush,
  and :class:`CampaignInterrupted` propagates — a later ``--resume`` is
  fingerprint-identical to an uninterrupted run.

Determinism under concurrency comes from two rules: all per-visit fault
state is keyed by the visit itself (see
:meth:`~repro.faults.injector.FaultInjector.scoped`), and all
counter-triggered faults fire on the deterministic *submission index*
rather than any live execution counter.
"""

from __future__ import annotations

import queue
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from .. import obs
from ..browser.errors import NetError
from ..faults.injector import FaultInjector, InjectedCrashError, ScopedFaultInjector
from ..faults.plan import FaultKind
from ..web.website import Website
from .crawl import Crawler, CrawlRecord
from .watchdog import CancelToken, VisitCancelled, VisitGuard, Watchdog

#: Queue sentinel telling a worker thread its pass is over.
_STOP = object()

_DISPATCHED = obs.counter(
    "repro_executor_dispatched_total",
    "visits handed to the supervised worker pool",
)
_QUEUE_DEPTH = obs.gauge(
    "repro_executor_queue_depth",
    "visits enqueued to workers but not yet started",
)
_WORKER_BUSY = obs.counter(
    "repro_executor_worker_busy_seconds_total",
    "wall-clock seconds each worker spent executing visits "
    "(utilisation = busy seconds / pass wall time)",
    ("worker",),
)
_WORKER_VISITS = obs.counter(
    "repro_executor_worker_visits_total",
    "visits completed per worker",
    ("worker",),
)
_DEADLINE_CANCELLED = obs.counter(
    "repro_executor_deadline_cancelled_total",
    "attempts cancelled by the wall-clock watchdog (hangs rescued)",
)
_DEADLINE_EXCEEDED = obs.counter(
    "repro_executor_deadline_exceeded_total",
    "attempts cancelled on the simulated visit budget (slow visits)",
)
_REATTEMPTS = obs.counter(
    "repro_executor_reattempts_total",
    "re-attempts the supervisor scheduled after deadline failures",
)
_QUARANTINED = obs.counter(
    "repro_executor_quarantined_total",
    "visits parked in the dead-letter queue",
)


class CampaignInterrupted(RuntimeError):
    """A signal drained the campaign; checkpoints were flushed first."""


class _SimulatedDeadlineExceeded(Exception):
    """Internal: a visit's simulated cost overran ``visit_deadline_ms``."""


@dataclass(frozen=True, slots=True)
class ExecutorConfig:
    """Tuning knobs for one supervised campaign run."""

    #: Parallel visit workers (each owns a browser instance).
    workers: int = 1
    #: Simulated per-visit budget; must exceed the monitor window.
    visit_deadline_ms: float = 25_000.0
    #: Wall-clock guard per visit attempt — the hang rescue.
    wall_deadline_s: float = 5.0
    #: Watchdog scan period; bounds cancellation latency.
    watchdog_poll_s: float = 0.05
    #: Deadline failures before a visit is dead-lettered (K).
    quarantine_after: int = 3
    #: Install SIGINT/SIGTERM drain handlers while running.
    handle_signals: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.visit_deadline_ms <= 0:
            raise ValueError("visit deadline must be positive")
        if self.wall_deadline_s <= 0:
            raise ValueError("wall deadline must be positive")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")


@dataclass(slots=True)
class ExecutorStats:
    """What supervision actually did during one campaign run."""

    dispatched: int = 0
    completed: int = 0
    #: Attempts cancelled by the wall-clock watchdog (hangs rescued).
    deadline_cancelled: int = 0
    #: Attempts cancelled on the simulated budget (slow visits).
    deadline_exceeded: int = 0
    #: Slow visits that stayed within budget and were ridden out.
    slow_ridden_out: int = 0
    #: Re-attempts the supervisor scheduled after deadline failures.
    reattempts: int = 0
    #: Visits parked in the dead-letter queue.
    quarantined: int = 0
    #: Workers written off after ignoring cancellation (true wedges).
    abandoned_workers: int = 0
    #: A signal drained this run.
    drained: bool = False
    #: Worst wall-clock overshoot past the deadline among cancelled
    #: attempts — the bench asserts this stays under one poll interval.
    max_overshoot_s: float = 0.0


@dataclass(slots=True)
class VisitTask:
    """One scheduled visit: (OS, website) at a deterministic index."""

    index: int  # 1-based submission index, global across OS passes
    os_name: str
    website: Website


@dataclass(slots=True)
class VisitOutcome:
    """One finished visit, with its supervision trail."""

    task: VisitTask
    record: CrawlRecord
    worker_id: int
    #: Deadline failures the supervisor absorbed before this outcome.
    deadline_failures: int = 0
    quarantined: bool = False


@dataclass(slots=True)
class _WorkerError:
    """A worker thread died on an unexpected exception."""

    task: VisitTask
    error: BaseException


class _Worker:
    """One executor worker: a thread, a browser, and scoped fault state."""

    __slots__ = (
        "id", "queue", "crawler", "scoped", "fault_attempts",
        "current_task", "poisoned", "thread",
    )

    def __init__(
        self,
        worker_id: int,
        task_queue: "queue.Queue",
        crawler: Crawler,
        scoped: ScopedFaultInjector | None,
    ) -> None:
        self.id = worker_id
        self.queue = task_queue
        self.crawler = crawler
        self.scoped = scoped
        #: Worker-local attempt counters for executor-driven fault kinds
        #: (hang/slow) — local because a visit's re-attempts always run
        #: on the worker that owns it, which keeps them order-free.
        self.fault_attempts: dict[tuple[FaultKind, str, str], int] = {}
        self.current_task: VisitTask | None = None
        self.poisoned = False
        self.thread: threading.Thread | None = None

    def bump_fault_attempt(self, kind: FaultKind, os_name: str, domain: str) -> int:
        key = (kind, os_name, domain)
        count = self.fault_attempts.get(key, 0) + 1
        self.fault_attempts[key] = count
        return count


class SupervisedExecutor:
    """Runs campaign visits through a supervised worker pool."""

    def __init__(self, config: ExecutorConfig | None = None) -> None:
        self.config = config if config is not None else ExecutorConfig()
        self.stats = ExecutorStats()
        self.watchdog = Watchdog(
            poll_interval_s=self.config.watchdog_poll_s,
            on_abandon=self._on_abandon,
        )
        self._stats_lock = threading.Lock()
        self._drain = threading.Event()
        self._workers_by_id: dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._results: "queue.Queue" = queue.Queue()
        # Per-pass wiring, set by run_pass (passes never overlap).
        self._crawler_factory: Callable[
            [ScopedFaultInjector | None], Crawler
        ] | None = None
        self._injector: FaultInjector | None = None
        self._persist: Callable[[str, CrawlRecord], None] | None = None
        self._dead_letter: Callable[[str, CrawlRecord, int], None] | None = None
        self._on_outcome: Callable[[VisitOutcome], None] | None = None

    # -- lifecycle ---------------------------------------------------------

    @contextmanager
    def supervise(self) -> Iterator["SupervisedExecutor"]:
        """Start the watchdog and signal handlers for a campaign run."""
        self._drain.clear()
        self.watchdog.start()
        restore = self._install_signal_handlers()
        try:
            yield self
        finally:
            restore()
            self.watchdog.stop()

    def request_drain(self) -> None:
        """Ask for a graceful drain (what the signal handlers call)."""
        self._drain.set()

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def _install_signal_handlers(self) -> Callable[[], None]:
        if (
            not self.config.handle_signals
            or threading.current_thread() is not threading.main_thread()
        ):
            return lambda: None
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, self._on_signal)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                continue

        def restore() -> None:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

        return restore

    def _on_signal(self, signum: int, frame: object) -> None:
        self._drain.set()

    # -- one OS pass -------------------------------------------------------

    def run_pass(
        self,
        os_name: str,
        websites: Sequence[Website],
        *,
        crawler_factory: Callable[[ScopedFaultInjector | None], Crawler],
        injector: FaultInjector | None = None,
        index_base: int = 0,
        persist: Callable[[str, CrawlRecord], None] | None = None,
        dead_letter: Callable[[str, CrawlRecord, int], None] | None = None,
        on_outcome: Callable[[VisitOutcome], None] | None = None,
    ) -> list[VisitOutcome]:
        """Crawl one OS pass through the pool; outcomes in submission order.

        ``index_base`` is the number of visits scheduled by earlier
        passes — it keeps the global submission index (which
        counter-triggered faults key on) deterministic across passes.

        ``on_outcome`` is a live-progress hook called from worker
        threads the moment each visit is delivered (out of submission
        order — merge ordering is unaffected); it must be thread-safe
        and must not raise.

        ``persist`` runs on the worker thread that produced the record,
        so a capturing campaign's streamed NetLog buffer
        (:attr:`CrawlRecord.netlog`) is archived — and released — before
        the worker takes its next visit: at most ``workers`` serialised
        captures are ever held at once.

        Raises :class:`InjectedCrashError` when the plan schedules a
        crash inside this pass and :class:`CampaignInterrupted` when a
        signal drained it; in both cases every collected outcome has
        already been persisted.
        """
        self._crawler_factory = crawler_factory
        self._injector = injector
        self._persist = persist
        self._dead_letter = dead_letter
        self._on_outcome = on_outcome
        self._results = queue.Queue()
        self._check_deadline_budget(crawler_factory(None))

        workers = [self._spawn_worker() for _ in range(self.config.workers)]
        queues = [worker.queue for worker in workers]

        crash: InjectedCrashError | None = None
        dispatched = 0
        try:
            for offset, website in enumerate(websites):
                if self._drain.is_set():
                    self.stats.drained = True
                    break
                index = index_base + offset + 1
                crash = self._scheduled_crash(index)
                if crash is not None:
                    break
                task = VisitTask(index=index, os_name=os_name, website=website)
                queues[offset % len(queues)].put(task)
                dispatched += 1
                _DISPATCHED.inc()
                _QUEUE_DEPTH.inc()
                with self._stats_lock:
                    self.stats.dispatched += 1
        finally:
            for task_queue in queues:
                task_queue.put(_STOP)

        outcomes, failure = self._collect(dispatched)
        self._join_workers()
        if failure is not None:
            raise failure.error
        if crash is not None:
            raise crash
        if self.stats.drained:
            raise CampaignInterrupted(
                f"campaign drained after signal: {len(outcomes)} in-flight "
                "visits completed and checkpointed; resume with --resume"
            )
        return [outcomes[index] for index in sorted(outcomes)]

    def _collect(
        self, dispatched: int
    ) -> tuple[dict[int, VisitOutcome], _WorkerError | None]:
        outcomes: dict[int, VisitOutcome] = {}
        failure: _WorkerError | None = None
        while len(outcomes) < dispatched:
            item = self._results.get()
            if isinstance(item, _WorkerError):
                if failure is None:
                    failure = item
                # The task produced no outcome; stop waiting for it.
                dispatched -= 1
                continue
            if item.task.index in outcomes:
                continue  # stale duplicate from an abandoned worker
            outcomes[item.task.index] = item
            with self._stats_lock:
                self.stats.completed += 1
        return outcomes, failure

    def _spawn_worker(self) -> _Worker:
        worker_queue: "queue.Queue" = queue.Queue(maxsize=2)
        return self._spawn_worker_on(worker_queue)

    def _spawn_worker_on(self, worker_queue: "queue.Queue") -> _Worker:
        assert self._crawler_factory is not None
        scoped = self._injector.scoped() if self._injector is not None else None
        with self._stats_lock:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
        worker = _Worker(
            worker_id, worker_queue, self._crawler_factory(scoped), scoped
        )
        with self._stats_lock:
            self._workers_by_id[worker.id] = worker
        worker.thread = threading.Thread(
            target=self._worker_loop,
            args=(worker,),
            name=f"crawl-worker-{worker.id}",
            daemon=True,
        )
        worker.thread.start()
        return worker

    def _join_workers(self) -> None:
        with self._stats_lock:
            workers = list(self._workers_by_id.values())
            self._workers_by_id.clear()
        for worker in workers:
            if worker.poisoned:
                continue  # wedged thread; written off, daemonic
            if worker.thread is not None:
                worker.thread.join(timeout=10.0)

    def _check_deadline_budget(self, crawler: Crawler) -> None:
        window = crawler.environment.monitor_window_ms
        if self.config.visit_deadline_ms <= window:
            raise ValueError(
                f"visit deadline ({self.config.visit_deadline_ms:.0f} ms) must "
                f"exceed the monitor window ({window:.0f} ms)"
            )

    def _scheduled_crash(self, index: int) -> InjectedCrashError | None:
        if self._injector is None:
            return None
        for spec in self._injector.plan.specs(FaultKind.CRASH):
            if spec.at_count is not None and spec.at_count == index:
                self._injector.record_injection(FaultKind.CRASH)
                return InjectedCrashError(f"injected crash at visit {index}")
        return None

    # -- worker side -------------------------------------------------------

    def _worker_loop(self, worker: _Worker) -> None:
        worker_label = (str(worker.id),)
        while True:
            if worker.poisoned:
                return
            task = worker.queue.get()
            if task is _STOP:
                return
            _QUEUE_DEPTH.dec()
            busy_start = time.perf_counter() if _WORKER_BUSY.enabled else 0.0
            try:
                outcome = self._execute(worker, task)
            except BaseException as exc:  # storage failures etc.
                # Fail this task, then drain the rest of the queue as
                # failures too, so the collector never waits on a task a
                # dead worker will not run.
                self._results.put(_WorkerError(task=task, error=exc))
                while True:
                    leftover = worker.queue.get()
                    if leftover is _STOP:
                        return
                    _QUEUE_DEPTH.dec()
                    self._results.put(_WorkerError(task=leftover, error=exc))
            if _WORKER_BUSY.enabled:
                _WORKER_BUSY.inc(
                    time.perf_counter() - busy_start, labels=worker_label
                )
                _WORKER_VISITS.inc(labels=worker_label)
            if outcome is not None:
                self._results.put(outcome)

    def _execute(self, worker: _Worker, task: VisitTask) -> VisitOutcome | None:
        config = self.config
        website = task.website
        context = f"{task.os_name}:{website.domain}"
        deadline_failures = 0
        record: CrawlRecord | None = None
        quarantined = False
        while True:
            if worker.poisoned:
                return None  # written off mid-task by the watchdog
            worker.current_task = task
            token = CancelToken()
            started = time.monotonic()
            failed_deadline = False
            with self.watchdog.watch(
                worker.id, context, config.wall_deadline_s, token
            ):
                try:
                    record = self._attempt(worker, task, token)
                except VisitCancelled:
                    failed_deadline = True
                    overshoot = (
                        time.monotonic() - started - config.wall_deadline_s
                    )
                    _DEADLINE_CANCELLED.inc()
                    with self._stats_lock:
                        self.stats.deadline_cancelled += 1
                        if overshoot > self.stats.max_overshoot_s:
                            self.stats.max_overshoot_s = overshoot
                except _SimulatedDeadlineExceeded:
                    failed_deadline = True
                    _DEADLINE_EXCEEDED.inc()
                    with self._stats_lock:
                        self.stats.deadline_exceeded += 1
            if not failed_deadline:
                break
            deadline_failures += 1
            if deadline_failures >= config.quarantine_after:
                record = self._deadline_record(task, deadline_failures)
                quarantined = True
                break
            _REATTEMPTS.inc()
            with self._stats_lock:
                self.stats.reattempts += 1

        assert record is not None
        if deadline_failures and not quarantined:
            # Fold the supervisor's absorbed attempts into the record so
            # Table 1 attempt accounting stays honest.
            record.attempts += deadline_failures
        worker.current_task = None
        return self._deliver(worker, task, record, deadline_failures, quarantined)

    def _attempt(
        self, worker: _Worker, task: VisitTask, token: CancelToken
    ) -> CrawlRecord:
        """One supervised visit attempt on ``worker``'s browser."""
        website = task.website
        scoped = worker.scoped
        if scoped is not None:
            scoped.begin_visit(f"{task.os_name}:{website.domain}", task.index)
            plan = scoped.plan
            hang_depth = plan.fail_depth(FaultKind.HANG, website.domain)
            if hang_depth:
                count = worker.bump_fault_attempt(
                    FaultKind.HANG, task.os_name, website.domain
                )
                if count <= hang_depth:
                    scoped.base.record_injection(FaultKind.HANG)
                    self._wedge(token)  # raises VisitCancelled
        record = worker.crawler.crawl_site(website)
        if scoped is not None:
            stall_ms = self._slow_stall_ms(worker, task)
            if stall_ms:
                scoped.base.record_injection(FaultKind.SLOW)
                window = worker.crawler.environment.monitor_window_ms
                if window + stall_ms > self.config.visit_deadline_ms:
                    raise _SimulatedDeadlineExceeded()
                worker.crawler.clock.advance(stall_ms)
                with self._stats_lock:
                    self.stats.slow_ridden_out += 1
        return record

    def _slow_stall_ms(self, worker: _Worker, task: VisitTask) -> float:
        plan = worker.scoped.plan if worker.scoped is not None else None
        if plan is None:
            return 0.0
        domain = task.website.domain
        specs = [
            spec
            for spec in plan.specs(FaultKind.SLOW)
            if plan.selects(spec, domain)
        ]
        if not specs:
            return 0.0
        count = worker.bump_fault_attempt(FaultKind.SLOW, task.os_name, domain)
        return float(
            max(
                (spec.duration for spec in specs if count <= spec.times),
                default=0,
            )
        )

    def _wedge(self, token: CancelToken) -> None:
        """A hang fault: wedge in wall-clock time until cancelled.

        This is the livelock the watchdog exists for — the loop burns
        real time and the simulated clock never advances, so only the
        wall-clock guard can end it.
        """
        while not token.wait(0.001):
            pass
        raise VisitCancelled("hang fault cancelled by watchdog")

    def _deadline_record(
        self, task: VisitTask, failures: int
    ) -> CrawlRecord:
        website = task.website
        return CrawlRecord(
            domain=website.domain,
            os_name=task.os_name,
            success=False,
            error=NetError.ERR_VISIT_DEADLINE,
            rank=website.rank,
            category=website.category,
            attempts=failures,
        )

    def _deliver(
        self,
        worker: _Worker,
        task: VisitTask,
        record: CrawlRecord,
        deadline_failures: int,
        quarantined: bool,
    ) -> VisitOutcome:
        if self._persist is not None:
            self._persist(task.os_name, record)
        if quarantined:
            _QUARANTINED.inc()
            with self._stats_lock:
                self.stats.quarantined += 1
            if self._dead_letter is not None:
                self._dead_letter(task.os_name, record, deadline_failures)
        outcome = VisitOutcome(
            task=task,
            record=record,
            worker_id=worker.id,
            deadline_failures=deadline_failures,
            quarantined=quarantined,
        )
        if self._on_outcome is not None:
            self._on_outcome(outcome)
        return outcome

    # -- abandonment (true wedges) ----------------------------------------

    def _on_abandon(self, guard: VisitGuard) -> None:
        """Watchdog callback: a worker ignored its cancellation."""
        with self._stats_lock:
            worker = self._workers_by_id.get(guard.worker_id)
            if worker is None or worker.poisoned:
                return
            worker.poisoned = True
            self.stats.abandoned_workers += 1
        task = worker.current_task
        if task is not None:
            record = self._deadline_record(task, failures=1)
            outcome = self._deliver(
                worker, task, record, deadline_failures=1, quarantined=True
            )
            self._results.put(outcome)
        # Replace the worker so its queue keeps draining; the wedged
        # thread is daemonic and can never dequeue again (poisoned).
        self._spawn_worker_on(worker.queue)
