"""Shard worker process: one slice of a sharded campaign.

The sharded fabric (:mod:`repro.crawler.fabric`) partitions a population
into domain chunks and runs each shard as its own *process* (spawned, so
a SIGKILL — OOM killer, operator, chaos plan — takes out exactly one
shard).  :func:`run_shard` is the process entry point: it rebuilds the
population from a picklable :class:`PopulationSpec`, opens the shard's
own WAL-mode :class:`~repro.storage.db.TelemetryStore` (and NetLog
archive directory), and then pulls domain chunks off its task queue,
running each through an ordinary :class:`~repro.crawler.campaign.Campaign`
with per-visit checkpointing and ``resume=True`` — which is what makes a
restarted shard generation skip everything its dead predecessor already
committed.

Everything crossing the process boundary is a plain tuple (see the
``EVENT_*``/``TASK_*`` constants); queues are strictly single-producer
per direction so a killed process can only ever damage its own channel.

The shard evaluates its own ``shard-crash`` / ``shard-stall`` faults:
with a :class:`~repro.faults.FaultPlan` attached, the selected shard
SIGKILLs itself (or stops heartbeating) at a deterministic shard-local
visit index, keyed by shard id and bounded by restart generation — so a
chaos run converges to the same byte-identical rollup on every seed.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
from dataclasses import dataclass, field

from ..faults.injector import FaultInjector
from ..faults.plan import FaultKind, FaultPlan
from ..netlog.archive import NetLogArchive
from ..storage.db import TelemetryStore
from ..web.population import (
    CrawlPopulation,
    build_malicious_population,
    build_top_population,
)
from .campaign import Campaign
from .executor import CampaignInterrupted
from .retry import RetryPolicy

# -- wire protocol (coordinator <-> shard) ----------------------------------

#: Coordinator -> shard: ``(TASK_CHUNK, chunk_id, (domain, ...))``.
TASK_CHUNK = "chunk"
#: Coordinator -> shard: ``(TASK_DRAIN,)`` — flush and exit cleanly.
TASK_DRAIN = "drain"

#: Shard -> coordinator: ``(EVENT_READY, shard_id, generation)``.
EVENT_READY = "ready"
#: Shard -> coordinator: ``(EVENT_HEARTBEAT, shard_id, generation, visits)``.
EVENT_HEARTBEAT = "heartbeat"
#: Shard -> coordinator:
#: ``(EVENT_CHUNK_DONE, shard_id, generation, chunk_id, visits)``.
EVENT_CHUNK_DONE = "chunk-done"
#: Shard -> coordinator: ``(EVENT_DRAINED, shard_id, generation, visits)``.
EVENT_DRAINED = "drained"
#: Shard -> coordinator: ``(EVENT_ERROR, shard_id, generation, message)``.
EVENT_ERROR = "error"

#: Fault kinds a shard's inner campaign must *not* re-evaluate: process
#: lifecycle belongs to the fabric (shard kinds are handled here, at the
#: process level; ``crash`` is the single-process campaign's seam and its
#: visit counter would mean something different inside every chunk).
_PROCESS_LEVEL_KINDS = (
    FaultKind.CRASH,
    FaultKind.SHARD_CRASH,
    FaultKind.SHARD_STALL,
)


@dataclass(frozen=True, slots=True)
class PopulationSpec:
    """Picklable recipe for a population, rebuilt inside each process.

    Spawned workers cannot inherit the parent's population object (and
    shipping 100K ``Website`` objects through a queue would dwarf the
    crawl), so every process rebuilds it from this spec; the builders are
    seeded, so all processes agree on ranks, behaviours, and injected
    load failures.
    """

    #: ``top2020`` / ``top2021`` / ``malicious`` / ``scenario``.
    population: str
    scale: float = 1.0
    #: ``scenario`` only: generated population size and RNG seed.
    size: int = 0
    seed: int = 2021
    #: Top-list populations only: WebRTC policy era, or None for off.
    webrtc_policy: str | None = None

    def build(self) -> CrawlPopulation:
        if self.population == "malicious":
            return build_malicious_population(scale=self.scale)
        if self.population in ("top2020", "top2021"):
            year = 2020 if self.population == "top2020" else 2021
            return build_top_population(
                year, scale=self.scale, webrtc_policy=self.webrtc_policy
            )
        if self.population == "scenario":
            from ..web.generator import ScenarioRates, generate_scenario

            return generate_scenario(
                self.size, ScenarioRates(), seed=self.seed
            ).population
        raise ValueError(f"unknown population {self.population!r}")


@dataclass(frozen=True, slots=True)
class ShardConfig:
    """Everything one shard worker process needs, shipped via spawn."""

    shard_id: int
    generation: int
    spec: PopulationSpec
    store_path: str
    archive_dir: str | None = None
    fault_plan: FaultPlan | None = None
    retries: int = 1
    check_connectivity: bool = False
    #: Store commit cadence in visits (1 = durable per visit; larger
    #: batches trade a bigger resume re-crawl window for throughput —
    #: either way the merge converges, re-crawled rows are
    #: content-identical).
    checkpoint_every: int = 1
    heartbeat_interval_s: float = 0.2
    #: Archive document encoding ("json"/"binary"; None = codec default).
    netlog_format: str | None = None

    @property
    def key(self) -> str:
        """The fault-plan draw key: stable across generations."""
        return f"shard-{self.shard_id}"


def subpopulation(
    population: CrawlPopulation, domains: tuple[str, ...]
) -> CrawlPopulation:
    """The sub-population covering exactly ``domains`` (chunk order)."""
    websites = [population.by_domain[domain] for domain in domains]
    selected = set(domains)
    return CrawlPopulation(
        name=population.name,
        websites=websites,
        oses=population.oses,
        active_domains=population.active_domains & selected,
        webrtc_policy=population.webrtc_policy,
    )


@dataclass(slots=True)
class _ShardState:
    """Mutable per-process state threaded through the visit hook."""

    visits: int = 0
    last_beat: float = 0.0
    drain: threading.Event = field(default_factory=threading.Event)


def run_shard(config: ShardConfig, tasks, events, stop) -> None:
    """Process entry point for one shard worker (spawn target).

    ``tasks``/``events`` are this shard's private queues; ``stop`` is the
    fabric-wide drain event a coordinator signal handler sets.  The loop
    pulls chunks until drained or stopped; every chunk runs as a resumed
    campaign against the shard's own store, so a restarted generation
    re-crawls only what its predecessor never committed.
    """
    # The coordinator owns signal-driven shutdown: a terminal SIGINT
    # reaches the whole process group, and dying mid-write is exactly
    # what the drain protocol exists to avoid.  SIGTERM requests a local
    # drain so an orphaned shard still flushes and exits.
    state = _ShardState()
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, lambda *_: state.drain.set())

    population = config.spec.build()
    injector = (
        FaultInjector(config.fault_plan)
        if config.fault_plan is not None
        else None
    )
    campaign_plan = (
        config.fault_plan.without(*_PROCESS_LEVEL_KINDS)
        if config.fault_plan is not None
        else None
    )

    def on_visit(record) -> None:
        del record
        state.visits += 1
        if injector is not None:
            stall = injector.shard_stall_hook(
                config.key, config.generation, state.visits
            )
            if stall:
                # A wedged shard makes no progress and stops heartbeating;
                # the coordinator's liveness check is what ends the stall.
                time.sleep(stall)
            if injector.shard_crash_hook(
                config.key, config.generation, state.visits
            ):
                # Die exactly like the OOM killer would: no flush, no
                # atexit, nothing — resume must cope with the raw truth.
                os.kill(os.getpid(), signal.SIGKILL)
        now = time.monotonic()
        if now - state.last_beat >= config.heartbeat_interval_s:
            state.last_beat = now
            events.put(
                (EVENT_HEARTBEAT, config.shard_id, config.generation,
                 state.visits)
            )
        if stop.is_set() or state.drain.is_set():
            raise CampaignInterrupted(
                f"shard {config.shard_id} drain requested"
            )

    store = TelemetryStore(config.store_path, wal=True)
    archive = (
        NetLogArchive(config.archive_dir)
        if config.archive_dir is not None
        else None
    )
    try:
        events.put((EVENT_READY, config.shard_id, config.generation))
        while not (stop.is_set() or state.drain.is_set()):
            try:
                message = tasks.get(timeout=0.1)
            except queue.Empty:
                continue
            if message[0] == TASK_DRAIN:
                break
            _, chunk_id, domains = message
            campaign = Campaign(
                store=store,
                retry_policy=RetryPolicy(max_attempts=config.retries),
                fault_plan=campaign_plan,
                check_connectivity=config.check_connectivity,
                checkpoint_every=config.checkpoint_every,
                netlog_archive=archive,
                netlog_format=config.netlog_format,
                on_visit=on_visit,
            )
            try:
                campaign.run(
                    subpopulation(population, domains), resume=True
                )
            except CampaignInterrupted:
                break  # the campaign already flushed its checkpoint
            store.commit()
            events.put(
                (EVENT_CHUNK_DONE, config.shard_id, config.generation,
                 chunk_id, state.visits)
            )
        store.commit()
        events.put(
            (EVENT_DRAINED, config.shard_id, config.generation, state.visits)
        )
    except Exception as exc:  # surface, then die: the fabric restarts us
        events.put(
            (EVENT_ERROR, config.shard_id, config.generation,
             f"{type(exc).__name__}: {exc}")
        )
        raise
    finally:
        store.close()
