"""Wall-clock supervision for crawl visits: heartbeats, deadlines, rescue.

The paper bounds every page visit to a 20-second monitoring window but
still lost visits to browser hangs; at campaign scale an unsupervised
worker that wedges silently stalls the whole run.  This module is the
executor's safety net on *real* time (the simulated clock cannot observe
a livelocked worker — by definition it stops advancing):

* each visit attempt runs under a :class:`VisitGuard` holding the
  worker's heartbeat and a hard wall-clock deadline;
* the :class:`Watchdog` thread polls all active guards every
  ``poll_interval_s`` and cancels any attempt past its deadline by
  setting its :class:`CancelToken` — cooperative code (the injected
  ``hang`` fault's wedge loop, any long-running visit step) observes the
  token and raises :class:`VisitCancelled`;
* an attempt that *ignores* its cancellation for ``abandon_grace_s`` is
  declared abandoned — the supervisor writes the visit off as a deadline
  failure and replaces the worker, so one pathological page can never
  wedge a campaign.

Cancellation latency is bounded by construction: a cancelled visit ends
at most one poll interval after its deadline, which is exactly what the
chaos bench asserts.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator
from contextlib import contextmanager

from .. import obs

_CANCELLATIONS = obs.counter(
    "repro_watchdog_cancellations_total",
    "visit attempts cancelled by the wall-clock watchdog",
)
_ABANDONED = obs.counter(
    "repro_watchdog_abandoned_total",
    "workers written off after ignoring their cancellation",
)
#: The checked form of the invariant documented above: cancellation
#: latency (guard deadline → token cancelled) is bounded by one poll
#: interval, so the buckets concentrate around typical poll settings.
_CANCEL_LATENCY = obs.histogram(
    "repro_watchdog_cancel_latency_seconds",
    "latency from a visit's wall deadline to its actual cancellation",
    buckets=(0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5),
)


class VisitCancelled(RuntimeError):
    """Raised inside a visit attempt when the watchdog cancelled it."""


class CancelToken:
    """One attempt's cancellation flag, observed cooperatively."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout_s: float) -> bool:
        """Sleep up to ``timeout_s``; True when cancellation arrived."""
        return self._event.wait(timeout_s)

    def checkpoint(self) -> None:
        """Raise :class:`VisitCancelled` if this attempt was cancelled."""
        if self._event.is_set():
            raise VisitCancelled("visit cancelled by watchdog")


@dataclass(slots=True)
class VisitGuard:
    """One supervised visit attempt, as the watchdog sees it."""

    worker_id: int
    key: str
    deadline_s: float
    token: CancelToken
    started: float = field(default_factory=time.monotonic)
    last_beat: float = 0.0
    cancelled_at: float | None = None
    cleared: bool = False
    abandoned: bool = False

    def __post_init__(self) -> None:
        self.last_beat = self.started

    def beat(self) -> None:
        """Worker heartbeat: proof of liveness for observability."""
        self.last_beat = time.monotonic()

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self.started


class Watchdog:
    """Supervises visit guards on a dedicated wall-clock thread."""

    def __init__(
        self,
        *,
        poll_interval_s: float = 0.05,
        abandon_grace_s: float | None = None,
        on_abandon: Callable[[VisitGuard], None] | None = None,
    ) -> None:
        if poll_interval_s <= 0:
            raise ValueError("poll interval must be positive")
        self.poll_interval_s = poll_interval_s
        # Default grace: several polls — enough for any cooperative visit
        # to notice its token, short enough that a truly wedged worker is
        # written off quickly.
        self.abandon_grace_s = (
            abandon_grace_s if abandon_grace_s is not None else 5 * poll_interval_s
        )
        self.on_abandon = on_abandon
        self.cancelled = 0
        self.abandoned = 0
        self._guards: dict[int, VisitGuard] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="crawl-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "Watchdog":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- guard registration ------------------------------------------------

    @contextmanager
    def watch(
        self, worker_id: int, key: str, deadline_s: float, token: CancelToken
    ) -> Iterator[VisitGuard]:
        """Guard one visit attempt for the duration of the ``with`` block."""
        guard = VisitGuard(
            worker_id=worker_id, key=key, deadline_s=deadline_s, token=token
        )
        with self._lock:
            self._guards[worker_id] = guard
        try:
            yield guard
        finally:
            guard.cleared = True
            with self._lock:
                if self._guards.get(worker_id) is guard:
                    del self._guards[worker_id]

    def active_guards(self) -> list[VisitGuard]:
        with self._lock:
            return list(self._guards.values())

    # -- the supervision loop ----------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            self._scan()

    def _scan(self) -> None:
        now = time.monotonic()
        for guard in self.active_guards():
            if guard.cleared:
                continue
            if guard.cancelled_at is None:
                if now - guard.started > guard.deadline_s:
                    guard.cancelled_at = now
                    guard.token.cancel()
                    self.cancelled += 1
                    _CANCELLATIONS.inc()
                    _CANCEL_LATENCY.observe(
                        now - (guard.started + guard.deadline_s)
                    )
            elif (
                not guard.abandoned
                and now - guard.cancelled_at > self.abandon_grace_s
            ):
                # The attempt ignored its cancellation: a genuine wedge.
                guard.abandoned = True
                self.abandoned += 1
                _ABANDONED.inc()
                if self.on_abandon is not None:
                    self.on_abandon(guard)
