"""Retry policy for transient crawl failures, on the virtual clock.

The paper's crawls attribute every failure to the *website* (Table 1),
which is only honest if measurement-side transients — resolver hiccups,
resets, our uplink dying for a minute — are retried away first.
:class:`RetryPolicy` decides what is worth re-attempting and how long to
back off; :class:`VirtualClock` accrues those waits in simulated time, so
a campaign that rides out thousands of backoffs still runs in
milliseconds of wall clock.

Backoff is exponential with deterministic jitter: the jitter term is a
stable hash of ``(domain, attempt)``, not a live RNG draw, so two runs of
the same campaign back off identically — a precondition for the chaos
benches' byte-for-byte invariance checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..browser.errors import NetError, is_transient


def _stable_jitter(key: str, spread_ms: float) -> float:
    """Deterministic pseudo-jitter in [0, spread_ms) derived from ``key``."""
    digest = 2166136261
    for ch in key:
        digest = ((digest ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return (digest % 10_000) / 10_000.0 * spread_ms


@dataclass(slots=True)
class VirtualClock:
    """Monotonic simulated time, advanced explicitly (milliseconds)."""

    now_ms: float = 0.0

    def advance(self, delta_ms: float) -> float:
        if delta_ms < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now_ms += delta_ms
        return self.now_ms


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How a crawler re-attempts failed visits.

    ``max_attempts`` is the total visit budget per site (1 = no retries,
    the seed behaviour).  Only transient failures (see
    :func:`repro.browser.errors.is_transient`) are retried; permanent
    failures land in their Table 1 bucket on the first attempt.

    The connectivity gate has its own wait budget of ``max_attempts - 1``
    re-checks per attempt when ``retry_connectivity_skips`` is set:
    outages are *waited out* with backoff rather than charged against
    the site's visit attempts, so a bounded outage and a transient site
    failure never compound into a spurious failure record.
    """

    max_attempts: int = 1
    backoff_base_ms: float = 500.0
    backoff_multiplier: float = 2.0
    backoff_jitter_ms: float = 250.0
    retry_connectivity_skips: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_ms < 0 or self.backoff_jitter_ms < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.max_attempts > 1

    def should_retry(self, error: NetError, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) should be redone."""
        return attempt < self.max_attempts and is_transient(error)

    def backoff_ms(self, key: str, attempt: int) -> float:
        """Wait before re-attempt ``attempt + 1``, deterministic in key."""
        base = self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1)
        return base + _stable_jitter(f"{key}#{attempt}", self.backoff_jitter_ms)


#: Policy used when callers just say "retry": three attempts, which masks
#: any transient with depth <= 2 (the chaos plans' default).
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=3)

#: The seed behaviour — one attempt, no second chances.
NO_RETRY = RetryPolicy(max_attempts=1)
