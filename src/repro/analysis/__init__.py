"""Analysis layer: RQ1/RQ2/RQ3 plus table and figure renderers."""

from . import (
    attribution,
    export,
    figures,
    longitudinal,
    report_doc,
    rq1,
    rq2,
    rq3,
    stats,
    tables,
    validate,
)
from .figures import RenderedFigure
from .tables import RenderedTable

__all__ = [
    "attribution",
    "export",
    "longitudinal",
    "report_doc",
    "validate",
    "figures",
    "rq1",
    "rq2",
    "rq3",
    "stats",
    "tables",
    "RenderedFigure",
    "RenderedTable",
]
