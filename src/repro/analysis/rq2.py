"""RQ2 — characteristics of the local traffic (section 4.2).

Two families of questions:

* **protocols and ports** — for each OS, how many local requests used each
  scheme, and which destination ports they hit (the sunburst data of
  Figures 4 and 8);
* **timing** — the delay between page fetch and the first local request
  per site (the CDFs of Figures 5, 6 and 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.addresses import Locality
from ..core.report import OS_ORDER, SiteFinding


@dataclass(slots=True)
class ProtocolPortBreakdown:
    """Requests per (scheme, port) for one OS — one Figure 4 diagram."""

    os_name: str
    #: scheme -> port -> request count
    by_scheme: dict[str, dict[int, int]] = field(default_factory=dict)

    @property
    def total_requests(self) -> int:
        return sum(
            count
            for ports in self.by_scheme.values()
            for count in ports.values()
        )

    def scheme_totals(self) -> dict[str, int]:
        """Requests per scheme, descending — the inner sunburst ring."""
        totals = {
            scheme: sum(ports.values())
            for scheme, ports in self.by_scheme.items()
        }
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def ports_for(self, scheme: str) -> list[int]:
        return sorted(self.by_scheme.get(scheme, {}))

    def dominant_scheme(self) -> str | None:
        totals = self.scheme_totals()
        return next(iter(totals), None)

    def record(self, scheme: str, port: int) -> None:
        self.by_scheme.setdefault(scheme, {})
        self.by_scheme[scheme][port] = self.by_scheme[scheme].get(port, 0) + 1


def protocol_port_breakdowns(
    findings: Iterable[SiteFinding],
    locality: Locality,
    oses: tuple[str, ...] = OS_ORDER,
) -> dict[str, ProtocolPortBreakdown]:
    """Per-OS scheme/port rollup over all findings (Figures 4/8)."""
    breakdowns = {os_name: ProtocolPortBreakdown(os_name) for os_name in oses}
    for finding in findings:
        for os_name in oses:
            for request in finding.requests(locality, os_name):
                breakdowns[os_name].record(request.scheme, request.port)
    return breakdowns


def first_request_delays_s(
    findings: Iterable[SiteFinding],
    locality: Locality,
    oses: tuple[str, ...] = OS_ORDER,
) -> dict[str, list[float]]:
    """Per-OS delays (seconds) from page fetch to first local request.

    One sample per (site, OS) with activity — exactly the population of
    the Figure 5–7 CDFs.
    """
    delays: dict[str, list[float]] = {os_name: [] for os_name in oses}
    for finding in findings:
        for os_name in oses:
            delay_ms = finding.first_request_delay_ms(locality, os_name)
            if delay_ms is not None:
                delays[os_name].append(delay_ms / 1000.0)
    for values in delays.values():
        values.sort()
    return {os_name: values for os_name, values in delays.items() if values}


def websocket_share(
    findings: Iterable[SiteFinding], locality: Locality, os_name: str
) -> float:
    """Fraction of local requests on an OS carried over ws/wss.

    Quantifies the paper's headline observation that WebSockets — exempt
    from the Same-Origin Policy — dominate Windows localhost traffic.
    """
    total = 0
    websocket = 0
    for finding in findings:
        for request in finding.requests(locality, os_name):
            total += 1
            if request.scheme in ("ws", "wss"):
                websocket += 1
    return websocket / total if total else 0.0
