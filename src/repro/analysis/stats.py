"""Small statistics toolkit: empirical CDFs, quantiles, summaries.

Pure Python on purpose — the analysis layer has no third-party
dependencies, so the library stays installable anywhere the crawler runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


def ecdf(values: Iterable[float]) -> tuple[list[float], list[float]]:
    """Empirical CDF: sorted values and cumulative fractions.

    >>> ecdf([3.0, 1.0, 2.0])
    ([1.0, 2.0, 3.0], [0.3333333333333333, 0.6666666666666666, 1.0])
    """
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return [], []
    return ordered, [(index + 1) / n for index in range(n)]


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile, 0 <= q <= 1.

    Raises ValueError on an empty sequence — a silent NaN would poison
    downstream medians.
    """
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    # The `a + (b - a) * f` form is exact at f == 0 and monotone in q even
    # on denormal inputs (the two-product form can round each term to zero
    # and dip below an earlier quantile); clamp to the segment so callers
    # can rely on min <= q(x) <= max.
    interpolated = ordered[low] + (ordered[high] - ordered[low]) * fraction
    return min(max(interpolated, ordered[low]), ordered[high])


def median(values: Sequence[float]) -> float:
    """The 0.5 quantile."""
    return quantile(values, 0.5)


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    minimum: float
    median: float
    p90: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        if not values:
            raise ValueError("summary of empty sequence")
        return cls(
            count=len(values),
            minimum=min(values),
            median=median(values),
            p90=quantile(values, 0.9),
            maximum=max(values),
        )


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of the sample at or below ``threshold`` (0 when empty)."""
    if not values:
        return 0.0
    return sum(1 for value in values if value <= threshold) / len(values)


def ascii_cdf(
    series: dict[str, Sequence[float]],
    *,
    width: int = 60,
    max_x: float | None = None,
    title: str = "",
) -> str:
    """Render one or more samples as a text CDF table.

    Output is a grid of cumulative fractions at evenly spaced x positions —
    the data one would feed a plotting library, in a form that survives a
    terminal.  Used by the figure benches to print the CDF curves of
    Figures 3, 5–7 and 9.
    """
    populated = {name: list(vals) for name, vals in series.items() if vals}
    if not populated:
        return f"{title}\n(no data)"
    upper = max_x if max_x is not None else max(max(v) for v in populated.values())
    if upper <= 0:
        upper = 1.0
    steps = 10
    lines = []
    if title:
        lines.append(title)
    column = max(14, max(len(name) for name in populated) + 2)
    header = "x".ljust(10) + "".join(
        name.rjust(column) for name in populated
    )
    lines.append(header)
    for step in range(steps + 1):
        x = upper * step / steps
        row = f"{x:<10.2f}"
        for values in populated.values():
            row += f"{fraction_below(values, x):>{column}.3f}"
        lines.append(row)
    del width  # reserved for a denser renderer
    return "\n".join(lines)
