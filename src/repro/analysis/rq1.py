"""RQ1 — which websites generate local network traffic (section 4.1).

Answers: how many sites show localhost/LAN activity, on which OSes, how
the active sites overlap across OSes (Figure 2), how their ranks are
distributed (Figures 3/9, Table 3), and how two measurement rounds
compare (continuing / newly-seen / stopped sites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.addresses import Locality
from ..core.report import (
    OS_ORDER,
    SiteFinding,
    findings_with_activity,
    os_overlap_partition,
    per_os_totals,
)


@dataclass(frozen=True, slots=True)
class ActivitySummary:
    """Headline RQ1 numbers for one campaign and locality."""

    locality: Locality
    total_sites: int
    per_os: dict[str, int]
    overlap: dict[frozenset[str], int]

    def os_exclusive(self, os_name: str) -> int:
        """Sites active exclusively on one OS."""
        return self.overlap.get(frozenset({os_name}), 0)

    @property
    def all_os_equivalent(self) -> int:
        """Sites behaving identically on every crawled OS."""
        crawled = [os_name for os_name in OS_ORDER if os_name in self.per_os]
        return self.overlap.get(frozenset(crawled), 0)


def summarize_activity(
    findings: Iterable[SiteFinding], locality: Locality
) -> ActivitySummary:
    """Compute the RQ1 summary over a campaign's findings."""
    found = findings_with_activity(list(findings), locality)
    totals = {
        os_name: count
        for os_name, count in per_os_totals(found, locality).items()
        if count
    }
    return ActivitySummary(
        locality=locality,
        total_sites=len(found),
        per_os=totals,
        overlap=os_overlap_partition(found, locality),
    )


def ranks_by_os(
    findings: Iterable[SiteFinding], locality: Locality
) -> dict[str, list[int]]:
    """Domain ranks of active sites per OS — the Figure 3/9 series."""
    series: dict[str, list[int]] = {}
    for finding in findings:
        if finding.rank is None:
            continue
        for os_name in finding.oses_with_activity(locality):
            series.setdefault(os_name, []).append(finding.rank)
    for ranks in series.values():
        ranks.sort()
    return series


def top_ranked(
    findings: Iterable[SiteFinding],
    locality: Locality,
    os_name: str,
    *,
    n: int = 10,
) -> list[SiteFinding]:
    """The ``n`` highest-ranked active sites on one OS (Table 3)."""
    active = [
        f
        for f in findings
        if f.rank is not None and os_name in f.oses_with_activity(locality)
    ]
    active.sort(key=lambda f: f.rank)  # type: ignore[arg-type, return-value]
    return active[:n]


def sites_within_rank(
    findings: Iterable[SiteFinding], locality: Locality, threshold: int
) -> list[SiteFinding]:
    """Active sites ranked at or above ``threshold`` (e.g. the top 10K)."""
    return [
        f
        for f in findings_with_activity(list(findings), locality)
        if f.rank is not None and f.rank <= threshold
    ]


@dataclass(frozen=True, slots=True)
class LongitudinalComparison:
    """How activity changed between two measurement rounds (section 4.1)."""

    continuing: list[str]
    stopped: list[str]
    newly_active_previously_crawled: list[str]
    newly_active_not_previously_crawled: list[str]

    @property
    def second_round_total(self) -> int:
        return (
            len(self.continuing)
            + len(self.newly_active_previously_crawled)
            + len(self.newly_active_not_previously_crawled)
        )


def compare_rounds(
    first: Sequence[SiteFinding],
    second: Sequence[SiteFinding],
    locality: Locality,
    *,
    first_round_crawled: set[str] | None = None,
) -> LongitudinalComparison:
    """Classify second-round active sites against the first round.

    ``first_round_crawled`` is the full set of domains crawled in round
    one (not just active ones); when omitted, every second-round domain
    absent from round-one findings counts as previously crawled.
    """
    first_active = {
        f.domain for f in findings_with_activity(list(first), locality)
    }
    second_active = {
        f.domain for f in findings_with_activity(list(second), locality)
    }
    crawled = (
        first_round_crawled if first_round_crawled is not None else set()
    )
    continuing = sorted(first_active & second_active)
    stopped = sorted(first_active - second_active)
    new = second_active - first_active
    previously_crawled = sorted(
        d for d in new if not crawled or d in crawled
    )
    never_crawled = sorted(d for d in new if crawled and d not in crawled)
    return LongitudinalComparison(
        continuing=continuing,
        stopped=stopped,
        newly_active_previously_crawled=previously_crawled,
        newly_active_not_previously_crawled=never_crawled,
    )
