"""Who originates the local requests? Initiator and vendor attribution.

Section 4.3.1's manual workflow, automated: for each site with local
activity, inspect the *initiator* recorded in the NetLog telemetry (the
JavaScript blob or library that fired the request), extract the domain
it was served from, and resolve that through WHOIS to an organisation —
revealing, e.g., that 35 different e-commerce sites' localhost scans all
trace to ThreatMetrix Inc. despite loading from customer-branded
domains.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.addresses import Locality
from ..core.report import SiteFinding
from ..web.whois import WhoisRegistry, default_registry

#: Initiator strings produced by behaviours look like
#: "threatmetrix@ebay-us.com" or "dev-file:example.com"; both carry a
#: domain after a separator.  Real Chrome initiators are script URLs.
_DOMAIN_IN_INITIATOR = re.compile(
    r"(?:@|://|:)([a-z0-9.-]+\.[a-z]{2,})", re.IGNORECASE
)


def initiator_domain(initiator: str | None) -> str | None:
    """Extract the serving domain from an initiator string, if any."""
    if not initiator:
        return None
    match = _DOMAIN_IN_INITIATOR.search(initiator)
    return match.group(1).lower() if match else None


@dataclass(frozen=True, slots=True)
class SiteAttribution:
    """Provenance of one site's local traffic."""

    domain: str
    initiators: tuple[str, ...]
    third_party_domains: tuple[str, ...]
    organizations: tuple[str, ...]

    @property
    def is_third_party(self) -> bool:
        """True when any local request originated from foreign code."""
        return bool(self.third_party_domains)


@dataclass(slots=True)
class VendorRollup:
    """How many sites each organisation's code generates local traffic on."""

    sites_by_org: Counter = field(default_factory=Counter)
    serving_domains_by_org: dict[str, set[str]] = field(default_factory=dict)

    def record(self, organization: str, site: str, serving_domain: str) -> None:
        del site  # counted once per call; kept for call-site clarity
        self.sites_by_org[organization] += 1
        self.serving_domains_by_org.setdefault(organization, set()).add(
            serving_domain
        )

    def top(self, n: int = 5) -> list[tuple[str, int]]:
        return self.sites_by_org.most_common(n)


def _is_same_party(site_domain: str, other: str) -> bool:
    """Crude eTLD+1-ish same-party check: shared registrable tail."""
    site_parts = site_domain.lower().split(".")
    other_parts = other.lower().split(".")
    return site_parts[-2:] == other_parts[-2:]


def attribute_site(
    finding: SiteFinding,
    *,
    registry: WhoisRegistry | None = None,
    locality: Locality | None = None,
) -> SiteAttribution:
    """Attribute one site's local requests to serving domains and owners."""
    registry = registry if registry is not None else default_registry()
    initiators: set[str] = set()
    third_party: set[str] = set()
    organizations: set[str] = set()
    site_org = registry.organization(finding.domain)
    for request in finding.requests(locality):
        if not request.initiator:
            continue
        initiators.add(request.initiator)
        domain = initiator_domain(request.initiator)
        if domain is None:
            continue
        record = registry.lookup(domain)
        if _is_same_party(finding.domain, domain):
            # A same-party-looking domain can still belong to a vendor:
            # ThreatMetrix serves from regstat.betfair.com, which WHOIS
            # ties to ThreatMetrix Inc., not Betfair (section 4.3.1).
            if record is None or record.organization == site_org:
                continue
            if record.kind not in ("anti-abuse-vendor", "cdn"):
                continue
        third_party.add(domain)
        if record is not None:
            organizations.add(record.organization)
    return SiteAttribution(
        domain=finding.domain,
        initiators=tuple(sorted(initiators)),
        third_party_domains=tuple(sorted(third_party)),
        organizations=tuple(sorted(organizations)),
    )


def vendor_rollup(
    findings: Iterable[SiteFinding],
    *,
    registry: WhoisRegistry | None = None,
    locality: Locality | None = None,
) -> VendorRollup:
    """Roll attributions up per organisation (the ThreatMetrix headline)."""
    registry = registry if registry is not None else default_registry()
    rollup = VendorRollup()
    for finding in findings:
        attribution = attribute_site(
            finding, registry=registry, locality=locality
        )
        counted: set[str] = set()
        for serving in attribution.third_party_domains:
            organization = registry.organization(serving)
            if organization is None or organization in counted:
                continue
            counted.add(organization)
            rollup.record(organization, finding.domain, serving)
    return rollup


def third_party_share(
    findings: Sequence[SiteFinding],
    *,
    locality: Locality = Locality.LOCALHOST,
    registry: WhoisRegistry | None = None,
) -> float:
    """Fraction of active sites whose local traffic is third-party code.

    The paper's anti-abuse finding in one number: the scanning is
    outsourced — sites do not probe localhost themselves, vendor scripts
    do.
    """
    active = [f for f in findings if f.has_activity(locality)]
    if not active:
        return 0.0
    third = sum(
        1
        for finding in active
        if attribute_site(
            finding, registry=registry, locality=locality
        ).is_third_party
    )
    return third / len(active)
