"""Renderers for the paper's Figures 2–9.

Each ``figure_N`` function produces the figure's underlying data series
(so tests can assert on them) and a text rendering (so benches can print
the same curves/diagrams the paper plots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.addresses import Locality
from ..core.report import OS_ORDER, SiteFinding
from . import rq1, rq2
from .stats import ascii_cdf

_OS_LABEL = {"windows": "Windows", "linux": "Linux", "mac": "Mac"}


@dataclass(frozen=True, slots=True)
class RenderedFigure:
    """A figure as data plus a printable text block."""

    name: str
    data: dict
    text: str

    def __str__(self) -> str:
        return self.text


# ---------------------------------------------------------------------------
# Figure 2 — OS overlap (Venn) of localhost-active sites
# ---------------------------------------------------------------------------

def figure_2(
    findings: Sequence[SiteFinding],
    *,
    locality: Locality = Locality.LOCALHOST,
    name: str = "Figure 2",
) -> RenderedFigure:
    """Overlap in per-OS activity across sites (Figure 2a/2b)."""
    summary = rq1.summarize_activity(findings, locality)
    regions = {
        "+".join(sorted(oses)): count for oses, count in summary.overlap.items()
    }
    lines = [f"{name}: OS overlap of {locality.value}-active sites"]
    lines.append(f"  total sites: {summary.total_sites}")
    for os_name in OS_ORDER:
        if os_name in summary.per_os:
            lines.append(
                f"  {_OS_LABEL[os_name]:<8} total: {summary.per_os[os_name]:>4}   "
                f"exclusive: {summary.os_exclusive(os_name)}"
            )
    lines.append("  regions:")
    for region, count in sorted(regions.items()):
        lines.append(f"    {region:<24}{count:>5}")
    data = {
        "total": summary.total_sites,
        "per_os": summary.per_os,
        "regions": regions,
    }
    return RenderedFigure(name, data, "\n".join(lines))


# ---------------------------------------------------------------------------
# Figures 3 and 9 — rank CDFs
# ---------------------------------------------------------------------------

def figure_rank_cdf(
    findings: Sequence[SiteFinding],
    *,
    name: str,
    list_size: int = 100_000,
) -> RenderedFigure:
    """CDFs of domain ranks for localhost-active sites (Figures 3/9)."""
    series = rq1.ranks_by_os(findings, Locality.LOCALHOST)
    labelled = {
        f"{_OS_LABEL[os_name]} (n={len(ranks)})": [float(r) for r in ranks]
        for os_name, ranks in series.items()
    }
    text = ascii_cdf(
        labelled,
        max_x=float(list_size),
        title=f"{name}: rank CDFs of localhost-active domains",
    )
    return RenderedFigure(name, {"ranks": series}, text)


def figure_3(findings: Sequence[SiteFinding]) -> RenderedFigure:
    return figure_rank_cdf(findings, name="Figure 3")


def figure_9(findings: Sequence[SiteFinding]) -> RenderedFigure:
    return figure_rank_cdf(findings, name="Figure 9")


# ---------------------------------------------------------------------------
# Figures 4 and 8 — protocol/port sunbursts
# ---------------------------------------------------------------------------

def figure_ports(
    findings: Sequence[SiteFinding],
    *,
    name: str,
    oses: tuple[str, ...] = OS_ORDER,
) -> RenderedFigure:
    """Protocols and ports of localhost requests per OS (Figures 4/8)."""
    breakdowns = rq2.protocol_port_breakdowns(
        findings, Locality.LOCALHOST, oses
    )
    lines = [f"{name}: localhost request protocols and ports"]
    data: dict[str, dict] = {}
    for os_name in oses:
        breakdown = breakdowns[os_name]
        if breakdown.total_requests == 0:
            continue
        data[os_name] = {
            scheme: dict(sorted(ports.items()))
            for scheme, ports in breakdown.by_scheme.items()
        }
        lines.append(
            f"  {_OS_LABEL[os_name]} ({breakdown.total_requests} requests)"
        )
        for scheme, total in breakdown.scheme_totals().items():
            ports = breakdown.ports_for(scheme)
            shown = ",".join(str(p) for p in ports[:12])
            suffix = "…" if len(ports) > 12 else ""
            lines.append(
                f"    {scheme:<6}{total:>5} requests on {len(ports):>3} ports: "
                f"{shown}{suffix}"
            )
    return RenderedFigure(name, data, "\n".join(lines))


def figure_4(
    findings_top: Sequence[SiteFinding],
    findings_malicious: Sequence[SiteFinding] | None = None,
) -> RenderedFigure:
    """Figure 4a (2020 top-100K) and optionally 4b (malicious)."""
    part_a = figure_ports(findings_top, name="Figure 4a")
    if findings_malicious is None:
        return part_a
    part_b = figure_ports(findings_malicious, name="Figure 4b")
    return RenderedFigure(
        "Figure 4",
        {"top": part_a.data, "malicious": part_b.data},
        part_a.text + "\n" + part_b.text,
    )


def figure_8(findings: Sequence[SiteFinding]) -> RenderedFigure:
    return figure_ports(
        findings, name="Figure 8", oses=("windows", "linux")
    )


# ---------------------------------------------------------------------------
# Figures 5, 6, 7 — time-to-first-local-request CDFs
# ---------------------------------------------------------------------------

def figure_timing(
    findings: Sequence[SiteFinding],
    *,
    name: str,
    oses: tuple[str, ...] = OS_ORDER,
) -> RenderedFigure:
    """Delay CDFs for localhost (a) and LAN (b) requests."""
    data: dict[str, dict[str, list[float]]] = {}
    blocks = []
    for label, locality in (
        ("localhost", Locality.LOCALHOST),
        ("lan", Locality.LAN),
    ):
        delays = rq2.first_request_delays_s(findings, locality, oses)
        data[label] = delays
        labelled = {
            f"{_OS_LABEL[os_name]} (n={len(values)})": values
            for os_name, values in delays.items()
        }
        blocks.append(
            ascii_cdf(
                labelled,
                max_x=20.0,
                title=f"{name} ({label}): seconds to first request",
            )
        )
    return RenderedFigure(name, data, "\n\n".join(blocks))


def figure_5(findings: Sequence[SiteFinding]) -> RenderedFigure:
    return figure_timing(findings, name="Figure 5")


def figure_6(findings: Sequence[SiteFinding]) -> RenderedFigure:
    return figure_timing(findings, name="Figure 6", oses=("windows", "linux"))


def figure_7(findings: Sequence[SiteFinding]) -> RenderedFigure:
    return figure_timing(findings, name="Figure 7")
