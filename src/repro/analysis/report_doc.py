"""Full study report generation: all findings in one document.

Assembles the complete reproduction — every table, figure, and headline
number, plus the attribution and clone analyses — into a single plain-text
report, section-by-section in the paper's order.  Used by the ``repro
report`` CLI command and by downstream users who want one artefact per
measurement run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.addresses import Locality
from ..crawler.campaign import CampaignResult
from ..web import seeds as S
from . import attribution, figures, rq1, rq2, rq3, tables


@dataclass(frozen=True, slots=True)
class StudyResults:
    """The three campaigns a full study comprises."""

    top2020: CampaignResult
    top2021: CampaignResult | None = None
    malicious: CampaignResult | None = None


def _section(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{bar}\n{title}\n{bar}\n"


def render_report(results: StudyResults) -> str:
    """Render the full study report."""
    parts: list[str] = [
        "Knock and Talk — reproduction report",
        "Local network communications of websites "
        "(Kuchhal & Li, IMC 2021)",
    ]

    # -- crawl statistics -------------------------------------------------
    parts.append(_section("Crawl statistics (Table 1)"))
    stats = list(results.top2020.stats.values())
    if results.top2021:
        stats += list(results.top2021.stats.values())
    if results.malicious:
        stats += list(results.malicious.stats.values())
    parts.append(tables.table_1(stats).text)

    # -- RQ1 ----------------------------------------------------------------
    parts.append(_section("RQ1 — which websites generate local traffic"))
    summary = rq1.summarize_activity(
        results.top2020.findings, Locality.LOCALHOST
    )
    lan = [f for f in results.top2020.findings if f.has_lan_activity]
    parts.append(
        f"2020 crawl: {summary.total_sites} localhost-active sites "
        f"(per OS {summary.per_os}); {len(lan)} LAN-active sites."
    )
    parts.append(figures.figure_2(results.top2020.findings).text)
    parts.append(tables.table_3(results.top2020.findings).text)
    parts.append(figures.figure_3(results.top2020.findings).text)

    # -- RQ2 ----------------------------------------------------------------
    parts.append(_section("RQ2 — characteristics of the local traffic"))
    share = rq2.websocket_share(
        results.top2020.findings, Locality.LOCALHOST, "windows"
    )
    parts.append(
        f"WebSocket share of Windows localhost requests: {share:.0%} "
        "(WebSockets are exempt from the Same-Origin Policy)."
    )
    parts.append(figures.figure_4(results.top2020.findings).text)
    parts.append(figures.figure_5(results.top2020.findings).text)

    # -- RQ3 ----------------------------------------------------------------
    parts.append(_section("RQ3 — why websites make local requests"))
    counts = rq3.behavior_counts(results.top2020.findings, Locality.LOCALHOST)
    for behavior, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        parts.append(f"  {behavior.value:<24}{count:>4}")
    rollup = attribution.vendor_rollup(
        results.top2020.findings, locality=Locality.LOCALHOST
    )
    if rollup.sites_by_org:
        parts.append("\nThird-party attribution (WHOIS):")
        for organization, count in rollup.top():
            domains = ", ".join(
                sorted(rollup.serving_domains_by_org[organization])[:3]
            )
            parts.append(
                f"  {organization:<22}{count:>4} sites (served via {domains})"
            )
    parts.append("")
    parts.append(tables.table_5(results.top2020.findings).text)
    parts.append("")
    parts.append(tables.table_6(results.top2020.findings).text)
    parts.append("")
    parts.append(tables.table_11(results.top2020.findings).text)

    # -- 2021 -----------------------------------------------------------------
    if results.top2021 is not None:
        parts.append(_section("The 2021 re-measurement"))
        summary_2021 = rq1.summarize_activity(
            results.top2021.findings, Locality.LOCALHOST
        )
        parts.append(
            f"{summary_2021.total_sites} localhost-active sites "
            f"(per OS {summary_2021.per_os})."
        )
        parts.append(
            tables.table_7(
                results.top2021.findings, results.top2020.findings
            ).text
        )
        parts.append("")
        parts.append(tables.table_10(results.top2021.findings).text)
        parts.append(figures.figure_8(results.top2021.findings).text)
        parts.append(figures.figure_9(results.top2021.findings).text)

    # -- malicious -------------------------------------------------------------
    if results.malicious is not None:
        parts.append(_section("Malicious webpages"))
        sizes = {
            "malware": S.MALWARE_COUNT,
            "abuse": S.ABUSE_COUNT,
            "phishing": S.PHISHING_COUNT,
        }
        parts.append(
            tables.table_2(
                results.malicious.findings, results.malicious.stats, sizes
            ).text
        )
        clones = rq3.detect_phishing_clones(results.malicious.findings)
        parts.append(
            f"\nPhishing clones inheriting anti-fraud scans: {clones.count}"
        )
        for domain in clones.clone_domains[:8]:
            hint = clones.impersonated_hint.get(domain, "?")
            parts.append(f"  {domain}  (impersonates {hint})")
        parts.append("")
        parts.append(tables.table_9(results.malicious.findings).text)
        parts.append(figures.figure_7(results.malicious.findings).text)

    return "\n".join(parts)
