"""Machine-readable exports of tables and figures (CSV / JSON).

The text renderers in :mod:`repro.analysis.tables` and
:mod:`~repro.analysis.figures` target terminals; downstream users who
want to re-plot the paper's figures need the underlying series.  These
helpers write them as CSV (one file per series family) and JSON.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import IO, Sequence

from ..core.addresses import Locality
from ..core.report import SiteFinding
from . import rq1, rq2


def write_rank_cdf_csv(
    findings: Sequence[SiteFinding], fp: IO[str]
) -> int:
    """Figure 3/9 series: one row per (os, rank, cumulative fraction)."""
    writer = csv.writer(fp)
    writer.writerow(["os", "rank", "cdf"])
    rows = 0
    for os_name, ranks in sorted(
        rq1.ranks_by_os(findings, Locality.LOCALHOST).items()
    ):
        n = len(ranks)
        for index, rank in enumerate(ranks):
            writer.writerow([os_name, rank, (index + 1) / n])
            rows += 1
    return rows


def write_timing_cdf_csv(
    findings: Sequence[SiteFinding],
    fp: IO[str],
    *,
    locality: Locality = Locality.LOCALHOST,
) -> int:
    """Figure 5/6/7 series: one row per (os, delay_s, cumulative fraction)."""
    writer = csv.writer(fp)
    writer.writerow(["os", "delay_s", "cdf"])
    rows = 0
    for os_name, delays in sorted(
        rq2.first_request_delays_s(findings, locality).items()
    ):
        n = len(delays)
        for index, delay in enumerate(delays):
            writer.writerow([os_name, f"{delay:.3f}", (index + 1) / n])
            rows += 1
    return rows


def write_ports_csv(findings: Sequence[SiteFinding], fp: IO[str]) -> int:
    """Figure 4/8 data: one row per (os, scheme, port, request count)."""
    writer = csv.writer(fp)
    writer.writerow(["os", "scheme", "port", "requests"])
    rows = 0
    breakdowns = rq2.protocol_port_breakdowns(findings, Locality.LOCALHOST)
    for os_name, breakdown in sorted(breakdowns.items()):
        for scheme, ports in sorted(breakdown.by_scheme.items()):
            for port, count in sorted(ports.items()):
                writer.writerow([os_name, scheme, port, count])
                rows += 1
    return rows


def findings_to_json(findings: Sequence[SiteFinding]) -> list[dict]:
    """Serialise findings as plain JSON-ready dicts."""
    out = []
    for finding in findings:
        requests = [
            {
                "locality": request.locality.value,
                "scheme": request.scheme,
                "host": request.host,
                "port": request.port,
                "path": request.path,
                "via_redirect": request.via_redirect,
                "initiator": request.initiator,
            }
            for request in finding.requests()
        ]
        out.append(
            {
                "domain": finding.domain,
                "rank": finding.rank,
                "category": finding.category,
                "behavior": finding.behavior.value if finding.behavior else None,
                "dev_error_kind": finding.dev_error_kind.value
                if finding.dev_error_kind
                else None,
                "oses_localhost": list(
                    finding.oses_with_activity(Locality.LOCALHOST)
                ),
                "oses_lan": list(finding.oses_with_activity(Locality.LAN)),
                "requests": requests,
            }
        )
    return out


def export_campaign(
    findings: Sequence[SiteFinding],
    directory: str | pathlib.Path,
    *,
    prefix: str = "campaign",
) -> dict[str, pathlib.Path]:
    """Write the full export bundle for one campaign's findings.

    Returns the written paths, keyed by artefact name.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: dict[str, pathlib.Path] = {}

    json_path = directory / f"{prefix}_findings.json"
    with json_path.open("w") as fp:
        json.dump(findings_to_json(findings), fp, indent=1)
    written["findings"] = json_path

    for name, writer in (
        ("rank_cdf", write_rank_cdf_csv),
        ("timing_cdf", write_timing_cdf_csv),
        ("ports", write_ports_csv),
    ):
        path = directory / f"{prefix}_{name}.csv"
        with path.open("w", newline="") as fp:
            writer(findings, fp)
        written[name] = path
    return written
