"""RQ3 — why websites make local requests (section 4.3).

Rolls the per-site behaviour classifications up into the distributions the
paper reports: counts per behaviour class, the developer-error sub-kind
breakdown (Table 11 / Appendix B), per-class OS skew, and the
phishing-clone analysis (malicious sites inheriting ThreatMetrix traffic
from cloned legitimate pages).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.addresses import Locality
from ..core.report import SiteFinding, findings_with_activity
from ..core.signatures import BehaviorClass, DeveloperErrorKind


def behavior_counts(
    findings: Iterable[SiteFinding], locality: Locality
) -> dict[BehaviorClass, int]:
    """Sites per behaviour class, restricted to one locality."""
    counter: Counter[BehaviorClass] = Counter()
    for finding in findings_with_activity(list(findings), locality):
        if finding.behavior is not None:
            counter[finding.behavior] += 1
    return dict(counter)


def dev_error_breakdown(
    findings: Iterable[SiteFinding], locality: Locality
) -> dict[DeveloperErrorKind, int]:
    """Developer-error sub-kind counts (Table 11's section structure)."""
    counter: Counter[DeveloperErrorKind] = Counter()
    for finding in findings_with_activity(list(findings), locality):
        if finding.behavior is BehaviorClass.DEVELOPER_ERROR:
            kind = finding.dev_error_kind
            if kind is not None:
                counter[kind] += 1
    return dict(counter)


def findings_for_behavior(
    findings: Iterable[SiteFinding],
    behavior: BehaviorClass,
    locality: Locality | None = None,
) -> list[SiteFinding]:
    """All findings with the given verdict, optionally locality-filtered."""
    out = []
    for finding in findings:
        if finding.behavior is not behavior:
            continue
        if locality is not None and not finding.has_activity(locality):
            continue
        out.append(finding)
    return out


def windows_only_fraction(
    findings: Iterable[SiteFinding],
    behavior: BehaviorClass,
    locality: Locality,
) -> float:
    """Fraction of a class's sites active exclusively on Windows.

    The fraud/bot scanners are the paper's Windows-targeting evidence:
    this should be ≈1.0 for them and well below for developer errors.
    """
    class_findings = findings_for_behavior(findings, behavior, locality)
    if not class_findings:
        return 0.0
    windows_only = sum(
        1
        for finding in class_findings
        if finding.oses_with_activity(locality) == ("windows",)
    )
    return windows_only / len(class_findings)


@dataclass(frozen=True, slots=True)
class CloneAnalysis:
    """Phishing pages inheriting anti-fraud local traffic (section 4.3.1)."""

    clone_domains: list[str]
    impersonated_hint: dict[str, str]

    @property
    def count(self) -> int:
        return len(self.clone_domains)


_IMPERSONATION_MARKERS = ("ebay", "citi", "amazon", "rakuten", "fidelity", "o2")


def detect_phishing_clones(
    findings: Sequence[SiteFinding], locality: Locality = Locality.LOCALHOST
) -> CloneAnalysis:
    """Find malicious sites whose local traffic matches an anti-fraud scan.

    A phishing page classified FRAUD_DETECTION did not deploy ThreatMetrix
    itself — it cloned a protected site's interface, JavaScript included.
    The impersonation hint is extracted from brand substrings in the
    domain, mirroring the paper's manual attribution
    (customer-ebay.com → ebay.com).
    """
    clones = []
    hints: dict[str, str] = {}
    for finding in findings:
        if finding.behavior is not BehaviorClass.FRAUD_DETECTION:
            continue
        if not finding.has_activity(locality):
            continue
        clones.append(finding.domain)
        lowered = finding.domain.lower()
        for marker in _IMPERSONATION_MARKERS:
            if marker in lowered:
                hints[finding.domain] = f"{marker}.com"
                break
    return CloneAnalysis(clone_domains=sorted(clones), impersonated_hint=hints)


def attribution_table(
    findings: Iterable[SiteFinding], locality: Locality
) -> list[tuple[str, str, str]]:
    """(domain, behaviour, signature) rows for reporting."""
    rows = []
    for finding in findings_with_activity(list(findings), locality):
        behavior = finding.behavior.value if finding.behavior else "?"
        signature = (
            finding.classification.signature_name
            if finding.classification and finding.classification.signature_name
            else "-"
        )
        rows.append((finding.domain, behavior, signature))
    return rows
