"""Longitudinal analysis: behaviour evolution across measurement rounds.

Section 4.1 compares the paper's two crawls (continuing / stopped /
newly-active sites); this module generalises that into a behaviour
*transition* view: for every domain crawled in both rounds, which
behaviour class it moved from and to — capturing the study's dynamics
(BIG-IP ASM vanishing entirely, ThreatMetrix churn, dev errors getting
fixed).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.addresses import Locality
from ..core.report import SiteFinding
from ..core.signatures import BehaviorClass

#: Pseudo-states for domains without activity in a round.
INACTIVE = "inactive"
NOT_CRAWLED = "not crawled"


def _state_map(
    findings: Iterable[SiteFinding], locality: Locality
) -> dict[str, str]:
    states: dict[str, str] = {}
    for finding in findings:
        if finding.has_activity(locality) and finding.behavior is not None:
            states[finding.domain] = finding.behavior.value
    return states


@dataclass(slots=True)
class TransitionMatrix:
    """Domain behaviour transitions between two rounds."""

    counts: Counter = field(default_factory=Counter)
    domains: dict[tuple[str, str], list[str]] = field(default_factory=dict)

    def record(self, before: str, after: str, domain: str) -> None:
        key = (before, after)
        self.counts[key] += 1
        self.domains.setdefault(key, []).append(domain)

    def count(self, before: str, after: str) -> int:
        return self.counts.get((before, after), 0)

    def stopped(self, behavior: BehaviorClass) -> int:
        """Sites of a class that went inactive (or off-list)."""
        return self.count(behavior.value, INACTIVE) + self.count(
            behavior.value, NOT_CRAWLED
        )

    def render(self) -> str:
        lines = ["Behaviour transitions (first round -> second round)"]
        for (before, after), count in sorted(
            self.counts.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            sample = ", ".join(sorted(self.domains[(before, after)])[:3])
            lines.append(f"  {before:<24} -> {after:<24} {count:>4}  ({sample})")
        return "\n".join(lines)


def behavior_transitions(
    first: Sequence[SiteFinding],
    second: Sequence[SiteFinding],
    *,
    locality: Locality = Locality.LOCALHOST,
    second_round_crawled: set[str] | None = None,
) -> TransitionMatrix:
    """Build the transition matrix between two measurement rounds.

    Only domains active in at least one round appear.  A domain absent
    from ``second_round_crawled`` (when given) transitions to
    ``NOT_CRAWLED`` rather than ``INACTIVE`` — the paper's distinction
    between sites that *stopped* and sites that *fell off the list*.
    """
    matrix = TransitionMatrix()
    before = _state_map(first, locality)
    after = _state_map(second, locality)
    for domain, state in before.items():
        if domain in after:
            matrix.record(state, after[domain], domain)
        elif (
            second_round_crawled is not None
            and domain not in second_round_crawled
        ):
            matrix.record(state, NOT_CRAWLED, domain)
        else:
            matrix.record(state, INACTIVE, domain)
    for domain, state in after.items():
        if domain not in before:
            matrix.record(INACTIVE, state, domain)
    return matrix


@dataclass(frozen=True, slots=True)
class ClassChurn:
    """Per-class site counts across two rounds."""

    behavior: BehaviorClass
    first_round: int
    second_round: int
    continued: int

    @property
    def stopped(self) -> int:
        return self.first_round - self.continued

    @property
    def started(self) -> int:
        return self.second_round - self.continued


def class_churn(
    first: Sequence[SiteFinding],
    second: Sequence[SiteFinding],
    behavior: BehaviorClass,
    *,
    locality: Locality = Locality.LOCALHOST,
) -> ClassChurn:
    """Continuation statistics for one behaviour class."""
    before = {
        f.domain
        for f in first
        if f.behavior is behavior and f.has_activity(locality)
    }
    after = {
        f.domain
        for f in second
        if f.behavior is behavior and f.has_activity(locality)
    }
    return ClassChurn(
        behavior=behavior,
        first_round=len(before),
        second_round=len(after),
        continued=len(before & after),
    )
