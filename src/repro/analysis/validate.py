"""Self-validation: score a measurement run against the paper's numbers.

Encodes the paper's reported aggregates as data (`PAPER_TARGETS`) and
compares a campaign's measured values against them, producing a
structured scorecard.  This is the reproduction's acceptance test in
library form — the benches assert the same facts, but the scorecard is
queryable, printable, and usable by downstream users who modify the
pipeline and want to know what they broke.

Tolerance semantics per check: ``exact`` (must match), ``atol``/``rtol``
(absolute/relative windows for the counts the paper itself reports
inconsistently — see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.addresses import Locality
from ..core.report import SiteFinding
from ..core.signatures import BehaviorClass
from ..crawler.campaign import CampaignResult
from . import rq1, rq2, rq3
from .stats import median


@dataclass(frozen=True, slots=True)
class CheckResult:
    """Outcome of one validated fact."""

    name: str
    expected: float
    measured: float
    passed: bool
    note: str = ""

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.name}: expected {self.expected:g}, "
            f"measured {self.measured:g}"
            + (f" ({self.note})" if self.note else "")
        )


@dataclass(slots=True)
class Scorecard:
    """All checks for one validation run."""

    checks: list[CheckResult] = field(default_factory=list)

    def add(
        self,
        name: str,
        expected: float,
        measured: float,
        *,
        atol: float = 0.0,
        rtol: float = 0.0,
        note: str = "",
    ) -> None:
        window = max(atol, rtol * abs(expected))
        self.checks.append(
            CheckResult(
                name=name,
                expected=expected,
                measured=measured,
                passed=abs(measured - expected) <= window,
                note=note,
            )
        )

    @property
    def passed(self) -> int:
        return sum(1 for check in self.checks if check.passed)

    @property
    def failed(self) -> int:
        return len(self.checks) - self.passed

    @property
    def all_passed(self) -> bool:
        return self.failed == 0

    def failures(self) -> list[CheckResult]:
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        lines = [check.render() for check in self.checks]
        lines.append(
            f"-- {self.passed}/{len(self.checks)} checks passed --"
        )
        return "\n".join(lines)


def _localhost(findings: Sequence[SiteFinding]) -> list[SiteFinding]:
    return [f for f in findings if f.has_localhost_activity]


def validate_top2020(result: CampaignResult) -> Scorecard:
    """Check the 2020 top-100K campaign against sections 4.1–4.3."""
    card = Scorecard()
    findings = result.findings
    summary = rq1.summarize_activity(findings, Locality.LOCALHOST)

    card.add("2020 localhost sites", 107, summary.total_sites)
    card.add("2020 LAN sites", 9,
             sum(1 for f in findings if f.has_lan_activity))
    card.add("2020 Windows-active", 92, summary.per_os.get("windows", 0))
    card.add("2020 Linux-active", 54, summary.per_os.get("linux", 0))
    card.add("2020 Mac-active", 54, summary.per_os.get("mac", 0))
    card.add("2020 Windows-exclusive", 48, summary.os_exclusive("windows"))
    card.add("2020 all-OS-equivalent", 41, summary.all_os_equivalent)

    counts = rq3.behavior_counts(findings, Locality.LOCALHOST)
    card.add("fraud-detection sites", 35,
             counts.get(BehaviorClass.FRAUD_DETECTION, 0), atol=1,
             note="paper narrative says 36; tables enumerate 34")
    card.add("bot-detection sites", 10,
             counts.get(BehaviorClass.BOT_DETECTION, 0))
    card.add("native-app sites", 12,
             counts.get(BehaviorClass.NATIVE_APPLICATION, 0))
    card.add("developer-error sites", 45,
             counts.get(BehaviorClass.DEVELOPER_ERROR, 0), atol=1,
             note="paper narrative says 44; Table 11 lists 45")
    card.add("unknown sites", 5, counts.get(BehaviorClass.UNKNOWN, 0))
    card.add("internal-attack sites", 0,
             counts.get(BehaviorClass.INTERNAL_ATTACK, 0),
             note="the paper's central negative result")

    delays = rq2.first_request_delays_s(findings, Locality.LOCALHOST)
    if delays.get("windows"):
        card.add("Windows median delay (s)", 10.0,
                 median(delays["windows"]), atol=2.0)
    if delays.get("mac"):
        card.add("Mac max delay (s)", 14.0, max(delays["mac"]), atol=1.0)

    share = rq2.websocket_share(findings, Locality.LOCALHOST, "windows")
    card.add("Windows WebSocket share", 0.77, share, atol=0.10,
             note="Figure 4a: (490 wss + 19 ws) / 664")
    return card


def validate_top2021(result: CampaignResult) -> Scorecard:
    """Check the 2021 campaign against sections 3.2/4.1."""
    card = Scorecard()
    summary = rq1.summarize_activity(result.findings, Locality.LOCALHOST)
    card.add("2021 localhost sites", 82, summary.total_sites)
    card.add("2021 Windows-active", 82, summary.per_os.get("windows", 0))
    card.add("2021 Linux-active", 48, summary.per_os.get("linux", 0))
    card.add("2021 Mac-active", 0, summary.per_os.get("mac", 0),
             note="no Mac crawl in 2021")
    card.add("2021 LAN sites", 8,
             sum(1 for f in result.findings if f.has_lan_activity))
    counts = rq3.behavior_counts(result.findings, Locality.LOCALHOST)
    card.add("2021 bot-detection sites", 0,
             counts.get(BehaviorClass.BOT_DETECTION, 0),
             note="BIG-IP ASM scripts gone by 2021")
    return card


def validate_malicious(result: CampaignResult) -> Scorecard:
    """Check the malicious campaign against Table 2 / section 4.3."""
    card = Scorecard()
    per_category: dict[str, dict[str, int]] = {}
    for finding in _localhost(result.findings):
        category = finding.category or "?"
        bucket = per_category.setdefault(
            category, {"windows": 0, "linux": 0, "mac": 0}
        )
        for os_name in finding.oses_with_activity(Locality.LOCALHOST):
            bucket[os_name] += 1
    targets = {
        ("malware", "windows"): 72, ("malware", "linux"): 83,
        ("malware", "mac"): 75, ("phishing", "windows"): 25,
        ("phishing", "linux"): 41, ("phishing", "mac"): 9,
    }
    for (category, os_name), expected in targets.items():
        card.add(
            f"malicious {category} localhost on {os_name}",
            expected,
            per_category.get(category, {}).get(os_name, 0),
        )
    card.add("abuse localhost sites", 0,
             sum(per_category.get("abuse", {}).values()))
    card.add("malicious localhost total", 151,
             len(_localhost(result.findings)), atol=3,
             note="Table 2 marginals imply 148; narrative says 151")
    clones = rq3.detect_phishing_clones(result.findings)
    card.add("ThreatMetrix phishing clones", 18, clones.count,
             note="Figure 4b: 252 Windows WSS = 18 x 14")
    counts = rq3.behavior_counts(result.findings, Locality.LOCALHOST)
    card.add("malicious internal attacks", 0,
             counts.get(BehaviorClass.INTERNAL_ATTACK, 0))
    return card


def integrity_scorecard(report) -> Scorecard:
    """Score an :class:`~repro.storage.integrity.FsckReport`.

    Turns the fsck result into the same pass/fail scorecard shape as the
    paper-number validators, so CI and downstream users can gate on data
    integrity with the machinery they already use for measurement
    fidelity: no finding may remain unrepaired, and a repaired store must
    carry a campaign digest for every crawl it holds.
    """
    card = Scorecard()
    card.add(
        "unrepaired integrity findings",
        0,
        report.unrepaired,
        note="fsck repair ladder must leave nothing damaged",
    )
    card.add(
        "campaign digests emitted",
        len(report.campaign_digests),
        sum(1 for digest in report.campaign_digests.values() if digest),
        note="fingerprint-equivalence proof per crawl",
    )
    return card


#: Validators by campaign name, for generic runners.
VALIDATORS: dict[str, Callable[[CampaignResult], Scorecard]] = {
    "top2020": validate_top2020,
    "top2021": validate_top2021,
    "malicious": validate_malicious,
}


def validate(result: CampaignResult) -> Scorecard:
    """Validate a campaign by its population name."""
    try:
        validator = VALIDATORS[result.name]
    except KeyError:
        raise ValueError(
            f"no paper targets known for campaign {result.name!r}"
        ) from None
    return validator(result)
