"""Renderers for the paper's Tables 1–11.

Each ``table_N`` function consumes campaign results (never the seed data)
and returns both structured rows and a formatted text block, so benches
can print the same rows the paper reports and tests can assert on the
structured form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..browser.errors import TABLE1_ERROR_COLUMNS
from ..core.addresses import Locality
from ..core.ports import DEFAULT_REGISTRY, PortRegistry
from ..core.report import OS_ORDER, SiteFinding, findings_with_activity
from ..core.signatures import BehaviorClass, DeveloperErrorKind
from ..crawler.crawl import CrawlStats
from . import rq1

_OS_LETTER = {"windows": "W", "linux": "L", "mac": "M"}


@dataclass(frozen=True, slots=True)
class RenderedTable:
    """A table as structured rows plus a printable text block."""

    name: str
    rows: list
    text: str

    def __str__(self) -> str:
        return self.text


def _os_flags(oses: Sequence[str]) -> str:
    return " ".join(
        _OS_LETTER[os_name] if os_name in oses else "."
        for os_name in OS_ORDER
    )


def _oses_with(
    finding: SiteFinding,
    locality: Locality,
    *,
    scheme: str | None = None,
    exclude_scheme: str | None = None,
) -> tuple[str, ...]:
    """OS flags for one finding, restricted by request scheme.

    The paper's HTTP(S)/WS tables and the WebRTC era tables partition the
    same findings by scheme, so both need scheme-aware OS flags rather
    than :meth:`SiteFinding.oses_with_activity`'s locality-only view.
    """
    return tuple(
        os_name
        for os_name in OS_ORDER
        if os_name in finding.per_os
        and any(
            r.locality is locality
            and (scheme is None or r.scheme == scheme)
            and (exclude_scheme is None or r.scheme != exclude_scheme)
            for r in finding.per_os[os_name].requests
        )
    )


def _ports_label(ports: Iterable[int]) -> str:
    ordered = sorted(set(ports))
    if len(ordered) > 6:
        return f"{ordered[0]}-{ordered[-1]} ({len(ordered)} ports)"
    return ",".join(str(p) for p in ordered)


# ---------------------------------------------------------------------------
# Table 1 — crawl statistics
# ---------------------------------------------------------------------------

def table_1(stats: Sequence[CrawlStats]) -> RenderedTable:
    """Web crawl statistics: successes, failures, error breakdown.

    The paper's fixed error columns always render; buckets outside them
    (e.g. ``VISIT_DEADLINE`` from the supervised executor's watchdog)
    appear as extra columns only when some run actually produced them,
    so fault-free output is byte-identical to the seed's.
    """
    extra = sorted(
        {
            bucket
            for stat in stats
            for bucket in (stat.errors or {})
            if bucket not in TABLE1_ERROR_COLUMNS
        }
    )
    columns = TABLE1_ERROR_COLUMNS + tuple(extra)
    rows = []
    lines = [
        f"{'Crawl':<12}{'OS':<9}{'#success':>10}{'#failed':>9}  "
        + "".join(f"{column:>18}" for column in columns)
    ]
    for stat in stats:
        errors = stat.errors or {}
        row = {
            "crawl": stat.crawl,
            "os": stat.os_name,
            "successes": stat.successes,
            "failures": stat.failures,
            "errors": {column: errors.get(column, 0) for column in columns},
        }
        rows.append(row)
        total = max(stat.total, 1)
        fail = max(stat.failures, 1)
        cells = "".join(
            f"{errors.get(column, 0):>10} ({errors.get(column, 0) / fail:>4.1%})"
            for column in columns
        )
        lines.append(
            f"{stat.crawl:<12}{stat.os_name:<9}"
            f"{stat.successes:>10}{stat.failures:>9}  {cells}"
            f"   [{stat.successes / total:.1%} ok]"
        )
    return RenderedTable("Table 1", rows, "\n".join(lines))


# ---------------------------------------------------------------------------
# Table 2 — malicious crawl summary
# ---------------------------------------------------------------------------

def table_2(
    findings: Sequence[SiteFinding],
    stats: dict[str, CrawlStats],
    category_sizes: dict[str, int],
    success_by_category: dict[str, dict[str, int]] | None = None,
) -> RenderedTable:
    """Per-category site counts and localhost/LAN activity per OS."""
    categories = ("malware", "abuse", "phishing")
    rows = []
    header = (
        f"{'Category':<10}{'#sites':>9}   "
        f"{'localhost W/L/M':>18}   {'LAN W/L/M':>12}"
    )
    lines = [header]
    for category in categories:
        cat_findings = [f for f in findings if f.category == category]
        localhost = {
            os_name: sum(
                1
                for f in cat_findings
                if os_name in f.oses_with_activity(Locality.LOCALHOST)
            )
            for os_name in OS_ORDER
        }
        lan = {
            os_name: sum(
                1
                for f in cat_findings
                if os_name in f.oses_with_activity(Locality.LAN)
            )
            for os_name in OS_ORDER
        }
        row = {
            "category": category,
            "sites": category_sizes.get(category, 0),
            "localhost": localhost,
            "lan": lan,
        }
        if success_by_category:
            row["success_rates"] = {
                os_name: success_by_category[os_name].get(category, 0)
                / max(category_sizes.get(category, 1), 1)
                for os_name in success_by_category
            }
        rows.append(row)
        lines.append(
            f"{category:<10}{row['sites']:>9}   "
            f"{localhost['windows']:>5}/{localhost['linux']}/{localhost['mac']:<6}   "
            f"{lan['windows']:>4}/{lan['linux']}/{lan['mac']}"
        )
    del stats  # retained in the signature for symmetry with table_1 callers
    return RenderedTable("Table 2", rows, "\n".join(lines))


# ---------------------------------------------------------------------------
# Table 3 — top-ranked localhost requesters
# ---------------------------------------------------------------------------

def table_3(
    findings: Sequence[SiteFinding], *, n: int = 10
) -> RenderedTable:
    """Highest-ranked domains making localhost requests, per OS group."""
    windows = rq1.top_ranked(findings, Locality.LOCALHOST, "windows", n=n)
    linux = rq1.top_ranked(findings, Locality.LOCALHOST, "linux", n=n)
    rows = {
        "windows": [(f.rank, f.domain) for f in windows],
        "linux": [(f.rank, f.domain) for f in linux],
    }
    lines = [f"{'Rank':>7}  {'Windows':<28}{'Rank':>7}  Linux/Mac"]
    for index in range(max(len(windows), len(linux))):
        w = windows[index] if index < len(windows) else None
        l = linux[index] if index < len(linux) else None
        lines.append(
            f"{(w.rank if w else ''):>7}  {(w.domain if w else ''):<28}"
            f"{(l.rank if l else ''):>7}  {(l.domain if l else '')}"
        )
    return RenderedTable("Table 3", [rows], "\n".join(lines))


# ---------------------------------------------------------------------------
# Table 4 — scanned-port knowledge base
# ---------------------------------------------------------------------------

def table_4(registry: PortRegistry | None = None) -> RenderedTable:
    """Services/malware behind the ports the anti-abuse scanners probe."""
    registry = registry if registry is not None else DEFAULT_REGISTRY
    rows = registry.rows()
    lines = [f"{'Port':>7}  {'Service/App':<42}Use case"]
    for row in rows:
        service = ("Malware: " if row.is_malware else "") + row.service
        lines.append(f"{row.port:>7}  {service:<42}{row.purpose.value}")
    return RenderedTable("Table 4", rows, "\n".join(lines))


# ---------------------------------------------------------------------------
# Tables 5 / 7 / 8 — localhost requesters
# ---------------------------------------------------------------------------

_BEHAVIOR_ORDER = (
    BehaviorClass.INTERNAL_ATTACK,
    BehaviorClass.FRAUD_DETECTION,
    BehaviorClass.BOT_DETECTION,
    BehaviorClass.NATIVE_APPLICATION,
    BehaviorClass.DEVELOPER_ERROR,
    BehaviorClass.UNKNOWN,
)


def _localhost_site_rows(findings: Sequence[SiteFinding]) -> list[dict]:
    rows = []
    for finding in findings_with_activity(list(findings), Locality.LOCALHOST):
        # The paper's tables cover the HTTP(S)/WS channel; WebRTC-derived
        # requests have their own era tables (5W/6W), so a webrtc-enabled
        # campaign leaves Tables 5/7/8/11 byte-identical to a channel-off
        # run over the same population.
        requests = [
            r
            for r in finding.requests(Locality.LOCALHOST)
            if r.scheme != "webrtc"
        ]
        if not requests:
            continue
        schemes = sorted({r.scheme for r in requests})
        ports = sorted({r.port for r in requests})
        paths = sorted({r.path for r in requests})
        rows.append(
            {
                "domain": finding.domain,
                "rank": finding.rank,
                "category": finding.category,
                "behavior": finding.behavior,
                "dev_kind": finding.dev_error_kind,
                "schemes": schemes,
                "ports": ports,
                "paths": paths,
                "oses": _oses_with(
                    finding, Locality.LOCALHOST, exclude_scheme="webrtc"
                ),
            }
        )
    return rows


def _render_localhost_table(
    name: str, rows: list[dict], *, show_rank: bool = True
) -> RenderedTable:
    lines = [
        f"{'Reason':<20}{'Rank':>7}  {'Domain':<42}{'Proto':<10}"
        f"{'Ports':<26}{'OS (W L M)':<10}"
    ]
    for behavior in _BEHAVIOR_ORDER:
        section = [row for row in rows if row["behavior"] is behavior]
        section.sort(key=lambda r: (r["rank"] or 10**9, r["domain"]))
        for row in section:
            rank = row["rank"] if show_rank and row["rank"] is not None else ""
            lines.append(
                f"{behavior.value:<20}{rank:>7}  {row['domain']:<42}"
                f"{'/'.join(row['schemes']):<10}"
                f"{_ports_label(row['ports']):<26}"
                f"{_os_flags(row['oses']):<10}"
            )
    return RenderedTable(name, rows, "\n".join(lines))


def table_5(findings: Sequence[SiteFinding]) -> RenderedTable:
    """2020 top-100K localhost requesters grouped by reason."""
    return _render_localhost_table("Table 5", _localhost_site_rows(findings))


def table_7(
    findings_2021: Sequence[SiteFinding],
    findings_2020: Sequence[SiteFinding],
) -> RenderedTable:
    """Localhost requesters newly observed in the 2021 crawl."""
    previously_active = {
        f.domain
        for f in findings_with_activity(list(findings_2020), Locality.LOCALHOST)
    }
    new_rows = [
        row
        for row in _localhost_site_rows(findings_2021)
        if row["domain"] not in previously_active
    ]
    return _render_localhost_table("Table 7", new_rows)


def table_8(findings: Sequence[SiteFinding]) -> RenderedTable:
    """Malicious webpages making localhost requests, by category."""
    rows = _localhost_site_rows(findings)
    lines = [
        f"{'Category':<10}{'Domain':<46}{'Proto':<8}{'Ports':<26}"
        f"{'Behavior':<20}{'OS':<8}"
    ]
    for row in sorted(
        rows, key=lambda r: (r["category"] or "", r["domain"])
    ):
        lines.append(
            f"{(row['category'] or '?'):<10}{row['domain']:<46}"
            f"{'/'.join(row['schemes']):<8}{_ports_label(row['ports']):<26}"
            f"{(row['behavior'].value if row['behavior'] else '?'):<20}"
            f"{_os_flags(row['oses']):<8}"
        )
    return RenderedTable("Table 8", rows, "\n".join(lines))


# ---------------------------------------------------------------------------
# Tables 6 / 9 / 10 — LAN requesters
# ---------------------------------------------------------------------------

def _lan_rows(findings: Sequence[SiteFinding]) -> list[dict]:
    rows = []
    for finding in findings_with_activity(list(findings), Locality.LAN):
        # Same channel split as the localhost tables: WebRTC-derived LAN
        # requests belong to Table 6W, never Tables 6/9/10.
        requests = [
            r for r in finding.requests(Locality.LAN) if r.scheme != "webrtc"
        ]
        if not requests:
            continue
        rows.append(
            {
                "domain": finding.domain,
                "rank": finding.rank,
                "category": finding.category,
                "addresses": sorted({r.host for r in requests}),
                "ports": sorted({r.port for r in requests}),
                "schemes": sorted({r.scheme for r in requests}),
                "paths": sorted({r.path for r in requests}),
                "behavior": finding.behavior,
                "oses": _oses_with(
                    finding, Locality.LAN, exclude_scheme="webrtc"
                ),
            }
        )
    rows.sort(key=lambda r: (r["rank"] or 10**9, r["domain"]))
    return rows


def _render_lan_table(name: str, rows: list[dict]) -> RenderedTable:
    lines = [
        f"{'Rank':>7}  {'Domain':<46}{'Proto':<7}{'Address':<17}"
        f"{'Port':>6}  {'OS (W L M)':<10}"
    ]
    for row in rows:
        lines.append(
            f"{(row['rank'] if row['rank'] is not None else ''):>7}  "
            f"{row['domain']:<46}{'/'.join(row['schemes']):<7}"
            f"{','.join(row['addresses']):<17}"
            f"{','.join(str(p) for p in row['ports']):>6}  "
            f"{_os_flags(row['oses']):<10}"
        )
    return RenderedTable(name, rows, "\n".join(lines))


def table_6(findings: Sequence[SiteFinding]) -> RenderedTable:
    """2020 top-100K LAN requesters."""
    return _render_lan_table("Table 6", _lan_rows(findings))


def table_9(findings: Sequence[SiteFinding]) -> RenderedTable:
    """Malicious LAN requesters."""
    return _render_lan_table("Table 9", _lan_rows(findings))


def table_10(findings: Sequence[SiteFinding]) -> RenderedTable:
    """2021 top-100K LAN requesters."""
    return _render_lan_table("Table 10", _lan_rows(findings))


# ---------------------------------------------------------------------------
# Tables 5W / 6W / W-era — WebRTC local-address leakage
# ---------------------------------------------------------------------------

def _webrtc_rows(findings: Sequence[SiteFinding], locality: Locality) -> list[dict]:
    """Per-site WebRTC-channel leak rows of one locality.

    ``kinds`` distinguishes how the address leaked: ``CANDIDATE`` (a raw
    host candidate — the pre-M74 leak mDNS obfuscation removes) vs
    ``STUN`` (a binding check to an explicit local peer — present in both
    policy eras).
    """
    rows = []
    for finding in findings:
        requests = [
            r for r in finding.requests(locality) if r.scheme == "webrtc"
        ]
        if not requests:
            continue
        rows.append(
            {
                "domain": finding.domain,
                "rank": finding.rank,
                "category": finding.category,
                "kinds": sorted({r.method for r in requests}),
                "addresses": sorted({r.host for r in requests}),
                "ports": sorted({r.port for r in requests}),
                "leaks": len(requests),
                "oses": _oses_with(finding, locality, scheme="webrtc"),
            }
        )
    rows.sort(key=lambda r: (r["rank"] or 10**9, r["domain"]))
    return rows


def _render_webrtc_table(name: str, rows: list[dict]) -> RenderedTable:
    lines = [
        f"{'Rank':>7}  {'Domain':<42}{'Kind':<16}{'Address':<30}"
        f"{'Ports':<22}{'OS (W L M)':<10}"
    ]
    for row in rows:
        lines.append(
            f"{(row['rank'] if row['rank'] is not None else ''):>7}  "
            f"{row['domain']:<42}{'/'.join(row['kinds']):<16}"
            f"{','.join(row['addresses']):<30}"
            f"{_ports_label(row['ports']):<22}"
            f"{_os_flags(row['oses']):<10}"
        )
    return RenderedTable(name, rows, "\n".join(lines))


def table_5w(findings: Sequence[SiteFinding]) -> RenderedTable:
    """Localhost-bound WebRTC leakage: STUN checks to loopback peers."""
    return _render_webrtc_table(
        "Table 5W", _webrtc_rows(findings, Locality.LOCALHOST)
    )


def table_6w(findings: Sequence[SiteFinding]) -> RenderedTable:
    """LAN-bound WebRTC leakage: host candidates + RFC 1918 STUN peers."""
    return _render_webrtc_table("Table 6W", _webrtc_rows(findings, Locality.LAN))


def table_webrtc_era(
    findings_by_policy: dict[str, Sequence[SiteFinding]],
) -> RenderedTable:
    """Pre-M74 vs mDNS era comparison of WebRTC leak counts per site.

    The delta column isolates exactly what Chrome's mDNS obfuscation
    removed: raw host candidates vanish from the mdns era, while STUN
    checks to explicit local peers survive in both — so sites whose only
    WebRTC traffic is candidate gathering drop to zero, and sites
    actively knocking on local peers keep their STUN rows.
    """
    def leak_counts(findings: Sequence[SiteFinding]) -> dict[str, tuple[int, int]]:
        counts: dict[str, tuple[int, int]] = {}
        for finding in findings:
            localhost = sum(
                1
                for r in finding.requests(Locality.LOCALHOST)
                if r.scheme == "webrtc"
            )
            lan = sum(
                1
                for r in finding.requests(Locality.LAN)
                if r.scheme == "webrtc"
            )
            if localhost or lan:
                counts[finding.domain] = (localhost, lan)
        return counts

    per_policy = {
        policy: leak_counts(findings)
        for policy, findings in findings_by_policy.items()
    }
    ranks: dict[str, int | None] = {}
    for findings in findings_by_policy.values():
        for finding in findings:
            ranks.setdefault(finding.domain, finding.rank)
    policies = sorted(per_policy)
    domains = sorted(
        {domain for counts in per_policy.values() for domain in counts},
        key=lambda d: (ranks.get(d) or 10**9, d),
    )
    rows = []
    header = f"{'Rank':>7}  {'Domain':<42}" + "".join(
        f"{policy + ' lo/LAN':>18}" for policy in policies
    ) + f"{'delta':>8}"
    lines = [header]
    for domain in domains:
        counts = {
            policy: per_policy[policy].get(domain, (0, 0))
            for policy in policies
        }
        totals = [sum(counts[policy]) for policy in policies]
        delta = max(totals) - min(totals) if len(totals) > 1 else totals[0]
        rows.append(
            {
                "domain": domain,
                "rank": ranks.get(domain),
                "counts": counts,
                "delta": delta,
            }
        )
        cells = "".join(
            f"{counts[policy][0]:>12}/{counts[policy][1]:<5}"
            for policy in policies
        )
        lines.append(
            f"{(ranks.get(domain) if ranks.get(domain) is not None else ''):>7}  "
            f"{domain:<42}{cells}{delta:>8}"
        )
    return RenderedTable("Table W-era", rows, "\n".join(lines))


# ---------------------------------------------------------------------------
# Table 11 — developer-error localhost sites
# ---------------------------------------------------------------------------

_DEV_KIND_ORDER = (
    DeveloperErrorKind.LOCAL_FILE_SERVER,
    DeveloperErrorKind.PEN_TEST,
    DeveloperErrorKind.LIVERELOAD,
    DeveloperErrorKind.REDIRECT,
    DeveloperErrorKind.SOCKJS_NODE,
    DeveloperErrorKind.OTHER_LOCAL_SERVICE,
)


def table_11(findings: Sequence[SiteFinding]) -> RenderedTable:
    """Developer-error localhost sites, grouped by sub-kind."""
    rows = [
        row
        for row in _localhost_site_rows(findings)
        if row["behavior"] is BehaviorClass.DEVELOPER_ERROR
    ]
    lines = [
        f"{'Kind':<22}{'Rank':>7}  {'Domain':<40}{'Proto':<8}"
        f"{'Ports':<16}{'OS (W L M)':<10}"
    ]
    for kind in _DEV_KIND_ORDER:
        section = [row for row in rows if row["dev_kind"] is kind]
        section.sort(key=lambda r: (r["rank"] or 10**9, r["domain"]))
        for row in section:
            lines.append(
                f"{kind.value:<22}{(row['rank'] or ''):>7}  "
                f"{row['domain']:<40}{'/'.join(row['schemes']):<8}"
                f"{_ports_label(row['ports']):<16}"
                f"{_os_flags(row['oses']):<10}"
            )
    return RenderedTable("Table 11", rows, "\n".join(lines))
