"""Simulated DNS resolution with failure injection.

The paper's dominant crawl-failure mode is DNS (≈90% of failures are
``NAME_NOT_RESOLVED``; Table 1).  The resolver models:

* loopback names resolved without lookup (as Chrome does for ``localhost``);
* IP literals passed through;
* a registry of authoritative records for simulated public sites;
* per-domain injected failures, used by the population builder to
  reproduce Table 1's failure counts deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.addresses import parse_ip
from .errors import NetError

#: Fault seam: called once per lookup with the hostname; a returned
#: failing :class:`NetError` makes that lookup fail (transiently, if the
#: hook stops returning it on later attempts).
DnsFaultHook = Callable[[str], "NetError | None"]


@dataclass(frozen=True, slots=True)
class ResolutionResult:
    """Outcome of one resolution attempt."""

    address: str | None
    error: NetError = NetError.OK

    @property
    def ok(self) -> bool:
        return self.error is NetError.OK and self.address is not None


class SimulatedResolver:
    """A deterministic stub resolver.

    Records are exact-match on the fully-qualified lowercase name.  A
    domain with neither a record nor an injected failure resolves to a
    synthetic address derived from the name hash — simulating the common
    case where any ordinary public domain resolves — unless
    ``default_resolvable`` is False.
    """

    def __init__(
        self,
        *,
        default_resolvable: bool = True,
        fault_hook: DnsFaultHook | None = None,
    ) -> None:
        self._records: dict[str, str] = {}
        self._failures: dict[str, NetError] = {}
        self._default_resolvable = default_resolvable
        self._fault_hook = fault_hook
        self.queries = 0

    def add_record(self, name: str, address: str) -> None:
        """Register an authoritative A record."""
        self._records[name.lower().rstrip(".")] = address

    def inject_failure(self, name: str, error: NetError) -> None:
        """Force resolution of ``name`` to fail with ``error``."""
        if not error.failed:
            raise ValueError("injected failure must be a failing NetError")
        self._failures[name.lower().rstrip(".")] = error

    def clear_failure(self, name: str) -> None:
        self._failures.pop(name.lower().rstrip("."), None)

    def resolve(self, name: str) -> ResolutionResult:
        """Resolve a hostname (or pass an IP literal through)."""
        self.queries += 1
        host = name.lower().rstrip(".")
        if host == "localhost" or host.endswith(".localhost"):
            return ResolutionResult(address="127.0.0.1")
        if parse_ip(host) is not None:
            return ResolutionResult(address=host)
        if self._fault_hook is not None:
            fault = self._fault_hook(host)
            if fault is not None and fault.failed:
                return ResolutionResult(address=None, error=fault)
        injected = self._failures.get(host)
        if injected is not None:
            return ResolutionResult(address=None, error=injected)
        record = self._records.get(host)
        if record is not None:
            return ResolutionResult(address=record)
        if self._default_resolvable:
            return ResolutionResult(address=self._synthetic_address(host))
        return ResolutionResult(address=None, error=NetError.ERR_NAME_NOT_RESOLVED)

    @staticmethod
    def _synthetic_address(host: str) -> str:
        """A stable, public-looking IPv4 address derived from the name.

        Addresses land in 203.0.113.0/24 and 198.51.100.0/24 (TEST-NET
        ranges) extended across several documentation-safe octets, so they
        never collide with the private ranges the detector looks for.
        """
        digest = 0
        for ch in host:
            digest = (digest * 131 + ord(ch)) & 0xFFFFFFFF
        third = digest & 0xFF
        fourth = (digest >> 8) & 0xFF
        base = "203.0" if (digest >> 16) & 1 else "198.51"
        return f"{base}.{third}.{fourth}"
