"""Operating-system identities the crawler presents to websites.

The paper crawls with Chrome v84 on Windows 10, Ubuntu 20.04, and
Mac OS X 10.15.6 (section 3.1).  Websites key OS-specific behaviour off the
user-agent string (section 5.4 notes dev errors living in "OS-specific
portions of the website code"), so the simulation carries the real Chrome 84
UA strings for each platform.
"""

from __future__ import annotations

from dataclasses import dataclass

WINDOWS = "windows"
LINUX = "linux"
MAC = "mac"

ALL_OSES: tuple[str, ...] = (WINDOWS, LINUX, MAC)


@dataclass(frozen=True, slots=True)
class OSIdentity:
    """One crawl platform: name, pretty label, and Chrome 84 user agent."""

    name: str
    label: str
    user_agent: str

    def __post_init__(self) -> None:
        if self.name not in ALL_OSES:
            raise ValueError(f"unknown OS name {self.name!r}")


_CHROME84 = "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/84.0.4147.89 Safari/537.36"

OS_IDENTITIES: dict[str, OSIdentity] = {
    WINDOWS: OSIdentity(
        name=WINDOWS,
        label="Windows 10",
        user_agent=f"Mozilla/5.0 (Windows NT 10.0; Win64; x64) {_CHROME84}",
    ),
    LINUX: OSIdentity(
        name=LINUX,
        label="Ubuntu 20.04",
        user_agent=f"Mozilla/5.0 (X11; Linux x86_64) {_CHROME84}",
    ),
    MAC: OSIdentity(
        name=MAC,
        label="Mac OS X 10.15.6",
        user_agent=f"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_6) {_CHROME84}",
    ),
}


def identity_for(os_name: str) -> OSIdentity:
    """Look up the identity for an OS name; raises KeyError when unknown."""
    return OS_IDENTITIES[os_name]
