"""The simulated Chrome instance: loads pages and emits NetLog telemetry.

``SimulatedChrome.visit`` reproduces the observable contract of the paper's
measurement harness (section 3.1): start a clean browser, navigate to the
target URL, watch the network for a fixed monitoring window (20 s), and
hand back the NetLog event stream.  Time is virtual — a 20-second window
costs microseconds — which is what makes 100K-site campaigns tractable.

Event sequences follow Chrome's shape:

* every logical request gets a fresh serial source id;
* ``REQUEST_ALIVE`` BEGIN/END brackets the flow;
* ``URL_REQUEST_START_JOB`` (HTTP) or ``WEB_SOCKET_SEND_HANDSHAKE_REQUEST``
  (WS/WSS) carries the URL;
* connect/TLS sub-events carry destinations and failures;
* redirects appear as ``URL_REQUEST_REDIRECTED`` with the new location.

Emission is streaming: events are pushed through a small
:class:`~repro.netlog.pipeline.ReorderBuffer` in timestamp order as the
visit runs, either into a caller-supplied
:class:`~repro.netlog.pipeline.EventSink` (``visit(page, sink=...)``) or
into the ``VisitResult.events`` list for batch callers.  Source ids are
still allocated in page order (the order scripts planned their requests),
but requests *execute* in start-time order so the buffer only ever holds
the overlap window — the streaming path's memory is O(concurrently open
requests), not O(total events), and the delivered order is byte-for-byte
the ``(time, source id)`` sort the batch API always produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.addresses import TargetParseError, parse_target
from ..netlog.constants import EventPhase, EventType, SourceType
from ..netlog.events import NetLogEvent, NetLogSource, SourceIdAllocator
from ..netlog.pipeline import EventSink, ListSink, ReorderBuffer
from ..webrtc.ice import IceAgent, IceSession
from .dns import SimulatedResolver
from .errors import NetError
from .network import SimulatedNetwork
from .page import Page, PlannedRequest, ScriptContext
from .sop import Origin, SameOriginPolicy
from .useragent import OSIdentity

#: Monitoring window the paper settled on after its threshold experiment.
DEFAULT_MONITOR_WINDOW_MS = 20_000.0

#: Synthetic but stable server think-time for page HTML (milliseconds).
_SERVER_TTFB_MS = 120.0
_DNS_LOOKUP_MS = 18.0


@dataclass(slots=True)
class VisitResult:
    """Outcome of one page visit.

    ``events`` carries the full ordered stream for batch callers; when
    the visit ran in sink-driven mode the stream went to the caller's
    sink instead and ``events`` stays empty.
    """

    url: str
    os_name: str
    success: bool
    error: NetError = NetError.OK
    events: list[NetLogEvent] = field(default_factory=list)
    page_load_time_ms: float | None = None

    @property
    def failed(self) -> bool:
        return not self.success


class SimulatedChrome:
    """A Chrome v84 stand-in bound to one OS identity.

    Instances are cheap; the crawler creates one per (OS, crawl) and
    reuses it across sites — source ids keep increasing across visits,
    like a real long-lived browser process, but each visit's events are
    delivered separately (one NetLog per page, as the paper stored them).
    """

    def __init__(
        self,
        identity: OSIdentity,
        *,
        resolver: SimulatedResolver | None = None,
        network: SimulatedNetwork | None = None,
        policy: SameOriginPolicy | None = None,
        monitor_window_ms: float = DEFAULT_MONITOR_WINDOW_MS,
        webrtc: IceAgent | None = None,
    ) -> None:
        if monitor_window_ms <= 0:
            raise ValueError("monitor window must be positive")
        self.identity = identity
        self.resolver = resolver if resolver is not None else SimulatedResolver()
        self.network = network if network is not None else SimulatedNetwork()
        self.policy = policy if policy is not None else SameOriginPolicy()
        self.webrtc = webrtc if webrtc is not None else IceAgent(identity.name)
        self.monitor_window_ms = monitor_window_ms
        self._sources = SourceIdAllocator()
        self.pages_visited = 0

    # -- public API -------------------------------------------------------

    def visit(
        self,
        page: Page,
        *,
        forced_error: NetError | None = None,
        sink: EventSink | None = None,
    ) -> VisitResult:
        """Load ``page`` and monitor it for the configured window.

        ``forced_error`` injects a main-frame load failure (used by crawl
        campaigns to reproduce the failure rates of Table 1); DNS failures
        may alternatively be injected at the resolver.

        With ``sink``, events are pushed into it in ``(time, source id)``
        order as the visit runs (single-pass streaming mode: detection,
        archiving and any other consumers ride the same stream via a
        :class:`~repro.netlog.pipeline.Tee`).  The sink receives every
        event by return time, but ``sink.finish()`` is left to the
        caller, who owns the sink graph.  Without a sink, the ordered
        stream is collected into ``VisitResult.events``.
        """
        self.pages_visited += 1
        collector = ListSink() if sink is None else None
        out = ReorderBuffer(collector if sink is None else sink)
        result = VisitResult(url=page.url, os_name=self.identity.name, success=False)

        try:
            self._run_visit(page, forced_error, out, result)
        finally:
            out.flush()
        if collector is not None:
            result.events = collector.events
        return result

    # -- internals ----------------------------------------------------------

    def _run_visit(
        self,
        page: Page,
        forced_error: NetError | None,
        out: ReorderBuffer,
        result: VisitResult,
    ) -> None:
        """Emit the visit's event stream into ``out``; sets ``result``."""
        try:
            target = parse_target(page.url)
        except TargetParseError:
            result.error = NetError.ERR_NAME_NOT_RESOLVED
            return

        clock = 0.0
        main_source = self._sources.allocate(SourceType.URL_REQUEST)
        out.accept(self._event(clock, EventType.REQUEST_ALIVE, main_source, EventPhase.BEGIN))
        out.accept(
            self._event(
                clock,
                EventType.URL_REQUEST_START_JOB,
                main_source,
                EventPhase.BEGIN,
                {"url": page.url, "method": "GET", "user_agent": self.identity.user_agent},
            )
        )

        error = forced_error if forced_error is not None else self._resolve_error(target.host)
        if error is not None and error.failed:
            self._emit_failure(out, clock, main_source, target.host, error)
            result.error = error
            return

        clock += _DNS_LOOKUP_MS
        connect = self.network.connect(target.host, target.port)
        out.accept(
            self._event(
                clock,
                EventType.TCP_CONNECT,
                main_source,
                EventPhase.END,
                {"address": f"{target.host}:{target.port}"},
            )
        )
        clock += connect.latency_ms
        if not connect.ok:
            self._emit_failure(out, clock, main_source, target.host, connect.error)
            result.error = connect.error
            return

        clock += _SERVER_TTFB_MS
        out.accept(
            self._event(
                clock,
                EventType.PAGE_LOAD_COMMITTED,
                main_source,
                EventPhase.NONE,
                {"url": page.url},
            )
        )
        out.accept(self._event(clock, EventType.REQUEST_ALIVE, main_source, EventPhase.END))
        page_commit = clock
        result.page_load_time_ms = page_commit

        context = ScriptContext(
            os_name=self.identity.name,
            user_agent=self.identity.user_agent,
            page_url=page.url,
        )
        page_origin = Origin.from_target(target)

        # Two-phase subresource execution.  Phase 1 walks the plan in
        # page order, allocating source ids exactly as a batch visit
        # always did (ids are observable in archived bytes, so the
        # allocation order is part of the output contract).  Phase 2
        # executes in start-time order so the reorder buffer's watermark
        # can release events eagerly: once a request starts at time t, no
        # event earlier than t can ever be emitted again.
        # Entries are (start, source, planned-request-or-ice-session,
        # parsed-target-or-None); the execution loop dispatches on the
        # source type.
        scheduled: list[tuple[float, NetLogSource, object, object]] = []
        for planned in self._planned_requests(page, context):
            if planned.delay_ms >= self.monitor_window_ms:
                # Fires after the monitoring window closed: invisible to
                # the crawl, exactly like the paper's 20-second truncation.
                continue
            try:
                request_target = parse_target(planned.url)
            except TargetParseError:
                continue
            is_websocket = request_target.scheme in ("ws", "wss")
            source = self._sources.allocate(
                SourceType.WEB_SOCKET if is_websocket else SourceType.URL_REQUEST
            )
            scheduled.append(
                (page_commit + planned.delay_ms, source, planned, request_target)
            )

        # WebRTC sessions: scripts exposing plan_ice() get a peer-connection
        # source each.  Sources are allocated after every HTTP/WS source so
        # pages without WebRTC keep byte-identical archives, and the
        # sessions merge into the same start-time-ordered execution.
        for script in page.scripts:
            plan_ice = getattr(script, "plan_ice", None)
            if plan_ice is None:
                continue
            ice_plan = plan_ice(context)
            if ice_plan is None or ice_plan.delay_ms >= self.monitor_window_ms:
                continue
            session = IceSession(
                plan=ice_plan,
                policy=getattr(script, "policy", "mdns"),
                domain=target.host,
                page_url=page.url,
            )
            source = self._sources.allocate(SourceType.PEER_CONNECTION)
            scheduled.append(
                (page_commit + ice_plan.delay_ms, source, session, None)
            )

        scheduled.sort(key=lambda item: item[0])  # stable: ties keep page order
        for start, source, planned, request_target in scheduled:
            out.advance(start)
            if source.type is SourceType.PEER_CONNECTION:
                self.webrtc.execute(out, source, start, planned)
            else:
                self._execute_request(
                    out, page_origin, planned, source, start, request_target
                )

        result.success = True

    @staticmethod
    def _planned_requests(page: Page, context: ScriptContext):
        """Static subresources first, then script-planned requests."""
        for url in page.resources:
            yield PlannedRequest(url=url, delay_ms=0.0, initiator="document")
        yield from page.planned_requests(context)

    def _resolve_error(self, host: str) -> NetError | None:
        resolution = self.resolver.resolve(host)
        return None if resolution.ok else resolution.error

    def _emit_failure(
        self,
        out: EventSink,
        clock: float,
        source: NetLogSource,
        host: str,
        error: NetError,
    ) -> None:
        if error is NetError.ERR_NAME_NOT_RESOLVED:
            out.accept(
                self._event(
                    clock,
                    EventType.HOST_RESOLVER_IMPL_REQUEST,
                    source,
                    EventPhase.END,
                    {"host": host, "net_error": int(error)},
                )
            )
        elif error in (
            NetError.ERR_CERT_COMMON_NAME_INVALID,
            NetError.ERR_CERT_DATE_INVALID,
            NetError.ERR_CERT_AUTHORITY_INVALID,
            NetError.ERR_SSL_PROTOCOL_ERROR,
        ):
            out.accept(
                self._event(
                    clock,
                    EventType.SSL_CONNECT,
                    source,
                    EventPhase.END,
                    {"host": host, "net_error": int(error)},
                )
            )
        else:
            out.accept(
                self._event(
                    clock,
                    EventType.SOCKET_ERROR,
                    source,
                    EventPhase.NONE,
                    {"host": host, "net_error": int(error)},
                )
            )
        out.accept(
            self._event(
                clock,
                EventType.REQUEST_ALIVE,
                source,
                EventPhase.END,
                {"net_error": int(error)},
            )
        )

    def _execute_request(
        self,
        out: EventSink,
        page_origin: Origin,
        planned: PlannedRequest,
        source: NetLogSource,
        start: float,
        target,
    ) -> None:
        is_websocket = source.type is SourceType.WEB_SOCKET
        params = {"url": planned.url, "method": planned.method}
        if planned.initiator:
            params["initiator"] = planned.initiator
        out.accept(self._event(start, EventType.REQUEST_ALIVE, source, EventPhase.BEGIN))
        out.accept(
            self._event(
                start,
                EventType.WEB_SOCKET_SEND_HANDSHAKE_REQUEST
                if is_websocket
                else EventType.URL_REQUEST_START_JOB,
                source,
                EventPhase.BEGIN,
                params,
            )
        )
        connect = self.network.connect(target.host, target.port)
        end = start + connect.latency_ms
        out.accept(
            self._event(
                end,
                EventType.TCP_CONNECT,
                source,
                EventPhase.END,
                {
                    "address": f"{target.host}:{target.port}",
                    "net_error": int(connect.error),
                },
            )
        )
        if connect.ok:
            for hop in planned.redirect_to:
                out.accept(
                    self._event(
                        end,
                        EventType.URL_REQUEST_REDIRECTED,
                        source,
                        EventPhase.NONE,
                        {"location": hop},
                    )
                )
            if is_websocket:
                out.accept(
                    self._event(
                        end,
                        EventType.WEB_SOCKET_READ_HANDSHAKE_RESPONSE,
                        source,
                        EventPhase.NONE,
                        {"url": planned.url},
                    )
                )
            else:
                out.accept(
                    self._event(
                        end,
                        EventType.HTTP_TRANSACTION_READ_HEADERS,
                        source,
                        EventPhase.NONE,
                        {
                            "visibility": self.policy.visibility(
                                page_origin, target
                            ).value
                        },
                    )
                )
        out.accept(
            self._event(
                end,
                EventType.REQUEST_ALIVE,
                source,
                EventPhase.END,
                {} if connect.ok else {"net_error": int(connect.error)},
            )
        )

    @staticmethod
    def _event(
        time: float,
        type: EventType,
        source: NetLogSource,
        phase: EventPhase,
        params: dict | None = None,
    ) -> NetLogEvent:
        return NetLogEvent(
            time=time, type=type, source=source, phase=phase, params=params or {}
        )
