"""Chrome ``net::`` error model.

Chrome reports network failures as negative integer codes with symbolic
names (``net_error_list.h``).  Table 1 of the paper breaks crawl failures
down by these codes; we reproduce the codes the paper reports plus the
grab-bag the crawls actually hit, and an ``OTHERS`` bucket for the rest.
"""

from __future__ import annotations

import enum


class NetError(enum.IntEnum):
    """Chrome net error codes (values follow Chrome's net_error_list.h)."""

    OK = 0
    ERR_CONNECTION_RESET = -101
    ERR_CONNECTION_REFUSED = -102
    ERR_CONNECTION_FAILED = -104
    ERR_NAME_NOT_RESOLVED = -105
    ERR_INTERNET_DISCONNECTED = -106
    ERR_TIMED_OUT = -7
    ERR_EMPTY_RESPONSE = -324
    ERR_SSL_PROTOCOL_ERROR = -107
    ERR_CERT_COMMON_NAME_INVALID = -200
    ERR_CERT_DATE_INVALID = -201
    ERR_CERT_AUTHORITY_INVALID = -202
    ERR_TOO_MANY_REDIRECTS = -310
    ERR_ABORTED = -3
    #: Not a Chrome code: a visit cancelled by the crawl supervisor for
    #: exceeding its deadline budget (simulated) or wedging (wall clock).
    ERR_VISIT_DEADLINE = -999

    @property
    def failed(self) -> bool:
        return self is not NetError.OK


#: The failure categories Table 1 reports, in the paper's column order.
TABLE1_ERROR_COLUMNS: tuple[str, ...] = (
    "NAME_NOT_RESOLVED",
    "CONN_REFUSED",
    "CONN_RESET",
    "CERT_CN_INVALID",
    "Others",
)


def table1_bucket(error: NetError) -> str:
    """Map a net error to its Table 1 column."""
    if error is NetError.ERR_NAME_NOT_RESOLVED:
        return "NAME_NOT_RESOLVED"
    if error is NetError.ERR_VISIT_DEADLINE:
        # Supervisor-cancelled visits get their own bucket rather than
        # polluting "Others": they are a property of the *visit* (hang,
        # livelock, pathological slowness), not of the site's stack.
        return "VISIT_DEADLINE"
    if error is NetError.ERR_CONNECTION_REFUSED:
        return "CONN_REFUSED"
    if error is NetError.ERR_CONNECTION_RESET:
        return "CONN_RESET"
    if error is NetError.ERR_CERT_COMMON_NAME_INVALID:
        return "CERT_CN_INVALID"
    return "Others"


#: Failure modes that are plausibly transient from the crawler's seat:
#: resolver hiccups, resets, timeouts, handshake glitches, and our own
#: uplink dying.  A retry policy re-attempts these before the failure
#: lands in a Table 1 bucket.  Certificate errors, redirect loops, and
#: aborts are deterministic properties of the site and are not retried.
TRANSIENT_ERRORS: frozenset[NetError] = frozenset(
    {
        NetError.ERR_NAME_NOT_RESOLVED,
        NetError.ERR_CONNECTION_RESET,
        NetError.ERR_CONNECTION_FAILED,
        NetError.ERR_TIMED_OUT,
        NetError.ERR_SSL_PROTOCOL_ERROR,
        NetError.ERR_EMPTY_RESPONSE,
        NetError.ERR_INTERNET_DISCONNECTED,
    }
)


def is_transient(error: NetError) -> bool:
    """Whether a failed visit with ``error`` is worth retrying."""
    return error in TRANSIENT_ERRORS


#: Errors the crawls' "Others" bucket is drawn from when injecting
#: failures (timeouts, SSL handshake issues, redirect loops, ...).
OTHER_ERROR_POOL: tuple[NetError, ...] = (
    NetError.ERR_TIMED_OUT,
    NetError.ERR_SSL_PROTOCOL_ERROR,
    NetError.ERR_CERT_DATE_INVALID,
    NetError.ERR_CERT_AUTHORITY_INVALID,
    NetError.ERR_EMPTY_RESPONSE,
    NetError.ERR_TOO_MANY_REDIRECTS,
    NetError.ERR_CONNECTION_FAILED,
)
