"""Simulated network stack: connection semantics and latency.

Models the piece of reality the paper's observations hinge on: what happens
when a webpage-initiated request hits a localhost port, a LAN address, or a
public server.

* An **open** local port accepts the TCP connection quickly — even when the
  Same-Origin Policy later hides the response body, the fast failure is
  observable (the timing side channel BIG-IP ASM exploits, section 4.3.2).
* A **closed** local port refuses the connection (fast ``CONN_REFUSED``).
* A **dropped** (firewalled) destination times out after the connect
  timeout.
* Public endpoints connect with realistic WAN latency.

Latencies are deterministic functions of the endpoint so repeated crawls
measure identical telemetry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from ..core.addresses import Locality, classify_host
from .errors import NetError

#: Fault seam: called once per connect with (host, port); a returned
#: failing :class:`NetError` makes that connect attempt fail.
ConnectFaultHook = Callable[[str, int], "NetError | None"]


class PortState(enum.Enum):
    """Listening state of a (host, port) endpoint."""

    OPEN = "open"
    CLOSED = "closed"
    DROPPED = "dropped"  # packets silently discarded; connects time out


@dataclass(frozen=True, slots=True)
class ConnectOutcome:
    """Result of a simulated TCP connect attempt.

    ``banner`` carries the service greeting when the endpoint is open and
    has one — readable by the connecting page only when the Same-Origin
    Policy permits (i.e. over WebSockets, or same-origin/CORS HTTP).
    """

    error: NetError
    latency_ms: float
    banner: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is NetError.OK


#: Connect timeout Chrome applies before giving up on an unresponsive
#: destination (milliseconds).  Real Chrome's TCP connect timeout is
#: ~2 minutes but local probes observe the OS-level RST/ICMP behaviour far
#: sooner; the scanners in the paper budget a few seconds per port.
CONNECT_TIMEOUT_MS = 3000.0


def _stable_jitter(key: str, spread_ms: float) -> float:
    """Deterministic pseudo-jitter in [0, spread_ms) derived from ``key``."""
    digest = 2166136261
    for ch in key:
        digest = ((digest ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return (digest % 10_000) / 10_000.0 * spread_ms


@dataclass(slots=True)
class LocalServiceTable:
    """Which local ports are listening on the crawl machine / LAN.

    The defaults model a clean crawl VM: nothing listens on localhost, and
    no LAN devices answer.  Populations install services here to model
    machines running remote-desktop software, native app clients, etc.

    A service may carry a *banner* — the greeting/handshake bytes a
    connecting client reads.  Section 4.3.1 notes the WSS-based scanner
    "may also be gathering more extensive information about the network
    services active on each port (e.g., server version and
    configuration)"; the banner is that information.
    """

    open_ports: dict[tuple[str, int], PortState] = field(default_factory=dict)
    banners: dict[tuple[str, int], str] = field(default_factory=dict)

    def set_state(self, host: str, port: int, state: PortState) -> None:
        if not 0 < port <= 65535:
            raise ValueError(f"invalid port {port}")
        self.open_ports[(host.lower(), port)] = state

    def open_service(self, host: str, port: int, *, banner: str | None = None) -> None:
        self.set_state(host, port, PortState.OPEN)
        if banner is not None:
            self.banners[(host.lower(), port)] = banner

    def state(self, host: str, port: int) -> PortState:
        return self.open_ports.get((host.lower(), port), PortState.CLOSED)

    def banner(self, host: str, port: int) -> str | None:
        """The service's greeting, when it is open and has one."""
        if self.state(host, port) is not PortState.OPEN:
            return None
        return self.banners.get((host.lower(), port))


class SimulatedNetwork:
    """Connect-level behaviour for local and public endpoints."""

    #: Base round-trip latencies per destination class (milliseconds).
    LOOPBACK_RTT_MS = 0.3
    LAN_RTT_MS = 2.0
    WAN_RTT_MS = 35.0

    def __init__(
        self,
        services: LocalServiceTable | None = None,
        *,
        fault_hook: ConnectFaultHook | None = None,
    ) -> None:
        self.services = services if services is not None else LocalServiceTable()
        self._fault_hook = fault_hook
        self.connect_attempts = 0

    def connect(self, host: str, port: int) -> ConnectOutcome:
        """Attempt a TCP connection to ``host:port``."""
        self.connect_attempts += 1
        locality = classify_host(host)
        key = f"{host}:{port}"
        if self._fault_hook is not None:
            fault = self._fault_hook(host, port)
            if fault is not None and fault.failed:
                # A mid-handshake failure: the peer was reached (or the
                # path died) quickly — use the timeout only for timeouts.
                latency = (
                    CONNECT_TIMEOUT_MS
                    if fault is NetError.ERR_TIMED_OUT
                    else self.LAN_RTT_MS + _stable_jitter(key, 2.0)
                )
                return ConnectOutcome(error=fault, latency_ms=latency)
        if locality is Locality.PUBLIC:
            # Public servers in the simulation accept by default; failure
            # injection for page loads happens at DNS / page level.
            return ConnectOutcome(
                error=NetError.OK,
                latency_ms=self.WAN_RTT_MS + _stable_jitter(key, 30.0),
            )
        local_host = self._normalise_local_host(host, locality)
        state = self.services.state(local_host, port)
        if state is PortState.OPEN:
            base = (
                self.LOOPBACK_RTT_MS
                if locality is Locality.LOCALHOST
                else self.LAN_RTT_MS
            )
            return ConnectOutcome(
                error=NetError.OK,
                latency_ms=base + _stable_jitter(key, 1.0),
                banner=self.services.banner(local_host, port),
            )
        if state is PortState.DROPPED:
            return ConnectOutcome(
                error=NetError.ERR_TIMED_OUT, latency_ms=CONNECT_TIMEOUT_MS
            )
        # Closed: the OS answers with RST almost immediately.  This speed
        # difference versus DROPPED is the timing side channel that lets a
        # SOP-restricted HTTP probe infer port liveness.
        base = (
            self.LOOPBACK_RTT_MS
            if locality is Locality.LOCALHOST
            else self.LAN_RTT_MS
        )
        return ConnectOutcome(
            error=NetError.ERR_CONNECTION_REFUSED,
            latency_ms=base + _stable_jitter(key, 1.0),
        )

    @staticmethod
    def _normalise_local_host(host: str, locality: Locality) -> str:
        """Collapse loopback aliases to a single service-table key."""
        if locality is Locality.LOCALHOST:
            return "127.0.0.1"
        return host.lower()
