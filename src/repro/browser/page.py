"""Page model: what a landing page contains and what its scripts request.

A :class:`Page` is the unit the simulated browser loads — the document at a
website's landing URL plus the scripts it embeds.  Scripts implement the
:class:`PageScript` protocol: given a :class:`ScriptContext` (crawl OS,
user agent, page URL) they *plan* the network requests they would fire and
when.  The browser then executes the plan against the simulated network,
producing NetLog telemetry.

Separating planning from execution keeps behaviours pure and testable: a
behaviour model can be unit-tested by inspecting its plan, without a
browser or network in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable


@dataclass(frozen=True, slots=True)
class ScriptContext:
    """What a page script can observe about its execution environment."""

    os_name: str
    user_agent: str
    page_url: str


@dataclass(frozen=True, slots=True)
class PlannedRequest:
    """One network request a script intends to make.

    Attributes
    ----------
    url:
        Full request URL (http/https/ws/wss).
    delay_ms:
        When the request fires, relative to the page-load commit.
    method:
        HTTP method; WebSocket handshakes are always GET.
    initiator:
        Identity of the code that fired the request (script name / library
        URL).  Surfaces in NetLog params, mirroring how the paper traced
        requests back to the JavaScript blob or library that made them.
    redirect_to:
        Optional redirect chain the *server* responds with; used to model
        pages whose public request 30x-redirects to a local destination.
    """

    url: str
    delay_ms: float = 0.0
    method: str = "GET"
    initiator: str | None = None
    redirect_to: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be non-negative")


@runtime_checkable
class PageScript(Protocol):
    """A script embedded on a page."""

    #: Human-readable identity; used as the default request initiator.
    name: str

    def plan(self, context: ScriptContext) -> Sequence[PlannedRequest]:
        """The requests this script fires in the given environment."""
        ...


@dataclass(slots=True)
class Page:
    """A landing page: its URL, static subresources, and scripts."""

    url: str
    scripts: list[PageScript] = field(default_factory=list)
    #: Public subresource URLs the page fetches while loading (images,
    #: stylesheets, third-party JS).  These keep the telemetry realistic —
    #: local requests are a needle in a haystack of ordinary traffic.
    resources: list[str] = field(default_factory=list)

    def planned_requests(self, context: ScriptContext) -> list[PlannedRequest]:
        """All script-planned requests for this page, in plan order."""
        planned: list[PlannedRequest] = []
        for script in self.scripts:
            for request in script.plan(context):
                if request.initiator is None:
                    request = PlannedRequest(
                        url=request.url,
                        delay_ms=request.delay_ms,
                        method=request.method,
                        initiator=script.name,
                        redirect_to=request.redirect_to,
                    )
                planned.append(request)
        return planned
