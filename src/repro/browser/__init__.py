"""Simulated Chrome browser substrate.

Provides the measurement environment the paper ran on: Chrome v84 with a
clean profile on Windows 10 / Ubuntu 20.04 / Mac OS X 10.15.6, a network
stack with realistic local/LAN/public connect semantics, DNS with failure
injection, and the Same-Origin Policy (with its WebSocket exemption).
"""

from .chrome import DEFAULT_MONITOR_WINDOW_MS, SimulatedChrome, VisitResult
from .dns import ResolutionResult, SimulatedResolver
from .errors import (
    OTHER_ERROR_POOL,
    TABLE1_ERROR_COLUMNS,
    NetError,
    table1_bucket,
)
from .network import (
    CONNECT_TIMEOUT_MS,
    ConnectOutcome,
    LocalServiceTable,
    PortState,
    SimulatedNetwork,
)
from .page import Page, PageScript, PlannedRequest, ScriptContext
from .sop import Origin, ResponseVisibility, SameOriginPolicy
from .useragent import ALL_OSES, LINUX, MAC, OS_IDENTITIES, WINDOWS, OSIdentity, identity_for

__all__ = [
    "DEFAULT_MONITOR_WINDOW_MS",
    "SimulatedChrome",
    "VisitResult",
    "ResolutionResult",
    "SimulatedResolver",
    "OTHER_ERROR_POOL",
    "TABLE1_ERROR_COLUMNS",
    "NetError",
    "table1_bucket",
    "CONNECT_TIMEOUT_MS",
    "ConnectOutcome",
    "LocalServiceTable",
    "PortState",
    "SimulatedNetwork",
    "Page",
    "PageScript",
    "PlannedRequest",
    "ScriptContext",
    "Origin",
    "ResponseVisibility",
    "SameOriginPolicy",
    "ALL_OSES",
    "LINUX",
    "MAC",
    "OS_IDENTITIES",
    "WINDOWS",
    "OSIdentity",
    "identity_for",
]
