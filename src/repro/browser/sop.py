"""Same-Origin Policy model.

The paper repeatedly leans on one asymmetry: **WebSocket connections are not
bound by the Same-Origin Policy**, so a page on ``https://example.com`` can
open ``wss://localhost:5939/`` and *read* the handshake outcome and data,
while a cross-origin ``fetch``/``XHR`` to ``http://localhost:4444/`` without
CORS headers lets the page observe only opaque success/failure and timing.

``can_read_response`` answers "can page JavaScript see the response body?";
``observable_signal`` answers what the page learns regardless.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.addresses import RequestTarget


class ResponseVisibility(enum.Enum):
    """What a page's script can observe about a response."""

    FULL = "full"  # body + headers readable
    OPAQUE = "opaque"  # only success/failure + timing observable
    BLOCKED = "blocked"  # request never left the browser


@dataclass(frozen=True, slots=True)
class Origin:
    """A web origin: (scheme, host, port)."""

    scheme: str
    host: str
    port: int

    @classmethod
    def from_target(cls, target: RequestTarget) -> "Origin":
        return cls(scheme=target.scheme, host=target.host, port=target.port)

    def same_origin_as(self, other: "Origin") -> bool:
        return (
            self.scheme == other.scheme
            and self.host == other.host
            and self.port == other.port
        )

    @property
    def is_secure(self) -> bool:
        """True for origins delivered over an authenticated channel."""
        return self.scheme in ("https", "wss")


class SameOriginPolicy:
    """Chrome 84-era SOP semantics (no Private Network Access yet).

    ``cors_allowed`` models the server opting in via
    ``Access-Control-Allow-Origin``; local services essentially never send
    it, which is why the HTTP-based scanners are limited to the timing
    side channel.
    """

    def visibility(
        self,
        page_origin: Origin,
        target: RequestTarget,
        *,
        cors_allowed: bool = False,
    ) -> ResponseVisibility:
        """How much of the response the page can read."""
        if target.scheme in ("ws", "wss"):
            # WebSockets perform their own origin-based handshake but the
            # browser does not gate data on SOP; servers rarely check the
            # Origin header, so pages get bidirectional access.
            return ResponseVisibility.FULL
        target_origin = Origin.from_target(target)
        if page_origin.same_origin_as(target_origin):
            return ResponseVisibility.FULL
        if cors_allowed:
            return ResponseVisibility.FULL
        return ResponseVisibility.OPAQUE

    def request_allowed(self, page_origin: Origin, target: RequestTarget) -> bool:
        """Whether the browser sends the request at all.

        Under classic SOP the answer is always yes — the policy restricts
        *reading*, not *sending*.  That is precisely the gap the paper's
        observed scanners exploit and that the Private Network Access
        proposal (:mod:`repro.defense.pna`) closes.
        """
        del page_origin, target
        return True

    def observable_signal(
        self,
        page_origin: Origin,
        target: RequestTarget,
        *,
        connect_ok: bool,
        latency_ms: float,
        banner: str | None = None,
    ) -> dict:
        """What the initiating script learns from one probe.

        Even an OPAQUE response leaks (success, latency) — sufficient to
        infer port liveness (section 4.3.2's hypothesised timing channel).
        Under FULL visibility (WebSockets, same-origin, CORS) the service
        ``banner`` — version/configuration data — is readable too, which
        is the extra intelligence section 4.3.1 suspects the WSS scanner
        collects.
        """
        visibility = self.visibility(page_origin, target)
        signal: dict = {
            "completed": connect_ok,
            "latency_ms": latency_ms,
            "visibility": visibility.value,
        }
        if visibility is ResponseVisibility.FULL and connect_ok:
            signal["readable"] = True
            if banner is not None:
                signal["banner"] = banner
        return signal
