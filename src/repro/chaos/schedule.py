"""Deterministic, coverage-guided FaultPlan schedule generation.

Schedules come in three families, mirroring how real incidents compose:

- ``single:<kind>``   — one fault kind at its canonical (maskable) shape,
  with an escalation ladder of progressively harsher variants used only
  when the canonical shape fails to fire the seam;
- ``pair:<a>+<b>``    — two kinds sharing a driver, layered into one plan;
- ``sweep:<kind>@<n>``— counter-triggered kinds (crash, outage, shard
  kill) re-timed to seed-derived visit positions.

Everything is a pure function of the generator seed: the same seed always
proposes the same schedules in the same order, which is what makes shrunk
repros replayable.  Coverage state only *prunes* the stream (seams already
fired are skipped; pairs are ranked toward the least-fired kinds), it never
adds new randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.chaos.registry import SEAM_REGISTRY
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, _stable_hash


@dataclass(frozen=True, slots=True)
class Schedule:
    """One generated conformance run: a plan plus where to run it."""

    schedule_id: str
    driver: str
    plan: FaultPlan
    #: Kinds this schedule is trying to fire (coverage targets).
    targets: tuple[FaultKind, ...]
    family: str  # "single" | "pair" | "sweep"


#: Canonical per-kind spec shapes.  Every variant is *maskable*: under the
#: conformance drivers' retry/supervision budgets it must leave Table 1/5
#: byte-identical to the fault-free run.  Later variants are the escalation
#: ladder, tried only when the earlier ones fail to fire the seam.
_VARIANTS: dict[FaultKind, tuple[tuple[FaultSpec, ...], ...]] = {
    FaultKind.DNS: ((FaultSpec(kind=FaultKind.DNS, rate=1.0, times=2),),),
    FaultKind.CONNECTION_RESET: (
        (FaultSpec(kind=FaultKind.CONNECTION_RESET, rate=1.0, times=2),),
    ),
    FaultKind.TLS: ((FaultSpec(kind=FaultKind.TLS, rate=1.0, times=2),),),
    FaultKind.OUTAGE: (
        (FaultSpec(kind=FaultKind.OUTAGE, rate=1.0, at_count=5, duration=2),),
    ),
    FaultKind.NETLOG_TRUNCATION: (
        (FaultSpec(kind=FaultKind.NETLOG_TRUNCATION, rate=0.5),),
        (FaultSpec(kind=FaultKind.NETLOG_TRUNCATION, rate=1.0),),
    ),
    FaultKind.TORN_WRITE: (
        (FaultSpec(kind=FaultKind.TORN_WRITE, rate=0.5, duration=48),),
        (FaultSpec(kind=FaultKind.TORN_WRITE, rate=1.0, duration=48),),
    ),
    FaultKind.BIT_FLIP: (
        (FaultSpec(kind=FaultKind.BIT_FLIP, rate=0.5),),
        (FaultSpec(kind=FaultKind.BIT_FLIP, rate=1.0),),
    ),
    FaultKind.DISK_FULL: ((FaultSpec(kind=FaultKind.DISK_FULL, rate=1.0, times=2),),),
    FaultKind.STORAGE_WRITE: (
        (FaultSpec(kind=FaultKind.STORAGE_WRITE, rate=1.0, times=2),),
    ),
    FaultKind.CRASH: ((FaultSpec(kind=FaultKind.CRASH, rate=1.0, at_count=30),),),
    # HANG wedges a worker for the whole wall deadline, so the canonical
    # shape keeps the rate low; the ladder escalates toward rate=1.0 only
    # if the low-rate draw happens to select no site.
    FaultKind.HANG: (
        (FaultSpec(kind=FaultKind.HANG, rate=0.15, times=1),),
        (FaultSpec(kind=FaultKind.HANG, rate=0.5, times=1),),
        (FaultSpec(kind=FaultKind.HANG, rate=1.0, times=1),),
    ),
    FaultKind.SLOW: (
        (FaultSpec(kind=FaultKind.SLOW, rate=1.0, times=1, duration=2000),),
    ),
    FaultKind.SHARD_CRASH: (
        (FaultSpec(kind=FaultKind.SHARD_CRASH, rate=1.0, at_count=20, times=1),),
    ),
    FaultKind.SHARD_STALL: (
        (FaultSpec(kind=FaultKind.SHARD_STALL, rate=1.0, at_count=20, times=1, duration=2),),
    ),
    FaultKind.SLOW_CLIENT: (
        (FaultSpec(kind=FaultKind.SLOW_CLIENT, rate=1.0, duration=20),),
    ),
    FaultKind.TORN_UPLOAD: ((FaultSpec(kind=FaultKind.TORN_UPLOAD, rate=1.0, times=1),),),
    FaultKind.WORKER_CRASH: (
        (FaultSpec(kind=FaultKind.WORKER_CRASH, rate=1.0, times=1),),
    ),
    FaultKind.JOURNAL_DISK_FULL: (
        (FaultSpec(kind=FaultKind.JOURNAL_DISK_FULL, rate=1.0, times=2),),
    ),
    FaultKind.STUN_TIMEOUT: (
        (FaultSpec(kind=FaultKind.STUN_TIMEOUT, rate=1.0, times=2),),
    ),
    FaultKind.MDNS_RESOLVE_FAIL: (
        (FaultSpec(kind=FaultKind.MDNS_RESOLVE_FAIL, rate=1.0, times=2),),
    ),
}

#: Counter-triggered kinds eligible for timing sweeps, with the visit-count
#: range to sweep over (campaign slice has ~72 visits; the fabric population
#: has ~426).
_SWEEPABLE: tuple[tuple[FaultKind, int], ...] = (
    (FaultKind.CRASH, 60),
    (FaultKind.OUTAGE, 60),
    (FaultKind.SHARD_CRASH, 300),
)


def _pair_spec(spec: FaultSpec) -> FaultSpec:
    """Clamp a canonical spec for use inside a pair schedule.

    Canonical single-kind shapes are maskable *alone*: a transient at
    ``times=2`` leaves 2 of the 4 retry attempts to succeed.  Two such
    kinds layered on one visit consume their failure depths back to back
    (resolution retries, then connect retries), so an unclamped pair would
    exhaust the whole retry budget and fail the visit legitimately.
    Clamping each kind to ``times=1`` keeps the combined depth inside the
    budget while still firing both seams in one run.
    """
    if spec.times <= 1:
        return spec
    return FaultSpec(
        kind=spec.kind,
        rate=spec.rate,
        times=1,
        duration=spec.duration,
        at_count=spec.at_count,
    )


@dataclass
class CoverageState:
    """Cumulative per-seam fire counts the generator steers against."""

    fired: dict[FaultKind, int] = field(default_factory=dict)
    pairs_fired: set[frozenset[FaultKind]] = field(default_factory=set)
    schedules_run: int = 0

    def record(self, fires: dict[FaultKind, int]) -> None:
        self.schedules_run += 1
        hot = [kind for kind, count in fires.items() if count > 0]
        for kind in hot:
            self.fired[kind] = self.fired.get(kind, 0) + fires[kind]
        for a, b in combinations(sorted(hot, key=lambda k: k.value), 2):
            self.pairs_fired.add(frozenset((a, b)))

    def covered(self, kinds: tuple[FaultKind, ...] | None = None) -> set[FaultKind]:
        universe = set(kinds) if kinds is not None else set(FaultKind)
        return {kind for kind, count in self.fired.items() if count > 0 and kind in universe}


class ScheduleGenerator:
    """Propose the next schedule given what coverage has seen so far."""

    def __init__(
        self,
        seed: str,
        *,
        kinds: tuple[FaultKind, ...] | None = None,
        pair_budget: int = 10,
        sweep_budget: int = 6,
    ) -> None:
        self.seed = seed
        self.kinds = tuple(kinds) if kinds is not None else tuple(FaultKind)
        self.pair_budget = pair_budget
        self.sweep_budget = sweep_budget
        self._variant_cursor: dict[FaultKind, int] = {kind: 0 for kind in self.kinds}
        self._pairs_issued: set[frozenset[FaultKind]] = set()
        self._sweeps_issued = 0
        self._sweep_queue = self._build_sweeps()

    # -- construction helpers ------------------------------------------------

    def _plan(self, schedule_id: str, specs: tuple[FaultSpec, ...]) -> FaultPlan:
        return FaultPlan(seed=f"{self.seed}:{schedule_id}", faults=specs)

    def _build_sweeps(self) -> list[Schedule]:
        sweeps: list[Schedule] = []
        for kind, span in _SWEEPABLE:
            if kind not in self.kinds:
                continue
            base = _VARIANTS[kind][0][0]
            positions = sorted(
                {
                    1 + _stable_hash(f"{self.seed}:sweep:{kind.value}:{i}") % span
                    for i in range(2)
                }
            )
            for at_count in positions:
                schedule_id = f"sweep:{kind.value}@{at_count}"
                spec = FaultSpec(
                    kind=kind,
                    rate=base.rate,
                    times=base.times,
                    duration=base.duration,
                    at_count=at_count,
                )
                sweeps.append(
                    Schedule(
                        schedule_id=schedule_id,
                        driver=SEAM_REGISTRY[kind].driver,
                        plan=self._plan(schedule_id, (spec,)),
                        targets=(kind,),
                        family="sweep",
                    )
                )
        return sweeps

    def _pair_candidates(self, coverage: CoverageState) -> list[tuple[FaultKind, FaultKind]]:
        """Same-driver pairs, least-fired kinds first (coverage steering)."""
        by_driver: dict[str, list[FaultKind]] = {}
        for kind in self.kinds:
            by_driver.setdefault(SEAM_REGISTRY[kind].driver, []).append(kind)
        candidates: list[tuple[FaultKind, FaultKind]] = []
        for kinds in by_driver.values():
            for a, b in combinations(sorted(kinds, key=lambda k: k.value), 2):
                pair = frozenset((a, b))
                if pair in self._pairs_issued or pair in coverage.pairs_fired:
                    continue
                # Only pair seams that already fired solo: a pair run can't
                # cover a seam the singles phase couldn't reach.
                if not (coverage.fired.get(a) and coverage.fired.get(b)):
                    continue
                candidates.append((a, b))
        candidates.sort(
            key=lambda pair: (
                coverage.fired.get(pair[0], 0) + coverage.fired.get(pair[1], 0),
                _stable_hash(f"{self.seed}:pair:{pair[0].value}+{pair[1].value}"),
            )
        )
        return candidates

    # -- the proposal loop ---------------------------------------------------

    def propose(self, coverage: CoverageState) -> Schedule | None:
        """Next schedule to run, or None when the generator is exhausted."""
        # Phase 1: fire every seam once, escalating per-kind variants as
        # needed.  A kind whose ladder is exhausted without firing stays
        # uncovered and is reported by the engine.
        for kind in self.kinds:
            if coverage.fired.get(kind, 0) > 0:
                continue
            cursor = self._variant_cursor[kind]
            variants = _VARIANTS[kind]
            if cursor >= len(variants):
                continue
            self._variant_cursor[kind] = cursor + 1
            suffix = f"#{cursor + 1}" if cursor else ""
            schedule_id = f"single:{kind.value}{suffix}"
            return Schedule(
                schedule_id=schedule_id,
                driver=SEAM_REGISTRY[kind].driver,
                plan=self._plan(schedule_id, variants[cursor]),
                targets=(kind,),
                family="single",
            )

        # Phase 2: pairwise combinations within a driver, steered toward the
        # least-fired seams.
        if len(self._pairs_issued) < self.pair_budget:
            candidates = self._pair_candidates(coverage)
            if candidates:
                a, b = candidates[0]
                self._pairs_issued.add(frozenset((a, b)))
                schedule_id = f"pair:{a.value}+{b.value}"
                specs = tuple(
                    _pair_spec(spec) for spec in _VARIANTS[a][0] + _VARIANTS[b][0]
                )
                return Schedule(
                    schedule_id=schedule_id,
                    driver=SEAM_REGISTRY[a].driver,
                    plan=self._plan(schedule_id, specs),
                    targets=(a, b),
                    family="pair",
                )

        # Phase 3: timing sweeps of counter-triggered kinds.
        while self._sweeps_issued < min(self.sweep_budget, len(self._sweep_queue)):
            schedule = self._sweep_queue[self._sweeps_issued]
            self._sweeps_issued += 1
            if coverage.fired.get(schedule.targets[0], 0) == 0:
                continue  # seam never fired solo; a re-timed run won't help
            return schedule

        return None
