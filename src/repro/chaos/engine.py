"""The chaos conformance engine: propose → run → judge → shrink.

`ChaosEngine.run()` drives the coverage-guided loop:

1. ask the `ScheduleGenerator` for the next schedule (it skips seams that
   already fired and steers pairs toward the least-covered kinds);
2. execute it on the schedule's conformance driver;
3. fold the observed per-seam fire counts into the coverage state and the
   obs metrics;
4. evaluate the invariant registry over the observation; every violation
   is delta-debugged down to a minimal `FaultPlan` and written to disk as
   a replayable ``repro-chaos-repro-v1`` document.

The engine's output is a ``repro-chaos-coverage-v1`` report: per-seam fire
counts, pair coverage, violations with their minimal repros, and timing —
the artifact `repro chaos coverage` renders and CI uploads.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field

from repro import obs
from repro.chaos.drivers import ChaosContext, build_drivers
from repro.chaos.invariants import RunObservation, Violation, evaluate_invariants
from repro.chaos.registry import SEAM_REGISTRY, check_registry
from repro.chaos.schedule import CoverageState, Schedule, ScheduleGenerator
from repro.chaos.shrink import MinimalRepro, shrink_plan
from repro.faults.plan import FaultKind, FaultPlan

COVERAGE_FORMAT = "repro-chaos-coverage-v1"

_SCHEDULES = obs.counter(
    "repro_chaos_schedules_total",
    "conformance schedules executed, by driver",
    ("driver",),
)
_SEAM_FIRES = obs.counter(
    "repro_chaos_seam_fires_total",
    "fault-seam fires observed by the conformance engine",
    ("kind",),
)
_VIOLATIONS = obs.counter(
    "repro_chaos_violations_total",
    "invariant violations found, by invariant",
    ("invariant",),
)
_SHRINK_ITERATIONS = obs.counter(
    "repro_chaos_shrink_iterations_total",
    "candidate plans executed while delta-debugging violations",
)
_SCHEDULE_SECONDS = obs.histogram(
    "repro_chaos_schedule_seconds",
    "wall time of one conformance schedule, end to end",
)


@dataclass(slots=True)
class EngineBudget:
    """Bounds for one sweep."""

    max_schedules: int = 40
    pair_budget: int = 6
    sweep_budget: int = 4
    shrink_iterations: int = 32


@dataclass(slots=True)
class ScheduleRecord:
    """One executed schedule, as it appears in the coverage report."""

    schedule_id: str
    driver: str
    family: str
    fired: dict[FaultKind, int]
    violations: list[Violation]
    seconds: float


@dataclass(slots=True)
class ViolationRecord:
    schedule_id: str
    driver: str
    invariant: str
    detail: str
    repro_path: str | None
    shrink_iterations: int
    minimal_specs: int


@dataclass(slots=True)
class ChaosReport:
    """Everything one conformance sweep learned."""

    seed: str
    budget: int
    kinds: tuple[FaultKind, ...]
    schedules: list[ScheduleRecord] = field(default_factory=list)
    violations: list[ViolationRecord] = field(default_factory=list)
    coverage: CoverageState = field(default_factory=CoverageState)
    elapsed_s: float = 0.0

    @property
    def covered(self) -> set[FaultKind]:
        return self.coverage.covered(self.kinds)

    @property
    def uncovered(self) -> set[FaultKind]:
        return set(self.kinds) - self.covered

    @property
    def coverage_percent(self) -> float:
        if not self.kinds:
            return 100.0
        return 100.0 * len(self.covered) / len(self.kinds)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.uncovered

    def to_json(self) -> dict:
        return {
            "format": COVERAGE_FORMAT,
            "seed": self.seed,
            "budget": self.budget,
            "schedules_run": len(self.schedules),
            "coverage_percent": round(self.coverage_percent, 2),
            "elapsed_s": round(self.elapsed_s, 3),
            "seams": [
                {
                    "kind": kind.value,
                    "hook": SEAM_REGISTRY[kind].hook,
                    "layer": SEAM_REGISTRY[kind].layer,
                    "driver": SEAM_REGISTRY[kind].driver,
                    "fires": self.coverage.fired.get(kind, 0),
                    "covered": self.coverage.fired.get(kind, 0) > 0,
                }
                for kind in self.kinds
            ],
            "pairs_fired": sorted(
                "+".join(sorted(kind.value for kind in pair))
                for pair in self.coverage.pairs_fired
            ),
            "schedules": [
                {
                    "id": record.schedule_id,
                    "driver": record.driver,
                    "family": record.family,
                    "fired": {
                        kind.value: count for kind, count in sorted(
                            record.fired.items(), key=lambda item: item[0].value
                        )
                    },
                    "violations": [v.invariant for v in record.violations],
                    "seconds": round(record.seconds, 3),
                }
                for record in self.schedules
            ],
            "violations": [
                {
                    "schedule": record.schedule_id,
                    "driver": record.driver,
                    "invariant": record.invariant,
                    "detail": record.detail,
                    "repro": record.repro_path,
                    "shrink_iterations": record.shrink_iterations,
                    "minimal_specs": record.minimal_specs,
                }
                for record in self.violations
            ],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"


def render_coverage(record: dict) -> str:
    """Human-readable rendering of a saved coverage report."""
    if record.get("format") != COVERAGE_FORMAT:
        raise ValueError(
            f"unsupported coverage format {record.get('format')!r}, "
            f"expected {COVERAGE_FORMAT!r}"
        )
    lines = [
        f"chaos conformance — seed {record['seed']!r}, "
        f"{record['schedules_run']} schedules in {record['elapsed_s']}s, "
        f"coverage {record['coverage_percent']}%",
        "",
        f"{'KIND':<20} {'LAYER':<18} {'DRIVER':<11} {'FIRES':>6}  COVERED",
    ]
    for seam in record["seams"]:
        lines.append(
            f"{seam['kind']:<20} {seam['layer']:<18} {seam['driver']:<11} "
            f"{seam['fires']:>6}  {'yes' if seam['covered'] else 'NO'}"
        )
    pairs = record.get("pairs_fired", [])
    lines.append("")
    lines.append(f"pairs fired: {len(pairs)}")
    for pair in pairs:
        lines.append(f"  {pair}")
    violations = record.get("violations", [])
    lines.append("")
    if violations:
        lines.append(f"violations: {len(violations)}")
        for violation in violations:
            repro = violation.get("repro") or "(no repro written)"
            lines.append(
                f"  {violation['schedule']}: {violation['invariant']} — "
                f"{violation['detail']} [{repro}]"
            )
    else:
        lines.append("violations: none")
    return "\n".join(lines) + "\n"


def _repro_filename(schedule_id: str, invariant: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", f"{schedule_id}-{invariant}".lower()).strip("-")
    return f"repro-{slug}.json"


class ChaosEngine:
    """Coverage-guided conformance sweep over the seam registry."""

    def __init__(
        self,
        ctx: ChaosContext,
        *,
        seed: str = "chaos-conformance",
        kinds: tuple[FaultKind, ...] | None = None,
        budget: EngineBudget | None = None,
        repro_dir: str | None = None,
        drivers: dict[str, object] | None = None,
        progress=None,
    ) -> None:
        check_registry()
        self.ctx = ctx
        self.seed = seed
        self.budget = budget or EngineBudget()
        self.repro_dir = repro_dir
        self.progress = progress
        all_kinds = kinds if kinds is not None else tuple(FaultKind)
        self.drivers = drivers if drivers is not None else build_drivers(ctx)
        # Only target kinds whose driver is actually available (tests pass a
        # restricted driver map to keep runs fast).
        self.kinds = tuple(
            kind for kind in all_kinds if SEAM_REGISTRY[kind].driver in self.drivers
        )
        self.generator = ScheduleGenerator(
            seed,
            kinds=self.kinds,
            pair_budget=self.budget.pair_budget,
            sweep_budget=self.budget.sweep_budget,
        )

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run(self) -> ChaosReport:
        report = ChaosReport(
            seed=self.seed, budget=self.budget.max_schedules, kinds=self.kinds
        )
        started = time.monotonic()
        while len(report.schedules) < self.budget.max_schedules:
            schedule = self.generator.propose(report.coverage)
            if schedule is None:
                break
            self._run_schedule(schedule, report)
        report.elapsed_s = time.monotonic() - started
        return report

    def _run_schedule(self, schedule: Schedule, report: ChaosReport) -> None:
        driver = self.drivers[schedule.driver]
        self._say(f"run {schedule.schedule_id} [{schedule.driver}]")
        t0 = time.monotonic()
        observation = driver.run(schedule.plan)
        seconds = time.monotonic() - t0
        _SCHEDULES.inc(labels=(schedule.driver,))
        _SCHEDULE_SECONDS.observe(seconds)
        for kind, count in observation.fired.items():
            _SEAM_FIRES.inc(count, labels=(kind.value,))
        report.coverage.record(observation.fired)
        violations = evaluate_invariants(observation)
        report.schedules.append(
            ScheduleRecord(
                schedule_id=schedule.schedule_id,
                driver=schedule.driver,
                family=schedule.family,
                fired=dict(observation.fired),
                violations=violations,
                seconds=seconds,
            )
        )
        for violation in violations:
            _VIOLATIONS.inc(labels=(violation.invariant,))
            self._shrink_violation(schedule, violation, report)

    # -- shrinking ----------------------------------------------------------

    def _still_fails(self, schedule: Schedule, violation: Violation):
        driver = self.drivers[schedule.driver]

        def predicate(candidate: FaultPlan) -> bool:
            observation: RunObservation = driver.run(candidate)
            return any(
                v.invariant == violation.invariant
                for v in evaluate_invariants(observation)
            )

        return predicate

    def _shrink_violation(
        self, schedule: Schedule, violation: Violation, report: ChaosReport
    ) -> None:
        self._say(f"shrink {schedule.schedule_id} ({violation.invariant})")
        result = shrink_plan(
            schedule.plan,
            self._still_fails(schedule, violation),
            max_iterations=self.budget.shrink_iterations,
        )
        _SHRINK_ITERATIONS.inc(result.iterations)
        repro = MinimalRepro(
            driver=schedule.driver,
            schedule_id=schedule.schedule_id,
            invariant=violation.invariant,
            detail=violation.detail,
            plan=result.plan,
            shrink_iterations=result.iterations,
            engine_seed=self.seed,
        )
        path: str | None = None
        if self.repro_dir is not None:
            os.makedirs(self.repro_dir, exist_ok=True)
            path = os.path.join(
                self.repro_dir,
                _repro_filename(schedule.schedule_id, violation.invariant),
            )
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(repro.dumps())
        report.violations.append(
            ViolationRecord(
                schedule_id=schedule.schedule_id,
                driver=schedule.driver,
                invariant=violation.invariant,
                detail=violation.detail,
                repro_path=path,
                shrink_iterations=result.iterations,
                minimal_specs=len(repro.plan.faults),
            )
        )

    # -- replay -------------------------------------------------------------

    def replay(self, repro: MinimalRepro) -> list[Violation]:
        """Re-run a minimal repro; the violations it still produces."""
        driver = self.drivers.get(repro.driver)
        if driver is None:
            raise ValueError(f"repro names unknown driver {repro.driver!r}")
        observation = driver.run(repro.plan)
        return evaluate_invariants(observation)
