"""Coverage-guided chaos conformance engine.

The chaos engine closes the gap between the fault seams the pipeline
*models* (`repro.faults.FaultKind`) and the seams the test suite actually
*exercises*.  It introspects a seam registry, deterministically generates
`FaultPlan` schedules from a seed, runs small campaigns / serve jobs under
each schedule, records per-seam fire counts into a coverage report, checks
every run against a declarative invariant registry, and — on any violation —
delta-debugs the failing schedule down to a minimal, replayable JSON repro.

Entry points:

- `repro chaos run`      — coverage-guided conformance sweep
- `repro chaos coverage` — render a saved coverage report
- `repro chaos replay`   — re-run a minimal repro plan
"""

from repro.chaos.engine import ChaosEngine, ChaosReport, EngineBudget
from repro.chaos.invariants import (
    INVARIANT_REGISTRY,
    Invariant,
    RunObservation,
    Violation,
    evaluate_invariants,
)
from repro.chaos.registry import (
    SEAM_REGISTRY,
    Seam,
    SeamDriftError,
    check_registry,
    injector_hooks,
    registry_problems,
    seam_for,
)
from repro.chaos.schedule import Schedule, ScheduleGenerator
from repro.chaos.shrink import MinimalRepro, ShrinkResult, shrink_plan

__all__ = [
    "INVARIANT_REGISTRY",
    "SEAM_REGISTRY",
    "ChaosEngine",
    "ChaosReport",
    "EngineBudget",
    "Invariant",
    "MinimalRepro",
    "RunObservation",
    "Schedule",
    "ScheduleGenerator",
    "Seam",
    "SeamDriftError",
    "ShrinkResult",
    "Violation",
    "check_registry",
    "evaluate_invariants",
    "injector_hooks",
    "registry_problems",
    "seam_for",
    "shrink_plan",
]
