"""Conformance drivers: run one FaultPlan schedule end to end.

A driver owns everything needed to execute a schedule against one slice of
the pipeline and distil the run into a `RunObservation`:

- ``campaign``   — sequential crawl campaign over a small deterministic
  population slice (DNS/network/outage/storage/corruption/crash seams);
- ``supervised`` — the same campaign under the parallel supervised
  executor (hang/slow seams need a watchdog to cancel them);
- ``fabric``     — a 2-shard multi-process fabric run merged against a
  serial baseline (shard crash/stall seams);
- ``serve``      — a loopback self-test daemon under closed-loop load
  (slow-client/torn-upload/worker-crash/journal seams).

Drivers never decide pass/fail themselves: they only gather evidence; the
invariant registry judges it.  All of them accept an ``injector_factory``
so tests can substitute a deliberately buggy injector (the planted-bug
shrinker fixture).
"""

from __future__ import annotations

import contextlib
import io
import os
import tempfile
from dataclasses import dataclass
from typing import Callable

from repro.chaos.invariants import RunObservation
from repro.crawler.campaign import Campaign, finding_fingerprint
from repro.crawler.executor import ExecutorConfig
from repro.crawler.retry import RetryPolicy
from repro.faults.injector import FaultInjector, InjectedCrashError
from repro.faults.plan import FaultKind, FaultPlan
from repro.netlog import (
    EventPhase,
    EventType,
    NetLogArchive,
    NetLogEvent,
    NetLogSource,
    SourceType,
    dumps,
)
from repro.storage.db import TelemetryStore
from repro.storage.integrity import campaign_digest, fsck, population_revisiter
from repro.web.population import CrawlPopulation, build_top_population

InjectorFactory = Callable[[FaultPlan], FaultInjector]

#: Retry budget every campaign-shaped driver runs with; the canonical
#: schedule shapes in `repro.chaos.schedule` are maskable *under this
#: budget* (transient depth <= 3, outage windows <= 2 recheck slots).
RETRIES = 4


@dataclass(slots=True)
class ChaosContext:
    """Shared knobs for one engine run."""

    workdir: str
    scale: float = 0.001
    injector_factory: InjectorFactory = FaultInjector

    def scratch(self, prefix: str) -> str:
        os.makedirs(self.workdir, exist_ok=True)
        return tempfile.mkdtemp(prefix=f"{prefix}-", dir=self.workdir)


def conformance_population(
    scale: float = 0.001, *, webrtc_policy: str | None = "mdns"
) -> CrawlPopulation:
    """A small, deterministic, behaviour-bearing slice of ``top2020``.

    Eight sites seeded with local-network activity plus sixteen filler
    sites, ordered by (rank, domain) so every run — and every process
    count — crawls the same visits in the same order.  WebRTC behaviours
    are enabled (mDNS era) by default so the ``stun-timeout`` and
    ``mdns-resolve-fail`` seams have traffic to strike; baseline and
    faulted runs share the population, so digest comparisons hold.
    """
    population = build_top_population(2020, scale=scale, webrtc_policy=webrtc_policy)
    ranked = sorted(population.websites, key=lambda w: (w.rank, w.domain))
    active = [w for w in ranked if w.domain in population.active_domains][:8]
    chosen = {w.domain for w in active}
    filler = [w for w in ranked if w.domain not in chosen][:16]
    sliced = sorted(active + filler, key=lambda w: (w.rank, w.domain))
    return CrawlPopulation(
        name=population.name,
        websites=sliced,
        oses=population.oses,
        active_domains={w.domain for w in active},
        webrtc_policy=population.webrtc_policy,
    )


def _fingerprints(result) -> tuple[str, ...]:
    return tuple(sorted(repr(finding_fingerprint(f)) for f in result.findings))


def _merge_fired(into: dict[FaultKind, int], injector: FaultInjector | None) -> None:
    if injector is None:
        return
    for kind, count in injector.injected.items():
        if count:
            into[kind] = into.get(kind, 0) + count


def _cli_fsck_exit(db_path: str, netlog_dir: str | None) -> int:
    """Run ``repro fsck`` in-process and report its exit code.

    Imported lazily: the CLI imports `repro.chaos` for the ``chaos``
    subcommand, so a module-level import here would be circular.
    """
    from repro import cli

    argv = ["fsck", "--db", db_path]
    if netlog_dir is not None:
        argv += ["--netlog-dir", netlog_dir]
    sink = io.StringIO()
    with contextlib.redirect_stdout(sink), contextlib.redirect_stderr(sink):
        return cli.main(argv)


class CampaignDriver:
    """Sequential (or supervised-parallel) campaign over the slice."""

    def __init__(self, ctx: ChaosContext, *, name: str = "campaign", workers: int = 0):
        self.ctx = ctx
        self.name = name
        self.workers = workers
        self._population: CrawlPopulation | None = None
        self._baseline: tuple[str, tuple[str, ...]] | None = None

    def population(self) -> CrawlPopulation:
        if self._population is None:
            self._population = conformance_population(self.ctx.scale)
        return self._population

    def _executor(self) -> ExecutorConfig | None:
        if not self.workers:
            return None
        return ExecutorConfig(
            workers=self.workers,
            wall_deadline_s=0.3,
            watchdog_poll_s=0.05,
            handle_signals=False,
        )

    def _campaign(self, store, archive, injector) -> Campaign:
        return Campaign(
            store=store,
            retry_policy=RetryPolicy(max_attempts=RETRIES),
            injector=injector,
            check_connectivity=True,
            checkpoint_every=10,
            executor=self._executor(),
            netlog_archive=archive,
        )

    def baseline(self) -> tuple[str, tuple[str, ...]]:
        """Digest + fingerprints of the fault-free run (memoised)."""
        if self._baseline is None:
            scratch = self.ctx.scratch(f"{self.name}-baseline")
            with TelemetryStore(
                os.path.join(scratch, "crawl.db"), serialized=bool(self.workers)
            ) as store:
                archive = NetLogArchive(os.path.join(scratch, "netlogs"))
                result = self._campaign(store, archive, None).run(self.population())
                self._baseline = (
                    campaign_digest(store, self.population().name),
                    _fingerprints(result),
                )
        return self._baseline

    def run(self, plan: FaultPlan) -> RunObservation:
        observation = RunObservation(driver=self.name)
        try:
            self._execute(plan, observation)
        except Exception as exc:  # noqa: BLE001 — every escape is a violation
            observation.error = f"{type(exc).__name__}: {exc}"
        return observation

    def _execute(self, plan: FaultPlan, observation: RunObservation) -> None:
        baseline_digest, baseline_fps = self.baseline()
        population = self.population()
        scratch = self.ctx.scratch(self.name)
        db_path = os.path.join(scratch, "crawl.db")
        netlog_dir = os.path.join(scratch, "netlogs")
        fired: dict[FaultKind, int] = {}
        with TelemetryStore(db_path, serialized=bool(self.workers)) as store:
            archive = NetLogArchive(netlog_dir)
            injector = self.ctx.injector_factory(plan)
            campaign = self._campaign(store, archive, injector)
            try:
                result = campaign.run(population)
            except InjectedCrashError:
                # The crash seam took the whole process down; resume the
                # campaign from its checkpoint without the crash spec, the
                # way an operator restart would.
                _merge_fired(fired, campaign.last_injector)
                resume_plan = plan.without(FaultKind.CRASH)
                injector = self.ctx.injector_factory(resume_plan)
                campaign = self._campaign(store, archive, injector)
                result = campaign.run(population, resume=True)
            _merge_fired(fired, campaign.last_injector)

            report = fsck(store, archive, crawl=population.name)
            observation.fsck_findings = len(report.findings)
            if report.findings:
                fsck(
                    store,
                    archive,
                    crawl=population.name,
                    repair=True,
                    revisit=population_revisiter(population, store, archive),
                )
                rescan = fsck(store, archive, crawl=population.name)
                observation.fsck_clean_after_repair = rescan.clean
            observation.digest = campaign_digest(store, population.name)
        # The CLI audit needs the store closed first: a serialized WAL store
        # still holds its writer connection, and a second connection would
        # see "database is locked".  The exit code therefore reflects the
        # *final* (post-repair) state of the artefacts.
        observation.fsck_exit_code = _cli_fsck_exit(db_path, netlog_dir)
        observation.baseline_digest = baseline_digest
        observation.fingerprints = _fingerprints(result)
        observation.baseline_fingerprints = baseline_fps
        observation.fired = fired


class FabricDriver:
    """Two-shard multi-process fabric run vs a serial baseline."""

    name = "fabric"

    def __init__(self, ctx: ChaosContext):
        self.ctx = ctx
        self._baseline: tuple[str, tuple[str, ...]] | None = None

    def _spec(self):
        from repro.crawler.shard import PopulationSpec

        return PopulationSpec(population="top2020", scale=self.ctx.scale)

    def baseline(self) -> tuple[str, tuple[str, ...]]:
        if self._baseline is None:
            scratch = self.ctx.scratch("fabric-baseline")
            population = self._spec().build()
            with TelemetryStore(os.path.join(scratch, "serial.db")) as store:
                result = Campaign(
                    store=store, retry_policy=RetryPolicy(max_attempts=RETRIES)
                ).run(population)
                self._baseline = (
                    campaign_digest(store, population.name),
                    _fingerprints(result),
                )
        return self._baseline

    def run(self, plan: FaultPlan) -> RunObservation:
        observation = RunObservation(driver=self.name)
        try:
            self._execute(plan, observation)
        except Exception as exc:  # noqa: BLE001
            observation.error = f"{type(exc).__name__}: {exc}"
        return observation

    def _execute(self, plan: FaultPlan, observation: RunObservation) -> None:
        from repro.crawler.fabric import CrawlFabric, FabricConfig

        baseline_digest, baseline_fps = self.baseline()
        scratch = self.ctx.scratch("fabric")
        fabric = CrawlFabric(
            self._spec(),
            FabricConfig(shards=2, heartbeat_timeout_s=1.5, checkpoint_every=10),
            workdir=scratch,
            fault_plan=plan,
        )
        outcome = fabric.run()
        # Shard faults fire inside the worker processes, so the parent-side
        # injector never sees them; the coordinator's restart ledger is the
        # ground truth for those seams.
        fired: dict[FaultKind, int] = {}
        for reasons in outcome.report.restarts.values():
            for reason in reasons:
                if reason == "crash":
                    fired[FaultKind.SHARD_CRASH] = fired.get(FaultKind.SHARD_CRASH, 0) + 1
                elif reason == "stall":
                    fired[FaultKind.SHARD_STALL] = fired.get(FaultKind.SHARD_STALL, 0) + 1
        observation.fired = fired
        with TelemetryStore(fabric.rollup_path) as rollup:
            observation.digest = campaign_digest(rollup, outcome.result.name)
        observation.baseline_digest = baseline_digest
        observation.fingerprints = _fingerprints(outcome.result)
        observation.baseline_fingerprints = baseline_fps


def _serve_document(urls: list[str]) -> bytes:
    """A minimal well-formed NetLog document: one page, one flow per URL."""
    events: list[NetLogEvent] = []
    next_source = 1

    def add(time: float, type_: EventType, source: NetLogSource, phase=EventPhase.NONE, **params):
        events.append(
            NetLogEvent(time=time, type=type_, source=source, phase=phase, params=params)
        )

    page = NetLogSource(id=next_source, type=SourceType.URL_REQUEST)
    next_source += 1
    add(100.0, EventType.PAGE_LOAD_COMMITTED, page, url="https://site.example/")
    for index, url in enumerate(urls):
        source = NetLogSource(id=next_source, type=SourceType.URL_REQUEST)
        next_source += 1
        start = 2100.0 + 5.0 * index
        add(start, EventType.REQUEST_ALIVE, source, EventPhase.BEGIN)
        add(start, EventType.URL_REQUEST_START_JOB, source, EventPhase.BEGIN, url=url, method="GET")
        add(start + 2.0, EventType.REQUEST_ALIVE, source, EventPhase.END)
    return dumps(events).encode()


class ServeDriver:
    """Loopback self-test daemon under closed-loop chaos load."""

    name = "serve"

    CLIENTS = 2
    ROUNDS = 2

    def __init__(self, ctx: ChaosContext):
        self.ctx = ctx
        self._corpus = None

    def baseline(self) -> None:
        """Serve needs no baseline run: every report's expected bytes are
        computed analytically from the upload."""
        return None

    def corpus(self):
        from repro.serve.bench import BenchItem
        from repro.serve.report import analyze_report_text

        if self._corpus is None:
            shapes = {
                "localhost-probe": ["http://localhost:5939/check"],
                "lan-sweep": [f"http://192.168.1.{i}/cam.jpg" for i in range(1, 5)],
                "public-only": [f"https://cdn{i}.example/bundle.js" for i in range(3)],
            }
            self._corpus = [
                BenchItem(name=name, body=body, expected=analyze_report_text(body))
                for name, body in ((n, _serve_document(u)) for n, u in shapes.items())
            ]
        return self._corpus

    def run(self, plan: FaultPlan) -> RunObservation:
        observation = RunObservation(driver=self.name)
        try:
            self._execute(plan, observation)
        except Exception as exc:  # noqa: BLE001
            observation.error = f"{type(exc).__name__}: {exc}"
        return observation

    def _execute(self, plan: FaultPlan, observation: RunObservation) -> None:
        from repro.serve.bench import run_load
        from repro.serve.engine import EngineConfig, JobEngine
        from repro.serve.http import ReproServer, ServerConfig
        from repro.storage.jobs import JobJournal

        corpus = self.corpus()
        scratch = self.ctx.scratch("serve")
        injector = self.ctx.injector_factory(plan)
        with TelemetryStore(
            os.path.join(scratch, "serve.sqlite"), serialized=True, wal=True
        ) as store:
            journal = JobJournal(store, write_fault_hook=injector.journal_write_hook)
            engine = JobEngine(
                EngineConfig(
                    workers=2,
                    backlog=16,
                    job_deadline_s=1.0,
                    quarantine_after=6,
                    breaker_threshold=8,
                    breaker_cooldown_s=0.3,
                ),
                journal=journal,
                spool_dir=os.path.join(scratch, "spool"),
                injector=injector,
            )
            server = ReproServer(
                engine,
                ServerConfig(read_timeout_s=5.0, sync_wait_s=5.0),
                injector=injector,
            )
            with server:
                result = run_load(
                    server.url,
                    corpus,
                    clients=self.CLIENTS,
                    rounds=self.ROUNDS,
                    give_up_after_s=60.0,
                )
        observation.fired = {k: v for k, v in injector.injected.items() if v}
        observation.wrong_reports = result.wrong_reports
        observation.unrecovered = result.unrecovered
        observation.reports_expected = self.CLIENTS * self.ROUNDS * len(corpus)
        observation.reports_received = result.reports


def build_drivers(ctx: ChaosContext) -> dict[str, object]:
    """The four conformance drivers, keyed by registry driver name."""
    return {
        "campaign": CampaignDriver(ctx, name="campaign", workers=0),
        "supervised": CampaignDriver(ctx, name="supervised", workers=2),
        "fabric": FabricDriver(ctx),
        "serve": ServeDriver(ctx),
    }
