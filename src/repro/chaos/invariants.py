"""Declarative invariant registry for chaos conformance runs.

Each invariant is a named predicate over a `RunObservation` — the
driver-agnostic record of what a faulted run produced (digests,
fingerprint sets, fsck findings, serve report verdicts, CLI exit codes).
An invariant only votes when the observation carries the fields it needs,
so the one registry covers every driver.

The registry is the conformance bar from the paper reproduction's core
claim: local-network probing results must be byte-stable under every
modelled fault, with persisted damage either masked upstream or detected
and repaired by `repro fsck`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.chaos.registry import SEAM_REGISTRY
from repro.faults.plan import FaultKind


@dataclass(slots=True)
class RunObservation:
    """Everything a driver saw while running one schedule."""

    driver: str
    #: Per-kind fire counts observed at the seams.
    fired: dict[FaultKind, int] = field(default_factory=dict)

    # Campaign-shaped evidence.
    digest: str | None = None
    baseline_digest: str | None = None
    fingerprints: tuple[str, ...] | None = None
    baseline_fingerprints: tuple[str, ...] | None = None

    # fsck evidence (campaign stores only).
    fsck_findings: int | None = None
    fsck_clean_after_repair: bool | None = None
    fsck_exit_code: int | None = None

    # Serve evidence.
    wrong_reports: int | None = None
    unrecovered: int | None = None
    reports_expected: int | None = None
    reports_received: int | None = None

    #: Unexpected exception text, if the run itself blew up.
    error: str | None = None

    def detects_expected(self) -> bool:
        """Did any fired seam persist damage fsck is required to find?"""
        return any(
            count > 0 and SEAM_REGISTRY[kind].fsck == "detects"
            for kind, count in self.fired.items()
        )


@dataclass(frozen=True, slots=True)
class Violation:
    """One invariant broken by one schedule."""

    invariant: str
    detail: str


@dataclass(frozen=True, slots=True)
class Invariant:
    name: str
    description: str
    #: Returns a failure detail string, or None when the invariant holds or
    #: the observation lacks the evidence this invariant judges.
    check: Callable[[RunObservation], str | None]


def _check_no_run_error(obs: RunObservation) -> str | None:
    if obs.error is not None:
        return f"run raised unexpectedly: {obs.error}"
    return None


def _check_digest(obs: RunObservation) -> str | None:
    if obs.digest is None or obs.baseline_digest is None:
        return None
    if obs.digest != obs.baseline_digest:
        return f"campaign digest {obs.digest[:16]}… != fault-free {obs.baseline_digest[:16]}…"
    return None


def _check_fingerprints(obs: RunObservation) -> str | None:
    if obs.fingerprints is None or obs.baseline_fingerprints is None:
        return None
    if obs.fingerprints != obs.baseline_fingerprints:
        ours = set(obs.fingerprints)
        base = set(obs.baseline_fingerprints)
        return (
            f"finding fingerprints diverged: {len(ours - base)} extra, "
            f"{len(base - ours)} missing"
        )
    return None


def _check_fsck(obs: RunObservation) -> str | None:
    if obs.fsck_findings is None:
        return None
    if obs.detects_expected():
        if obs.fsck_findings == 0:
            return "corruption seam fired but fsck reported a clean store"
        if obs.fsck_clean_after_repair is False:
            return f"fsck could not repair the store ({obs.fsck_findings} findings)"
        return None
    if obs.fsck_findings > 0:
        return f"fsck found {obs.fsck_findings} findings after a masked-fault run"
    return None


def _check_serve_reports(obs: RunObservation) -> str | None:
    if obs.wrong_reports is None:
        return None
    if obs.wrong_reports:
        return f"{obs.wrong_reports} serve reports diverged from repro analyze --json"
    if obs.unrecovered:
        return f"{obs.unrecovered} serve clients never recovered a report"
    if (
        obs.reports_expected is not None
        and obs.reports_received is not None
        and obs.reports_received < obs.reports_expected
    ):
        return (
            f"only {obs.reports_received}/{obs.reports_expected} serve reports delivered"
        )
    return None


def _check_exit_codes(obs: RunObservation) -> str | None:
    if obs.fsck_exit_code is None or obs.fsck_findings is None:
        return None
    # The CLI audit runs over the final artefacts (after any repair pass),
    # so a clean-or-repaired store must exit 0 and an unrepaired one 1.
    ended_clean = obs.fsck_findings == 0 or obs.fsck_clean_after_repair is True
    expected = 0 if ended_clean else 1
    if obs.fsck_exit_code != expected:
        return (
            f"repro fsck exited {obs.fsck_exit_code} over a store that "
            f"{'ended clean' if ended_clean else 'still has findings'} "
            f"(convention says {expected})"
        )
    return None


INVARIANT_REGISTRY: tuple[Invariant, ...] = (
    Invariant(
        "no-run-error",
        "faulted runs finish; injected faults never escape the recovery machinery",
        _check_no_run_error,
    ),
    Invariant(
        "campaign-digest-equality",
        "campaign digest is byte-identical to the fault-free run (Table 1/5 invariance)",
        _check_digest,
    ),
    Invariant(
        "fingerprint-set-equality",
        "the set of finding fingerprints matches the fault-free run exactly",
        _check_fingerprints,
    ),
    Invariant(
        "fsck-conformance",
        "fsck is clean after masked faults, detects+repairs persisted corruption",
        _check_fsck,
    ),
    Invariant(
        "serve-report-byte-identity",
        "every serve client eventually gets a byte-exact report; none get a wrong one",
        _check_serve_reports,
    ),
    Invariant(
        "exit-code-convention",
        "repro fsck over the faulted store honours the 0/1 exit convention",
        _check_exit_codes,
    ),
)


def evaluate_invariants(obs: RunObservation) -> list[Violation]:
    """All invariant violations in one observation, registry order."""
    violations: list[Violation] = []
    for invariant in INVARIANT_REGISTRY:
        detail = invariant.check(obs)
        if detail is not None:
            violations.append(Violation(invariant=invariant.name, detail=detail))
    return violations
