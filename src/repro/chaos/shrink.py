"""Delta-debugging shrinker and the minimal-repro JSON format.

When a schedule violates an invariant, the shrinker reduces its fault
specs to a minimal failing subset using ddmin.  Because every fault draw
is a pure function of ``(plan seed, kind, key)``, removing a spec never
perturbs the draws of the specs that remain — so subset runs are faithful
and the reduction is deterministic: the same violation always shrinks to
the same minimal plan, byte for byte.

The result is written as a ``repro-chaos-repro-v1`` JSON document that
``repro chaos replay`` re-runs against the same driver.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.faults.plan import FaultPlan

REPRO_FORMAT = "repro-chaos-repro-v1"

#: A predicate deciding whether a reduced plan still reproduces the
#: violation being shrunk.  Must be pure with respect to the plan.
FailurePredicate = Callable[[FaultPlan], bool]


@dataclass(slots=True)
class ShrinkResult:
    """What ddmin found."""

    plan: FaultPlan
    #: Candidate plans actually executed (cache misses).
    iterations: int
    #: Candidate plans answered from the subset cache.
    cached: int


def shrink_plan(
    plan: FaultPlan,
    still_fails: FailurePredicate,
    *,
    max_iterations: int = 64,
) -> ShrinkResult:
    """Reduce ``plan.faults`` to a minimal subset for which the failure
    predicate still holds (classic ddmin over the spec list).

    ``still_fails(plan)`` must be True for the input plan; the returned
    plan is 1-minimal: removing any single remaining spec makes the
    failure disappear (unless ``max_iterations`` ran out first).
    """
    specs = list(plan.faults)
    cache: dict[frozenset[int], bool] = {}
    executed = 0
    cached = 0

    def subset_fails(indices: tuple[int, ...]) -> bool:
        nonlocal executed, cached
        key = frozenset(indices)
        if key in cache:
            cached += 1
            return cache[key]
        if executed >= max_iterations:
            return False
        executed += 1
        candidate = FaultPlan(
            seed=plan.seed, faults=tuple(specs[i] for i in indices)
        )
        verdict = bool(still_fails(candidate))
        cache[key] = verdict
        return verdict

    current = tuple(range(len(specs)))
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        chunks = [current[i : i + chunk] for i in range(0, len(current), chunk)]
        reduced = False
        # Try each chunk alone, then each complement, smallest survivor wins.
        for candidate in chunks + [
            tuple(i for i in current if i not in set(part)) for part in chunks
        ]:
            if not candidate or len(candidate) == len(current):
                continue
            if subset_fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)

    minimal = FaultPlan(seed=plan.seed, faults=tuple(specs[i] for i in current))
    return ShrinkResult(plan=minimal, iterations=executed, cached=cached)


@dataclass(slots=True)
class MinimalRepro:
    """A shrunk violation, as persisted to disk."""

    driver: str
    schedule_id: str
    invariant: str
    detail: str
    plan: FaultPlan
    shrink_iterations: int
    engine_seed: str

    def to_json(self) -> dict:
        return {
            "format": REPRO_FORMAT,
            "driver": self.driver,
            "schedule": self.schedule_id,
            "invariant": self.invariant,
            "detail": self.detail,
            "engine_seed": self.engine_seed,
            "shrink_iterations": self.shrink_iterations,
            "plan": self.plan.to_json(),
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, record: dict) -> "MinimalRepro":
        if not isinstance(record, dict):
            raise ValueError(f"repro document must be an object, got {type(record).__name__}")
        fmt = record.get("format")
        if fmt != REPRO_FORMAT:
            raise ValueError(f"unsupported repro format {fmt!r}, expected {REPRO_FORMAT!r}")
        for name in ("driver", "schedule", "invariant", "engine_seed"):
            value = record.get(name)
            if not isinstance(value, str) or not value:
                raise ValueError(f"field '{name}' must be a non-empty string, got {value!r}")
        iterations = record.get("shrink_iterations", 0)
        if isinstance(iterations, bool) or not isinstance(iterations, int) or iterations < 0:
            raise ValueError(
                f"field 'shrink_iterations' must be a non-negative int, got {iterations!r}"
            )
        plan_record = record.get("plan")
        if not isinstance(plan_record, dict):
            raise ValueError(f"field 'plan' must be an object, got {plan_record!r}")
        return cls(
            driver=record["driver"],
            schedule_id=record["schedule"],
            invariant=record["invariant"],
            detail=str(record.get("detail", "")),
            plan=FaultPlan.from_json(plan_record),
            shrink_iterations=iterations,
            engine_seed=record["engine_seed"],
        )

    @classmethod
    def loads(cls, text: str) -> "MinimalRepro":
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid repro JSON: {exc}") from exc
        return cls.from_json(record)

    @classmethod
    def load(cls, path: str) -> "MinimalRepro":
        with open(path, encoding="utf-8") as handle:
            return cls.loads(handle.read())


__all__ = [
    "REPRO_FORMAT",
    "FailurePredicate",
    "MinimalRepro",
    "ShrinkResult",
    "shrink_plan",
]
