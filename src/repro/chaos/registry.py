"""Seam registry: every fault kind mapped to its injection seam.

A *seam* is the point where a `FaultKind` enters the pipeline: the
`FaultInjector` hook that fires it, the pipeline layer that calls the hook,
the conformance driver that can exercise it end to end, and the chaos
tests/benches that already cover it.  The registry is the engine's source
of truth for coverage accounting, and `registry_problems()` turns it into a
drift lint: adding a new `FaultKind` or a new `*_hook` on the injector
without registering a seam fails the suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind

#: Hooks that exist on `FaultInjector` but do not themselves fire a fault —
#: they are plumbing shared by every seam.
_UTILITY_HOOKS = frozenset({"write_fault_hook"})

#: Kinds with no dedicated injector hook: the executor drives them itself
#: from `plan.fail_depth` and reports fires through `record_injection`.
_EXECUTOR_DRIVEN = "record_injection"


class SeamDriftError(RuntimeError):
    """The seam registry no longer matches the fault-injection surface."""


@dataclass(frozen=True, slots=True)
class Seam:
    """One registered fault seam."""

    kind: FaultKind
    #: `FaultInjector` attribute that fires (or records) this kind.
    hook: str
    #: Pipeline layer that calls the hook, dotted-module style.
    layer: str
    #: Conformance driver able to exercise the seam end to end
    #: ("campaign" | "supervised" | "fabric" | "serve").
    driver: str
    #: What `repro fsck` must say after a faulted run: "clean" (the fault is
    #: masked upstream) or "detects" (persisted damage fsck must find and
    #: repair).
    fsck: str = "clean"
    #: Repo-relative chaos tests/benches that exercise the seam today.
    exercised_by: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.driver not in ("campaign", "supervised", "fabric", "serve"):
            raise ValueError(f"unknown driver {self.driver!r} for seam {self.kind.value}")
        if self.fsck not in ("clean", "detects"):
            raise ValueError(f"unknown fsck expectation {self.fsck!r} for seam {self.kind.value}")


SEAM_REGISTRY: dict[FaultKind, Seam] = {
    seam.kind: seam
    for seam in (
        Seam(
            FaultKind.DNS,
            hook="dns_hook",
            layer="browser.dns",
            driver="campaign",
            exercised_by=(
                "benchmarks/test_ablation_fault_tolerance.py",
                "tests/faults/test_injector.py",
                "tests/crawler/test_campaign_resilience.py",
            ),
            description="resolution returns ERR_NAME_NOT_RESOLVED for selected hosts",
        ),
        Seam(
            FaultKind.CONNECTION_RESET,
            hook="connect_hook",
            layer="browser.chrome",
            driver="campaign",
            exercised_by=(
                "benchmarks/test_ablation_fault_tolerance.py",
                "tests/faults/test_injector.py",
            ),
            description="TCP connect aborts with ERR_CONNECTION_RESET",
        ),
        Seam(
            FaultKind.TLS,
            hook="connect_hook",
            layer="browser.chrome",
            driver="campaign",
            exercised_by=(
                "benchmarks/test_ablation_fault_tolerance.py",
                "tests/faults/test_injector.py",
            ),
            description="TLS handshake fails on port 443",
        ),
        Seam(
            FaultKind.OUTAGE,
            hook="connectivity_hook",
            layer="crawler.crawl",
            driver="campaign",
            exercised_by=(
                "benchmarks/test_ablation_fault_tolerance.py",
                "tests/crawler/test_retry.py",
            ),
            description="whole-network outage window gated by the connectivity check",
        ),
        Seam(
            FaultKind.NETLOG_TRUNCATION,
            hook="corrupt_netlog",
            layer="netlog.archive",
            driver="campaign",
            fsck="detects",
            exercised_by=("tests/faults/test_injector.py",),
            description="archived NetLog document truncated mid-record",
        ),
        Seam(
            FaultKind.TORN_WRITE,
            hook="corrupt_netlog",
            layer="netlog.archive",
            driver="campaign",
            fsck="detects",
            exercised_by=(
                "benchmarks/test_ablation_integrity.py",
                "tests/faults/test_injector.py",
            ),
            description="a window of archived bytes replaced with NULs",
        ),
        Seam(
            FaultKind.BIT_FLIP,
            hook="corrupt_netlog",
            layer="netlog.archive",
            driver="campaign",
            fsck="detects",
            exercised_by=(
                "benchmarks/test_ablation_integrity.py",
                "tests/faults/test_injector.py",
            ),
            description="single archived byte flipped, breaking the CRC chain",
        ),
        Seam(
            FaultKind.DISK_FULL,
            hook="archive_write_hook",
            layer="netlog.archive",
            driver="campaign",
            exercised_by=(
                "benchmarks/test_ablation_integrity.py",
                "tests/faults/test_injector.py",
            ),
            description="archive writes raise ENOSPC until retried",
        ),
        Seam(
            FaultKind.STORAGE_WRITE,
            hook="storage_hook",
            layer="storage.telemetry",
            driver="campaign",
            exercised_by=(
                "benchmarks/test_ablation_fault_tolerance.py",
                "tests/crawler/test_campaign_resilience.py",
            ),
            description="telemetry-store writes fail transiently",
        ),
        Seam(
            FaultKind.CRASH,
            hook="on_visit",
            layer="crawler.campaign",
            driver="campaign",
            exercised_by=(
                "benchmarks/test_ablation_fault_tolerance.py",
                "tests/crawler/test_campaign_resilience.py",
            ),
            description="hard process crash after N visits; run resumes from checkpoint",
        ),
        Seam(
            FaultKind.HANG,
            hook=_EXECUTOR_DRIVEN,
            layer="crawler.executor",
            driver="supervised",
            exercised_by=(
                "benchmarks/test_ablation_fault_tolerance.py",
                "tests/crawler/test_executor.py",
            ),
            description="visit wedges until the watchdog cancels it (wall deadline)",
        ),
        Seam(
            FaultKind.SLOW,
            hook=_EXECUTOR_DRIVEN,
            layer="crawler.executor",
            driver="supervised",
            exercised_by=(
                "benchmarks/test_ablation_fault_tolerance.py",
                "tests/crawler/test_executor.py",
            ),
            description="visit stalls on the simulated clock, eating deadline budget",
        ),
        Seam(
            FaultKind.SHARD_CRASH,
            hook="shard_crash_hook",
            layer="crawler.fabric",
            driver="fabric",
            exercised_by=(
                "benchmarks/test_ablation_sharding.py",
                "tests/crawler/test_fabric.py",
            ),
            description="shard process SIGKILLed mid-visit; coordinator restarts it",
        ),
        Seam(
            FaultKind.SHARD_STALL,
            hook="shard_stall_hook",
            layer="crawler.fabric",
            driver="fabric",
            exercised_by=("tests/crawler/test_fabric.py",),
            description="shard stops heartbeating; coordinator detects and restarts",
        ),
        Seam(
            FaultKind.SLOW_CLIENT,
            hook="slow_client_hook",
            layer="serve.http",
            driver="serve",
            exercised_by=(
                "benchmarks/test_ablation_serve.py",
                "tests/serve/test_http.py",
            ),
            description="client trickles its upload, exercising read timeouts",
        ),
        Seam(
            FaultKind.TORN_UPLOAD,
            hook="torn_upload_hook",
            layer="serve.http",
            driver="serve",
            exercised_by=(
                "benchmarks/test_ablation_serve.py",
                "tests/serve/test_http.py",
            ),
            description="upload body truncated in flight; client must resubmit",
        ),
        Seam(
            FaultKind.WORKER_CRASH,
            hook="worker_crash_hook",
            layer="serve.engine",
            driver="serve",
            exercised_by=(
                "benchmarks/test_ablation_serve.py",
                "tests/serve/test_engine.py",
            ),
            description="analysis worker dies mid-job; engine retries from spool",
        ),
        Seam(
            FaultKind.STUN_TIMEOUT,
            hook="stun_hook",
            layer="browser.webrtc",
            driver="campaign",
            exercised_by=(
                "benchmarks/test_ablation_webrtc.py",
                "tests/webrtc/test_faults.py",
            ),
            description="STUN binding check to an explicit peer times out; the request was already on the wire, so leak counts hold",
        ),
        Seam(
            FaultKind.MDNS_RESOLVE_FAIL,
            hook="mdns_hook",
            layer="browser.webrtc",
            driver="campaign",
            exercised_by=(
                "benchmarks/test_ablation_webrtc.py",
                "tests/webrtc/test_faults.py",
            ),
            description="mDNS candidate registration fails; the (non-leaking) candidate is withheld, never the raw address",
        ),
        Seam(
            FaultKind.JOURNAL_DISK_FULL,
            hook="journal_write_hook",
            layer="storage.jobs",
            driver="serve",
            exercised_by=(
                "benchmarks/test_ablation_serve.py",
                "tests/serve/test_engine.py",
            ),
            description="job-journal writes dropped; engine absorbs the desync",
        ),
    )
}


def seam_for(kind: FaultKind) -> Seam:
    try:
        return SEAM_REGISTRY[kind]
    except KeyError:
        raise SeamDriftError(
            f"fault kind '{kind.value}' has no registered seam; add it to "
            "repro.chaos.registry.SEAM_REGISTRY"
        ) from None


def injector_hooks() -> tuple[str, ...]:
    """Every `*_hook` method on `FaultInjector`, sorted."""
    return tuple(
        sorted(
            name
            for name in dir(FaultInjector)
            if name.endswith("_hook") and callable(getattr(FaultInjector, name))
        )
    )


def registry_problems() -> list[str]:
    """Drift between the registry and the fault surface, one line each."""
    problems: list[str] = []
    for kind in FaultKind:
        seam = SEAM_REGISTRY.get(kind)
        if seam is None:
            problems.append(f"fault kind '{kind.value}' has no registered seam")
            continue
        if not hasattr(FaultInjector, seam.hook):
            problems.append(
                f"seam '{kind.value}' names hook '{seam.hook}' which does not "
                "exist on FaultInjector"
            )
        if not seam.exercised_by:
            problems.append(f"seam '{kind.value}' lists no exercising chaos test or bench")
    registered_hooks = {seam.hook for seam in SEAM_REGISTRY.values()}
    for hook in injector_hooks():
        if hook in _UTILITY_HOOKS:
            continue
        if hook not in registered_hooks:
            problems.append(
                f"FaultInjector.{hook} maps back to no registered FaultKind seam"
            )
    for kind in SEAM_REGISTRY:
        if kind not in FaultKind:
            problems.append(f"registry entry {kind!r} is not a FaultKind")
    return problems


def check_registry() -> None:
    """Raise `SeamDriftError` if the registry has drifted from the code."""
    problems = registry_problems()
    if problems:
        raise SeamDriftError("; ".join(problems))
