"""On-disk archive of per-visit NetLog documents.

The paper kept every capture ("11 TB across the study") so telemetry
could be re-parsed when the reduction pipeline changed.  This archive
reproduces that design at laptop scale: one checksummed NetLog JSON
document per (crawl, OS, domain) visit, laid out as
``root/<crawl>/<os>/<domain>.json``.

Every document is written with ``checksums=True`` (per-record CRC32s,
rolling hash chain, integrity trailer — see :mod:`repro.netlog.writer`)
and carries a ``visitMeta`` header block with the visit's row-level
metadata, so ``repro fsck`` can rebuild a damaged database row from the
archive alone.  Writes go through a temp file and an atomic rename; the
simulated torn writes, bit flips and disk-full failures of the fault
injector enter through the ``corrupt`` / pre-write hooks instead of by
racing the real filesystem.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from .events import NetLogEvent
from .parser import ParseStats
from .pipeline import EventSink, ListSink, feed
from .streaming import iter_events_streaming
from .writer import (
    NetLogBuffer,
    write_document_head,
    write_document_tail,
)

#: The top-level key carrying visit metadata in archived documents.
META_KEY = "visitMeta"

#: A text-mangling hook applied to the serialised document before it hits
#: disk (the fault injector's ``corrupt_netlog``).
CorruptHook = Callable[[str, str], str]


def _safe_component(name: str) -> str:
    """A path-safe single component (domains may not traverse)."""
    return name.replace(os.sep, "_").replace("..", "_") or "_"


class NetLogArchive:
    """Per-visit checksummed NetLog documents under one root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- layout ------------------------------------------------------------

    def path_for(self, crawl: str, os_name: str, domain: str) -> Path:
        return (
            self.root
            / _safe_component(crawl)
            / _safe_component(os_name)
            / f"{_safe_component(domain)}.json"
        )

    def exists(self, crawl: str, os_name: str, domain: str) -> bool:
        return self.path_for(crawl, os_name, domain).exists()

    def entries(self, crawl: str | None = None) -> Iterator[Path]:
        """All archived documents (optionally for one crawl), sorted."""
        roots = (
            [self.root / _safe_component(crawl)]
            if crawl is not None
            else [self.root]
        )
        for base in roots:
            if base.is_dir():
                yield from sorted(base.rglob("*.json"))

    # -- write -------------------------------------------------------------

    def write(
        self,
        crawl: str,
        os_name: str,
        domain: str,
        events: Iterable[NetLogEvent],
        *,
        meta: dict | None = None,
        corrupt: CorruptHook | None = None,
    ) -> Path:
        """Archive one visit's events; returns the document path.

        A convenience wrapper over :meth:`write_buffered` for callers
        that hold an event list; the crawl pipeline instead streams
        events into a :class:`~repro.netlog.writer.NetLogBuffer` as the
        visit runs and hands the finished buffer here.
        """
        return self.write_buffered(
            crawl,
            os_name,
            domain,
            feed(events, NetLogBuffer(checksums=True)),
            meta=meta,
            corrupt=corrupt,
        )

    def write_buffered(
        self,
        crawl: str,
        os_name: str,
        domain: str,
        buffer: NetLogBuffer,
        *,
        meta: dict | None = None,
        corrupt: CorruptHook | None = None,
    ) -> Path:
        """Archive a visit from its streamed record buffer.

        The buffer holds the serialised ``events`` body built while the
        visit ran; this assembles the final document around it — the
        late-bound ``visitMeta`` head (attempt counts and success are
        only known once the visit settles) and the integrity trailer —
        producing bytes identical to a one-shot ``dumps`` of the same
        events.  ``corrupt`` (the injector's netlog seam) mangles the
        serialised text before it reaches disk, keyed by
        ``crawl:os:domain`` — so the same fault plan damages the same
        files at any worker count.  Idempotent per buffer: retrying
        after a failed write re-uses the same body.
        """
        path = self.path_for(crawl, os_name, domain)
        path.parent.mkdir(parents=True, exist_ok=True)
        out = io.StringIO()
        write_document_head(
            out, extra={META_KEY: meta} if meta is not None else None
        )
        out.write(buffer.body)
        write_document_tail(
            out,
            checksums=buffer.checksums,
            count=buffer.count,
            chain=buffer.chain,
        )
        text = out.getvalue()
        if corrupt is not None:
            text = corrupt(text, f"{crawl}:{os_name}:{domain}")
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(text)
        tmp.replace(path)
        return path

    # -- read --------------------------------------------------------------

    def read_events(
        self,
        crawl: str,
        os_name: str,
        domain: str,
        *,
        stats: ParseStats | None = None,
    ) -> list[NetLogEvent] | None:
        """Salvage-parse one archived document; None when absent."""
        return self.stream_into(
            crawl, os_name, domain, ListSink(), stats=stats
        )

    def stream_into(
        self,
        crawl: str,
        os_name: str,
        domain: str,
        sink: EventSink,
        *,
        stats: ParseStats | None = None,
    ) -> Any | None:
        """Feed one archived document through a sink with bounded memory.

        Salvage-parses the document and pushes each event into ``sink``
        as it is decoded (fsck's reparse tier runs detection this way
        without materialising the event list); returns ``sink.finish()``,
        or None when the document is absent.
        """
        path = self.path_for(crawl, os_name, domain)
        if not path.exists():
            return None
        with path.open() as fp:
            return feed(
                iter_events_streaming(fp, strict=False, stats=stats), sink
            )

    def read_meta(self, path: Path) -> dict | None:
        """The ``visitMeta`` block of a document, damage-tolerant.

        The block is written at the very front of the document, so it
        survives every tail-side damage shape; a document corrupted
        before its first few hundred bytes yields None.
        """
        try:
            head = path.read_text(errors="replace")
        except OSError:
            return None
        marker = f'"{META_KEY}": '
        start = head.find(marker)
        if start < 0:
            return None
        decoder = json.JSONDecoder()
        try:
            meta, _ = decoder.raw_decode(head, start + len(marker))
        except ValueError:
            return None
        return meta if isinstance(meta, dict) else None

    def verify(self, path: Path) -> ParseStats:
        """Parse one document in salvage mode, returning its stats."""
        stats = ParseStats()
        with path.open() as fp:
            for _ in iter_events_streaming(fp, strict=False, stats=stats):
                pass
        return stats
