"""On-disk archive of per-visit NetLog documents.

The paper kept every capture ("11 TB across the study") so telemetry
could be re-parsed when the reduction pipeline changed.  This archive
reproduces that design at laptop scale: one checksummed NetLog document
per (crawl, OS, domain) visit, laid out as
``root/<crawl>/<os>/<domain>.json`` (or ``.nlbin`` for the binary
format — see :mod:`repro.netlog.codec`; a visit is stored in exactly one
format, and every read path auto-detects which by magic byte).

Every document is written with ``checksums=True`` (per-record CRC32s,
rolling hash chain, integrity trailer — see :mod:`repro.netlog.writer`)
and carries a ``visitMeta`` header block with the visit's row-level
metadata, so ``repro fsck`` can rebuild a damaged database row from the
archive alone.  Writes go through a temp file and an atomic rename; the
simulated torn writes, bit flips and disk-full failures of the fault
injector enter through the ``corrupt`` / pre-write hooks instead of by
racing the real filesystem.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Union

from .. import obs
from .codec import (
    ARCHIVE_SUFFIXES,
    FORMAT_BINARY,
    codec_for_suffix,
    get_codec,
    sniff_format,
)
from .events import NetLogEvent
from .parser import ParseStats
from .pipeline import EventSink, ListSink, feed
from .streaming import iter_events_streaming
from .writer import (
    NetLogBuffer,
    write_document_head,
    write_document_tail,
)

_ENCODE_SECONDS = obs.histogram(
    "repro_netlog_encode_seconds",
    "NetLog document assembly time (buffered body to final document "
    "bytes) by format",
    ("format",),
)

#: The top-level key carrying visit metadata in archived documents.
META_KEY = "visitMeta"

#: A document-mangling hook applied to the serialised document before it
#: hits disk (the fault injector's ``corrupt_netlog``).  Receives text
#: for JSON documents and bytes for binary ones, and must return the
#: same kind.
CorruptHook = Callable[[Union[str, bytes], str], Union[str, bytes]]


def _safe_component(name: str) -> str:
    """A path-safe single component (domains may not traverse)."""
    return name.replace(os.sep, "_").replace("..", "_") or "_"


class NetLogArchive:
    """Per-visit checksummed NetLog documents under one root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- layout ------------------------------------------------------------

    def path_for(
        self,
        crawl: str,
        os_name: str,
        domain: str,
        *,
        format: str | None = None,
    ) -> Path:
        """The document path for one visit.

        With ``format`` given, the path that format would occupy.
        Without it, the path of whichever format the visit is currently
        stored in — falling back to the JSON path for visits that do not
        exist yet (the archive's historical default).
        """
        directory = (
            self.root / _safe_component(crawl) / _safe_component(os_name)
        )
        stem = _safe_component(domain)
        if format is not None:
            return directory / (stem + get_codec(format).suffix)
        for suffix in ARCHIVE_SUFFIXES:
            candidate = directory / (stem + suffix)
            if candidate.exists():
                return candidate
        return directory / (stem + ARCHIVE_SUFFIXES[0])

    def exists(self, crawl: str, os_name: str, domain: str) -> bool:
        return self.path_for(crawl, os_name, domain).exists()

    def entries(self, crawl: str | None = None) -> Iterator[Path]:
        """All archived documents (optionally for one crawl), sorted."""
        roots = (
            [self.root / _safe_component(crawl)]
            if crawl is not None
            else [self.root]
        )
        for base in roots:
            if base.is_dir():
                found = [
                    path
                    for suffix in ARCHIVE_SUFFIXES
                    for path in base.rglob(f"*{suffix}")
                ]
                yield from sorted(found)

    # -- write -------------------------------------------------------------

    def write(
        self,
        crawl: str,
        os_name: str,
        domain: str,
        events: Iterable[NetLogEvent],
        *,
        meta: dict | None = None,
        corrupt: CorruptHook | None = None,
        format: str | None = None,
    ) -> Path:
        """Archive one visit's events; returns the document path.

        A convenience wrapper over :meth:`write_buffered` for callers
        that hold an event list; the crawl pipeline instead streams
        events into a capture buffer as the visit runs and hands the
        finished buffer here.  ``format`` picks the document encoding
        (None → the codec default, normally JSON).
        """
        from .codec import make_capture_buffer

        return self.write_buffered(
            crawl,
            os_name,
            domain,
            feed(events, make_capture_buffer(format, checksums=True)),
            meta=meta,
            corrupt=corrupt,
        )

    def write_buffered(
        self,
        crawl: str,
        os_name: str,
        domain: str,
        buffer: NetLogBuffer,
        *,
        meta: dict | None = None,
        corrupt: CorruptHook | None = None,
    ) -> Path:
        """Archive a visit from its streamed record buffer.

        The buffer holds the serialised ``events`` body built while the
        visit ran — its type (text :class:`~repro.netlog.writer.NetLogBuffer`
        or binary :class:`~repro.netlog.binary.BinaryNetLogBuffer`)
        decides the document format.  This assembles the final document
        around it — the late-bound ``visitMeta`` head (attempt counts
        and success are only known once the visit settles) and the
        integrity trailer — producing bytes identical to a one-shot dump
        of the same events.  ``corrupt`` (the injector's netlog seam)
        mangles the serialised document before it reaches disk, keyed by
        ``crawl:os:domain`` — so the same fault plan damages the same
        files at any worker count.  Idempotent per buffer: retrying
        after a failed write re-uses the same body.  A rewrite in a
        different format removes the visit's stale other-format sibling
        after the atomic rename, preserving one-document-per-visit.
        """
        format_name = getattr(buffer, "format", "json")
        codec = get_codec(format_name)
        extra = {META_KEY: meta} if meta is not None else None
        started = time.perf_counter()
        document: str | bytes
        if codec.binary:
            from .binary import write_binary_head, write_binary_tail

            bout = io.BytesIO()
            write_binary_head(bout, extra=extra)
            bout.write(buffer.body)
            write_binary_tail(
                bout,
                checksums=buffer.checksums,
                count=buffer.count,
                chain=buffer.chain,
            )
            document = bout.getvalue()
        else:
            out = io.StringIO()
            write_document_head(out, extra=extra)
            out.write(buffer.body)
            write_document_tail(
                out,
                checksums=buffer.checksums,
                count=buffer.count,
                chain=buffer.chain,
            )
            document = out.getvalue()
        if _ENCODE_SECONDS.enabled:
            _ENCODE_SECONDS.observe(
                time.perf_counter() - started, labels=(format_name,)
            )
        if corrupt is not None:
            document = corrupt(document, f"{crawl}:{os_name}:{domain}")
        path = self.path_for(crawl, os_name, domain, format=format_name)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        if isinstance(document, bytes):
            tmp.write_bytes(document)
        else:
            tmp.write_text(document)
        tmp.replace(path)
        base_name = path.name[: -len(codec.suffix)]
        for suffix in ARCHIVE_SUFFIXES:
            if suffix != codec.suffix:
                sibling = path.with_name(base_name + suffix)
                if sibling.exists():
                    sibling.unlink()
        return path

    # -- read --------------------------------------------------------------

    def read_events(
        self,
        crawl: str,
        os_name: str,
        domain: str,
        *,
        stats: ParseStats | None = None,
    ) -> list[NetLogEvent] | None:
        """Salvage-parse one archived document; None when absent."""
        return self.stream_into(
            crawl, os_name, domain, ListSink(), stats=stats
        )

    def stream_into(
        self,
        crawl: str,
        os_name: str,
        domain: str,
        sink: EventSink,
        *,
        stats: ParseStats | None = None,
    ) -> Any | None:
        """Feed one archived document through a sink with bounded memory.

        Salvage-parses the document — whichever format it is stored in —
        and pushes each event into ``sink`` as it is decoded (fsck's
        reparse tier runs detection this way without materialising the
        event list); returns ``sink.finish()``, or None when the
        document is absent.
        """
        path = self.path_for(crawl, os_name, domain)
        if not path.exists():
            return None
        with path.open("rb") as fp:
            return feed(
                iter_events_streaming(fp, strict=False, stats=stats), sink
            )

    def read_meta(self, path: Path) -> dict | None:
        """The ``visitMeta`` block of a document, damage-tolerant.

        The block is written at the very front of the document in both
        formats, so it survives every tail-side damage shape; a document
        corrupted before its first few hundred bytes yields None.
        """
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        if sniff_format(raw) == FORMAT_BINARY:
            from .binary import read_binary_header

            header = read_binary_header(raw)
            if header is None:
                return None
            extra = header.get("extra")
            if not isinstance(extra, dict):
                return None
            meta = extra.get(META_KEY)
            return meta if isinstance(meta, dict) else None
        head = raw.decode("utf-8", errors="replace")
        marker = f'"{META_KEY}": '
        start = head.find(marker)
        if start < 0:
            return None
        decoder = json.JSONDecoder()
        try:
            meta, _ = decoder.raw_decode(head, start + len(marker))
        except ValueError:
            return None
        return meta if isinstance(meta, dict) else None

    def verify(self, path: Path) -> ParseStats:
        """Parse one document in salvage mode, returning its stats.

        Binary documents get the ``full`` verification regime here —
        canonical crc32-chain-v1 re-derivation per record, the same
        contract the JSON parser always applies — because this is the
        audit path ``repro fsck`` trusts.
        """
        from .parallel import verify_document

        return verify_document(path)
