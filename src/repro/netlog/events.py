"""Event and source models for NetLog streams.

A NetLog is an ordered stream of :class:`NetLogEvent` objects.  Events are
grouped into *flows* by their source id: Chrome assigns a fresh, serially
increasing source id when a network operation starts, and every dependent
event (connects, handshakes, reads) reuses that id.  The paper's analysis
(section 3.1) leans on this grouping to tie responses back to the request
that caused them; :mod:`repro.core.flows` implements the grouping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from .constants import EventPhase, EventType, SourceType


@dataclass(frozen=True, slots=True)
class NetLogSource:
    """Identity of the entity that generated an event."""

    id: int
    type: SourceType

    def is_browser_internal(self) -> bool:
        """True when the source is Chrome itself rather than web content."""
        return self.type is SourceType.BROWSER_INTERNAL


@dataclass(frozen=True, slots=True)
class NetLogEvent:
    """A single NetLog event.

    Attributes
    ----------
    time:
        Milliseconds since the log's time origin (Chrome uses a monotonic
        tick origin recorded in the log header; we do the same).
    type:
        What happened (:class:`EventType`).
    source:
        Who it happened to (:class:`NetLogSource`).
    phase:
        ``BEGIN``/``END`` bracket long-running operations; instantaneous
        events use ``NONE``.
    params:
        Event-type specific payload; for ``URL_REQUEST_START_JOB`` this
        carries the request ``url`` and ``method``, for connect events the
        destination address, etc.
    """

    time: float
    type: EventType
    source: NetLogSource
    phase: EventPhase = EventPhase.NONE
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def url(self) -> str | None:
        """The URL carried by the event, if any."""
        value = self.params.get("url")
        return value if isinstance(value, str) else None

    @property
    def net_error(self) -> int | None:
        """Chrome ``net::`` error code attached to the event, if any."""
        value = self.params.get("net_error")
        return value if isinstance(value, int) else None


class SourceIdAllocator:
    """Serial source-id allocation, matching Chrome's behaviour.

    Chrome hands out source ids in increasing order across the whole
    browser instance; ids are never reused within a log.  Tests rely on
    the monotonicity to verify event ordering invariants.
    """

    def __init__(self, start: int = 1) -> None:
        if start < 0:
            raise ValueError("source ids must be non-negative")
        self._next = start

    def allocate(self, type: SourceType) -> NetLogSource:
        """Return a fresh source of the given type."""
        source = NetLogSource(id=self._next, type=type)
        self._next += 1
        return source

    @property
    def next_id(self) -> int:
        return self._next


def events_for_source(
    events: list[NetLogEvent], source_id: int
) -> Iterator[NetLogEvent]:
    """Yield the events belonging to one source, preserving log order."""
    for event in events:
        if event.source.id == source_id:
            yield event
