"""Composable streaming event pipeline: the `EventSink` protocol.

The paper's entire analysis consumes one artifact — the ordered NetLog
event stream of a visit — yet a naive pipeline materializes that stream
several times (browser buffer, archive serialisation, parser re-parse,
flow re-walk).  This module defines the protocol that lets every consumer
ride the *same* single pass instead:

* :class:`EventSink` — anything that accepts events one at a time and
  produces a result when the stream ends;
* :class:`Tee` — fan one stream out to several sinks in one pass;
* :class:`ListSink` / :class:`CountSink` — the trivial collectors;
* :class:`ReorderBuffer` — a watermark-driven buffer that restores
  ``(time, source id)`` order over a nearly-sorted stream with
  O(open-window) memory, replacing terminal whole-stream sorts;
* :func:`feed` — drive any iterable of events through a sink.

Producers (the simulated browser, the parsers, the archive) push events
into sinks; consumers (flow assembly, detection, archiving, counting)
are sinks.  A crawl visit therefore runs detection, NetLog archiving and
observability taps in one pass over the stream, with memory bounded by
the number of *open* flows rather than the total event count.

Ordering contract: producers deliver events in non-decreasing
``(time, source.id)`` order (the browser guarantees this via a
:class:`ReorderBuffer`; serialised documents are already stored sorted).
Sinks may rely on it but must not require it — :class:`~repro.core.flows.
FlowAssembler` folds out-of-order streams correctly, merely without the
ordering-dependent tie-breaks.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Protocol, runtime_checkable

from .. import obs
from .events import NetLogEvent

_PIPELINE_EVENTS = obs.counter(
    "repro_pipeline_events_total",
    "events delivered through streaming pipeline stages",
    ("stage",),
)
_REORDER_PEAK = obs.histogram(
    "repro_pipeline_reorder_peak",
    "peak entries held by a visit's reorder buffer (open-window size)",
)


@runtime_checkable
class EventSink(Protocol):
    """One stage of a streaming event pipeline.

    ``accept`` is called once per event, in stream order; ``finish`` is
    called exactly once, after the last event, and returns the sink's
    result (a list, a detection, an archive path — whatever the stage
    produces).  A sink must tolerate ``finish`` on an empty stream.
    """

    def accept(self, event: NetLogEvent) -> None:
        """Consume one event."""
        ...

    def finish(self) -> Any:
        """End of stream; return this sink's result."""
        ...


class ListSink:
    """Collects the stream into a list (the batch-API adapter)."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[NetLogEvent] = []

    def accept(self, event: NetLogEvent) -> None:
        self.events.append(event)

    def finish(self) -> list[NetLogEvent]:
        return self.events


class CountSink:
    """Counts events without retaining them."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def accept(self, event: NetLogEvent) -> None:
        self.count += 1

    def finish(self) -> int:
        return self.count


class Tee:
    """Fans one event stream out to several sinks in a single pass.

    ``finish`` finishes every child and returns their results as a tuple
    in construction order.
    """

    __slots__ = ("sinks",)

    def __init__(self, *sinks: EventSink) -> None:
        if not sinks:
            raise ValueError("Tee needs at least one sink")
        self.sinks = sinks

    def accept(self, event: NetLogEvent) -> None:
        for sink in self.sinks:
            sink.accept(event)

    def finish(self) -> tuple[Any, ...]:
        return tuple(sink.finish() for sink in self.sinks)


class ReorderBuffer:
    """Restores ``(time, source id)`` order over a nearly-sorted stream.

    Producers that interleave overlapping operations (the browser runs
    requests whose event spans overlap) emit events slightly out of
    order.  This buffer heap-sorts them and releases an event only once
    the producer's *watermark* guarantees nothing earlier can still
    arrive — so memory is bounded by the overlap window, not the stream.

    The producer calls :meth:`advance` with each new operation's start
    time (its events all carry times >= that start); events strictly
    older than the watermark are flushed downstream.  :meth:`flush`
    drains the remainder at end of stream *without* finishing the
    downstream sink — the buffer is an ordering shim, not the pipeline
    terminal — while :meth:`finish` drains and finishes it.

    Ties sort exactly like ``events.sort(key=lambda e: (e.time,
    e.source.id))`` on the emission sequence: a stable ``(time, source
    id, arrival)`` order.
    """

    __slots__ = ("sink", "_heap", "_seq", "_peak", "_delivered")

    def __init__(self, sink: EventSink) -> None:
        self.sink = sink
        self._heap: list[tuple[float, int, int, NetLogEvent]] = []
        self._seq = 0
        self._peak = 0
        self._delivered = 0

    def accept(self, event: NetLogEvent) -> None:
        heapq.heappush(
            self._heap, (event.time, event.source.id, self._seq, event)
        )
        self._seq += 1
        if len(self._heap) > self._peak:
            self._peak = len(self._heap)

    def advance(self, watermark: float) -> None:
        """Release every buffered event with ``time < watermark``."""
        heap = self._heap
        while heap and heap[0][0] < watermark:
            self._delivered += 1
            self.sink.accept(heapq.heappop(heap)[3])

    def flush(self) -> None:
        """End of stream: deliver everything still buffered, in order."""
        heap = self._heap
        while heap:
            self._delivered += 1
            self.sink.accept(heapq.heappop(heap)[3])
        if _PIPELINE_EVENTS.enabled:
            if self._delivered:
                _PIPELINE_EVENTS.inc(self._delivered, labels=("reorder",))
            _REORDER_PEAK.observe(self._peak)
            self._delivered = 0

    def finish(self) -> Any:
        self.flush()
        return self.sink.finish()

    @property
    def pending(self) -> int:
        """Events currently held back awaiting the watermark."""
        return len(self._heap)

    @property
    def peak(self) -> int:
        """Largest number of events ever held at once."""
        return self._peak


def feed(events: Iterable[NetLogEvent], sink: EventSink) -> Any:
    """Drive an event iterable through a sink; returns ``sink.finish()``.

    The bridge between pull-style producers (parsers, stored lists) and
    the push-style sink pipeline.
    """
    accept = sink.accept
    count = 0
    for event in events:
        count += 1
        accept(event)
    if count and _PIPELINE_EVENTS.enabled:
        _PIPELINE_EVENTS.inc(count, labels=("feed",))
    return sink.finish()
