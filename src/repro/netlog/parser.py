"""NetLog JSON parser.

Parses documents written by :mod:`repro.netlog.writer` — and, for the event
types we model, documents written by real Chrome — back into
:class:`~repro.netlog.events.NetLogEvent` streams.  Unknown event or source
types are preserved numerically when ``strict`` is off, so a log from a
newer producer degrades gracefully instead of failing to load.
"""

from __future__ import annotations

import json
from typing import IO, Iterator

from .constants import (
    EventPhase,
    EventType,
    SourceType,
)
from .events import NetLogEvent, NetLogSource


class NetLogParseError(ValueError):
    """Raised when a document is not a well-formed NetLog."""


def _coerce_event_type(value: object, names: dict[str, int]) -> EventType | None:
    """Resolve an event type given either an int or a name string."""
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        return None
    if isinstance(value, int):
        try:
            return EventType(value)
        except ValueError:
            return None
    if isinstance(value, str):
        mapped = names.get(value)
        if mapped is not None:
            try:
                return EventType(mapped)
            except ValueError:
                return None
    return None


def parse_record(
    record: dict,
    *,
    event_names: dict[str, int] | None = None,
    strict: bool = True,
) -> NetLogEvent | None:
    """Parse a single event record.

    Returns ``None`` for records carrying unknown types when ``strict`` is
    False; raises :class:`NetLogParseError` otherwise.
    """
    if not isinstance(record, dict):
        raise NetLogParseError(f"event record must be an object, got {type(record).__name__}")
    try:
        raw_source = record["source"]
        time = float(record["time"])
    except (KeyError, TypeError, ValueError) as exc:
        raise NetLogParseError(f"malformed event record: {record!r}") from exc

    event_type = _coerce_event_type(record.get("type"), event_names or {})
    if event_type is None:
        if strict:
            raise NetLogParseError(f"unknown event type: {record.get('type')!r}")
        return None

    if not isinstance(raw_source, dict):
        raise NetLogParseError("event source must be an object")
    try:
        source_id = int(raw_source["id"])
        source_type = SourceType(int(raw_source.get("type", 0)))
    except (KeyError, TypeError, ValueError) as exc:
        if strict:
            raise NetLogParseError(f"malformed source: {raw_source!r}") from exc
        return None

    try:
        phase = EventPhase(int(record.get("phase", 0)))
    except ValueError:
        phase = EventPhase.NONE

    params = record.get("params") or {}
    if not isinstance(params, dict):
        raise NetLogParseError("event params must be an object")

    return NetLogEvent(
        time=time,
        type=event_type,
        source=NetLogSource(id=source_id, type=source_type),
        phase=phase,
        params=params,
    )


def load(fp: IO[str], *, strict: bool = True) -> list[NetLogEvent]:
    """Parse a complete NetLog document from a file object."""
    try:
        document = json.load(fp)
    except json.JSONDecodeError as exc:
        raise NetLogParseError(f"invalid JSON: {exc}") from exc
    return _parse_document(document, strict=strict)


def loads(text: str, *, strict: bool = True) -> list[NetLogEvent]:
    """Parse a complete NetLog document from a string."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise NetLogParseError(f"invalid JSON: {exc}") from exc
    return _parse_document(document, strict=strict)


def iter_events(document: dict, *, strict: bool = True) -> Iterator[NetLogEvent]:
    """Yield events from an already-decoded NetLog document."""
    if not isinstance(document, dict):
        raise NetLogParseError("NetLog document must be a JSON object")
    constants = document.get("constants") or {}
    event_names = constants.get("logEventTypes") or {}
    raw_events = document.get("events")
    if not isinstance(raw_events, list):
        raise NetLogParseError("NetLog document missing 'events' array")
    for record in raw_events:
        event = parse_record(record, event_names=event_names, strict=strict)
        if event is not None:
            yield event


def _parse_document(document: dict, *, strict: bool) -> list[NetLogEvent]:
    return list(iter_events(document, strict=strict))
