"""NetLog JSON parser.

Parses documents written by :mod:`repro.netlog.writer` — and, for the event
types we model, documents written by real Chrome — back into
:class:`~repro.netlog.events.NetLogEvent` streams.

Two failure philosophies coexist:

* ``strict=True`` (default): any malformed record or damaged document
  raises :class:`NetLogParseError` — the right mode for logs we wrote
  ourselves, where damage means a bug.
* ``strict=False``: *salvage mode*.  Records with unknown types or
  malformed fields are skipped and counted, and a physically damaged
  document — tail-truncated (Chrome omits the closing ``]}`` when
  killed), NUL-padded, or cut mid-record — yields every event in its
  intact prefix instead of raising.  Pass a :class:`ParseStats` to learn
  what was recovered versus dropped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Iterator

from .constants import (
    EventPhase,
    EventType,
    SourceType,
)
from .events import NetLogEvent, NetLogSource


class NetLogParseError(ValueError):
    """Raised when a document is not a well-formed NetLog."""


class NetLogTruncationError(NetLogParseError):
    """The document ended prematurely (killed writer, torn write)."""


@dataclass(slots=True)
class ParseStats:
    """Accounting for one parse: what was recovered, what was lost."""

    #: Events successfully decoded (== salvaged events on a damaged doc).
    parsed: int = 0
    #: Records skipped because their event type is not in our vocabulary.
    dropped_unknown_type: int = 0
    #: Records skipped because a field was malformed (bad ``time``,
    #: ``source`` or ``params``), plus a partial record lost to truncation.
    dropped_malformed: int = 0
    #: The document ended before its closing ``]}``.
    truncated: bool = False

    @property
    def dropped(self) -> int:
        """Total records that did not become events."""
        return self.dropped_unknown_type + self.dropped_malformed

    @property
    def damaged(self) -> bool:
        """Whether the parse lost anything at all."""
        return self.truncated or self.dropped_malformed > 0

    def describe(self) -> str:
        parts = [f"{self.parsed} events"]
        if self.truncated:
            parts.append("truncated document")
        if self.dropped_malformed:
            parts.append(f"{self.dropped_malformed} malformed records dropped")
        if self.dropped_unknown_type:
            parts.append(f"{self.dropped_unknown_type} unknown-type records skipped")
        return ", ".join(parts)


def _coerce_event_type(value: object, names: dict[str, int]) -> EventType | None:
    """Resolve an event type given either an int or a name string."""
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        return None
    if isinstance(value, int):
        try:
            return EventType(value)
        except ValueError:
            return None
    if isinstance(value, str):
        mapped = names.get(value)
        if mapped is not None:
            try:
                return EventType(mapped)
            except ValueError:
                return None
    return None


def parse_record(
    record: dict,
    *,
    event_names: dict[str, int] | None = None,
    strict: bool = True,
    stats: ParseStats | None = None,
) -> NetLogEvent | None:
    """Parse a single event record.

    Returns ``None`` for records that cannot become events when ``strict``
    is False — unknown types *and* malformed fields are both
    skip-and-count in non-strict mode; raises :class:`NetLogParseError`
    otherwise.
    """
    if not isinstance(record, dict):
        if strict:
            raise NetLogParseError(
                f"event record must be an object, got {type(record).__name__}"
            )
        if stats is not None:
            stats.dropped_malformed += 1
        return None
    try:
        raw_source = record["source"]
        time = float(record["time"])
    except (KeyError, TypeError, ValueError) as exc:
        if strict:
            raise NetLogParseError(f"malformed event record: {record!r}") from exc
        if stats is not None:
            stats.dropped_malformed += 1
        return None

    event_type = _coerce_event_type(record.get("type"), event_names or {})
    if event_type is None:
        if strict:
            raise NetLogParseError(f"unknown event type: {record.get('type')!r}")
        if stats is not None:
            stats.dropped_unknown_type += 1
        return None

    if not isinstance(raw_source, dict):
        if strict:
            raise NetLogParseError("event source must be an object")
        if stats is not None:
            stats.dropped_malformed += 1
        return None
    try:
        source_id = int(raw_source["id"])
        source_type = SourceType(int(raw_source.get("type", 0)))
    except (KeyError, TypeError, ValueError) as exc:
        if strict:
            raise NetLogParseError(f"malformed source: {raw_source!r}") from exc
        if stats is not None:
            stats.dropped_malformed += 1
        return None

    try:
        phase = EventPhase(int(record.get("phase", 0)))
    except ValueError:
        phase = EventPhase.NONE

    params = record.get("params") or {}
    if not isinstance(params, dict):
        if strict:
            raise NetLogParseError("event params must be an object")
        if stats is not None:
            stats.dropped_malformed += 1
        return None

    if stats is not None:
        stats.parsed += 1
    return NetLogEvent(
        time=time,
        type=event_type,
        source=NetLogSource(id=source_id, type=source_type),
        phase=phase,
        params=params,
    )


def load(
    fp: IO[str], *, strict: bool = True, stats: ParseStats | None = None
) -> list[NetLogEvent]:
    """Parse a complete NetLog document from a file object."""
    return loads(fp.read(), strict=strict, stats=stats)


def loads(
    text: str, *, strict: bool = True, stats: ParseStats | None = None
) -> list[NetLogEvent]:
    """Parse a complete NetLog document from a string.

    In non-strict mode a document that is not valid JSON — the signature
    of a truncated or NUL-padded NetLog — is salvaged: every event in the
    intact prefix is recovered and the damage is reported through
    ``stats`` instead of an exception.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        if strict:
            raise NetLogParseError(f"invalid JSON: {exc}") from exc
        return _salvage(text, stats)
    return _parse_document(document, strict=strict, stats=stats)


def _salvage(text: str, stats: ParseStats | None) -> list[NetLogEvent]:
    """Recover the intact event prefix of a damaged document."""
    import io

    from .streaming import iter_events_streaming

    return list(
        iter_events_streaming(io.StringIO(text), strict=False, stats=stats)
    )


def iter_events(
    document: dict, *, strict: bool = True, stats: ParseStats | None = None
) -> Iterator[NetLogEvent]:
    """Yield events from an already-decoded NetLog document."""
    if not isinstance(document, dict):
        raise NetLogParseError("NetLog document must be a JSON object")
    constants = document.get("constants") or {}
    event_names = constants.get("logEventTypes") or {}
    raw_events = document.get("events")
    if not isinstance(raw_events, list):
        raise NetLogParseError("NetLog document missing 'events' array")
    for record in raw_events:
        event = parse_record(
            record, event_names=event_names, strict=strict, stats=stats
        )
        if event is not None:
            yield event


def _parse_document(
    document: dict, *, strict: bool, stats: ParseStats | None = None
) -> list[NetLogEvent]:
    return list(iter_events(document, strict=strict, stats=stats))
