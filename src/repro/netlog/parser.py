"""NetLog JSON parser.

Parses documents written by :mod:`repro.netlog.writer` — and, for the event
types we model, documents written by real Chrome — back into
:class:`~repro.netlog.events.NetLogEvent` streams.

Two failure philosophies coexist:

* ``strict=True`` (default): any malformed record or damaged document
  raises :class:`NetLogParseError` — the right mode for logs we wrote
  ourselves, where damage means a bug.
* ``strict=False``: *salvage mode*.  Records with unknown types or
  malformed fields are skipped and counted, and a physically damaged
  document — tail-truncated (Chrome omits the closing ``]}`` when
  killed), NUL-padded, or cut mid-record — yields every event in its
  intact prefix instead of raising.  Pass a :class:`ParseStats` to learn
  what was recovered versus dropped.

Documents written with ``checksums=True`` (see :mod:`repro.netlog.writer`)
are verified as they are parsed: each record's CRC32 is recomputed over
its canonical form, the rolling hash chain is re-derived link by link,
and the ``integrity`` trailer is checked against the final chain value.
In strict mode any mismatch raises :class:`NetLogIntegrityError`; in
salvage mode the corrupt record is dropped, the damage is counted, and
the index of the first divergent record is reported in
:attr:`ParseStats.first_divergence`.
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import dataclass
from typing import IO, Iterator

from .. import obs
from .constants import (
    EventPhase,
    EventType,
    SourceType,
)
from .events import NetLogEvent, NetLogSource
from .writer import CHAIN_SEED, canonical_record_bytes

_PARSE_SECONDS = obs.histogram(
    "repro_netlog_parse_seconds",
    "NetLog document parse time by mode (strict, lenient, or salvage "
    "when the document was not even valid JSON) and document format "
    "(json or binary)",
    ("mode", "format"),
)
_RECORDS = obs.counter(
    "repro_netlog_records_total",
    "NetLog records by parse disposition",
    ("disposition",),
)

#: (ParseStats attribute, disposition label) pairs mirrored into
#: ``repro_netlog_records_total`` after each whole-document parse.
_STAT_DISPOSITIONS = (
    ("parsed", "parsed"),
    ("verified", "verified"),
    ("dropped_malformed", "dropped_malformed"),
    ("dropped_unknown_type", "dropped_unknown_type"),
    ("checksum_failures", "checksum_failure"),
    ("chain_breaks", "chain_break"),
)


class NetLogParseError(ValueError):
    """Raised when a document is not a well-formed NetLog."""


class NetLogTruncationError(NetLogParseError):
    """The document ended prematurely (killed writer, torn write)."""


class NetLogIntegrityError(NetLogParseError):
    """A checksummed document failed CRC or hash-chain verification."""


@dataclass(slots=True)
class ParseStats:
    """Accounting for one parse: what was recovered, what was lost."""

    #: Events successfully decoded (== salvaged events on a damaged doc).
    parsed: int = 0
    #: Records skipped because their event type is not in our vocabulary.
    dropped_unknown_type: int = 0
    #: Records skipped because a field was malformed (bad ``time``,
    #: ``source`` or ``params``), plus a partial record lost to truncation.
    dropped_malformed: int = 0
    #: The document ended before its closing ``]}``.
    truncated: bool = False
    #: Records whose CRC32 checksum was verified successfully.
    verified: int = 0
    #: Records dropped because their CRC32 did not match their content
    #: (in-place corruption: a bit flip inside an otherwise valid record).
    checksum_failures: int = 0
    #: Points where the rolling hash chain did not link up (records lost,
    #: reordered or spliced between two individually-valid neighbours).
    chain_breaks: int = 0
    #: Index (0-based, in the ``events`` array) of the first record at
    #: which a checksummed document diverged from what its writer emitted
    #: — the first checksum failure, chain break, or dropped record.
    first_divergence: int | None = None

    @property
    def dropped(self) -> int:
        """Total records that did not become events."""
        return (
            self.dropped_unknown_type
            + self.dropped_malformed
            + self.checksum_failures
        )

    @property
    def damaged(self) -> bool:
        """Whether the parse lost anything at all."""
        return (
            self.truncated
            or self.dropped_malformed > 0
            or self.checksum_failures > 0
            or self.chain_breaks > 0
        )

    def describe(self) -> str:
        parts = [f"{self.parsed} events"]
        if self.truncated:
            parts.append("truncated document")
        if self.dropped_malformed:
            parts.append(f"{self.dropped_malformed} malformed records dropped")
        if self.dropped_unknown_type:
            parts.append(f"{self.dropped_unknown_type} unknown-type records skipped")
        if self.checksum_failures:
            parts.append(f"{self.checksum_failures} checksum failures")
        if self.chain_breaks:
            parts.append(f"{self.chain_breaks} hash-chain breaks")
        if self.first_divergence is not None:
            parts.append(f"first divergence at record {self.first_divergence}")
        return ", ".join(parts)


def _coerce_event_type(value: object, names: dict[str, int]) -> EventType | None:
    """Resolve an event type given either an int or a name string."""
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        return None
    if isinstance(value, int):
        try:
            return EventType(value)
        except ValueError:
            return None
    if isinstance(value, str):
        mapped = names.get(value)
        if mapped is not None:
            try:
                return EventType(mapped)
            except ValueError:
                return None
    return None


def parse_record(
    record: dict,
    *,
    event_names: dict[str, int] | None = None,
    strict: bool = True,
    stats: ParseStats | None = None,
) -> NetLogEvent | None:
    """Parse a single event record.

    Returns ``None`` for records that cannot become events when ``strict``
    is False — unknown types *and* malformed fields are both
    skip-and-count in non-strict mode; raises :class:`NetLogParseError`
    otherwise.
    """
    if not isinstance(record, dict):
        if strict:
            raise NetLogParseError(
                f"event record must be an object, got {type(record).__name__}"
            )
        if stats is not None:
            stats.dropped_malformed += 1
        return None
    try:
        raw_source = record["source"]
        time = float(record["time"])
    except (KeyError, TypeError, ValueError) as exc:
        if strict:
            raise NetLogParseError(f"malformed event record: {record!r}") from exc
        if stats is not None:
            stats.dropped_malformed += 1
        return None

    event_type = _coerce_event_type(record.get("type"), event_names or {})
    if event_type is None:
        # Forward compatibility: a dump written by a newer binary may carry
        # event types this vocabulary has never heard of.  That is not
        # damage — the record is well formed — so every salvage-capable
        # read path skips and counts it; only strict mode, meant for logs
        # we wrote ourselves, treats the foreign vocabulary as a bug.
        if strict:
            raise NetLogParseError(f"unknown event type: {record.get('type')!r}")
        if stats is not None:
            stats.dropped_unknown_type += 1
        return None

    if not isinstance(raw_source, dict):
        if strict:
            raise NetLogParseError("event source must be an object")
        if stats is not None:
            stats.dropped_malformed += 1
        return None
    try:
        source_id = int(raw_source["id"])
        source_type = SourceType(int(raw_source.get("type", 0)))
    except (KeyError, TypeError, ValueError) as exc:
        if strict:
            raise NetLogParseError(f"malformed source: {raw_source!r}") from exc
        if stats is not None:
            stats.dropped_malformed += 1
        return None

    try:
        phase = EventPhase(int(record.get("phase", 0)))
    except ValueError:
        phase = EventPhase.NONE

    params = record.get("params") or {}
    if not isinstance(params, dict):
        if strict:
            raise NetLogParseError("event params must be an object")
        if stats is not None:
            stats.dropped_malformed += 1
        return None

    if stats is not None:
        stats.parsed += 1
    return NetLogEvent(
        time=time,
        type=event_type,
        source=NetLogSource(id=source_id, type=source_type),
        phase=phase,
        params=params,
    )


class ChainVerifier:
    """Incremental CRC/hash-chain verification over one ``events`` array.

    One instance is threaded through a parse; both the whole-document and
    streaming parsers share it.  Unchecksummed (legacy) documents pass
    through untouched: records without integrity fields are never
    penalised, and chain state only starts mattering once a checksummed
    record has been seen.

    After a failure the verifier *resyncs* on the next record whose own
    CRC verifies, adopting its stored chain value — so multiple
    independent corruptions in one document are each detected rather than
    cascading from the first.
    """

    __slots__ = ("value", "index", "synced", "seen_checksums")

    def __init__(self) -> None:
        self.value = CHAIN_SEED
        self.index = 0  # next record's index in the events array
        self.synced = True
        self.seen_checksums = False

    def _fail(
        self,
        index: int,
        detail: str,
        *,
        strict: bool,
        stats: ParseStats | None,
        chain: bool,
    ) -> bool:
        if strict:
            raise NetLogIntegrityError(f"record {index}: {detail}")
        if stats is not None:
            if chain:
                stats.chain_breaks += 1
            else:
                stats.checksum_failures += 1
            if stats.first_divergence is None:
                stats.first_divergence = index
        return False

    def verify(
        self,
        record: dict,
        *,
        strict: bool = False,
        stats: ParseStats | None = None,
    ) -> bool:
        """Check one decoded record; False means it must be dropped."""
        index = self.index
        self.index += 1
        crc = record.get("crc")
        chain = record.get("chain")
        if crc is None and chain is None:
            # Legacy record.  In a document that *is* checksummed, a
            # record stripped of its integrity fields is itself damage —
            # the next checksummed record's chain will expose the gap.
            if self.seen_checksums:
                self.synced = False
            return True
        self.seen_checksums = True
        payload = canonical_record_bytes(record)
        if crc is not None and crc != zlib.crc32(payload):
            self.synced = False
            return self._fail(
                index,
                "CRC32 mismatch (in-place corruption)",
                strict=strict,
                stats=stats,
                chain=False,
            )
        if stats is not None:
            stats.verified += 1
        if chain is None:
            self.synced = False
            return True
        if self.synced:
            expected = zlib.crc32(payload, self.value)
            if chain != expected:
                # CRC-valid record, broken linkage: records were lost or
                # spliced before this one.  Adopt its chain and go on.
                self.value = int(chain)
                return self._fail(
                    index,
                    "hash-chain break (records lost or reordered)",
                    strict=strict,
                    stats=stats,
                    chain=True,
                )
            self.value = expected
        else:
            # Resync after a known gap; the gap was already accounted.
            self.value = int(chain)
            self.synced = True
        return True

    def mark_gap(self, stats: ParseStats | None = None) -> None:
        """Note a record the parser dropped (malformed/undecodable).

        In a checksummed document the gap is itself the divergence point,
        so it pins ``first_divergence`` if nothing earlier did.
        """
        index = self.index
        self.index += 1
        self.synced = False
        if (
            self.seen_checksums
            and stats is not None
            and stats.first_divergence is None
        ):
            stats.first_divergence = index

    def check_trailer(
        self,
        trailer: object,
        *,
        strict: bool = False,
        stats: ParseStats | None = None,
    ) -> None:
        """Verify the document's ``integrity`` trailer, if present."""
        if not isinstance(trailer, dict) or not self.seen_checksums:
            return
        expected_events = trailer.get("events")
        expected_chain = trailer.get("chain")
        if (
            self.synced
            and isinstance(expected_chain, int)
            and expected_chain != self.value
        ) or (
            isinstance(expected_events, int) and expected_events != self.index
        ):
            detail = (
                f"integrity trailer mismatch: trailer covers "
                f"{expected_events} records ending at chain "
                f"{expected_chain}, parse saw {self.index}"
            )
            if strict:
                raise NetLogIntegrityError(detail)
            if stats is not None:
                stats.chain_breaks += 1
                if stats.first_divergence is None:
                    stats.first_divergence = self.index


def load(
    fp: IO[str] | IO[bytes],
    *,
    strict: bool = True,
    stats: ParseStats | None = None,
    verify: str = "fast",
) -> list[NetLogEvent]:
    """Parse a complete NetLog document from a file object (either format)."""
    return loads(fp, strict=strict, stats=stats, verify=verify)


def loads(
    source: "bytes | str | IO[str] | IO[bytes]",
    *,
    strict: bool = True,
    stats: ParseStats | None = None,
    verify: str = "fast",
) -> list[NetLogEvent]:
    """Parse a complete NetLog document — JSON or binary, from any source.

    ``source`` may be document text, document bytes, or a file object of
    either; the format is sniffed from the first byte (binary documents
    open with the ``nlbin-v1`` magic).  ``verify`` is forwarded to the
    binary parser (``"fast"`` frame-level integrity or ``"full"``
    canonical crc32-chain-v1 re-derivation); JSON documents always verify
    fully.

    In non-strict mode a document that is not even well formed — the
    signature of truncation, NUL padding, or a torn write — is salvaged:
    every event in the intact prefix is recovered and the damage is
    reported through ``stats`` instead of an exception.
    """
    from .codec import coerce_document

    format_name, document = coerce_document(source)
    if not _PARSE_SECONDS.enabled:
        return _parse_any(
            format_name, document, strict=strict, stats=stats, verify=verify
        )[0]
    # Observability wrapper around the same single parse body: time the
    # parse and mirror per-record dispositions into counters.  An
    # internal ParseStats is used when the caller passed none; deltas
    # keep reused caller stats honest.
    own_stats = stats if stats is not None else ParseStats()
    before = tuple(getattr(own_stats, attr) for attr, _ in _STAT_DISPOSITIONS)
    start = time.perf_counter()
    mode = "strict" if strict else "lenient"
    try:
        events, mode = _parse_any(
            format_name, document, strict=strict, stats=own_stats, verify=verify
        )
        return events
    finally:
        _PARSE_SECONDS.observe(
            time.perf_counter() - start, labels=(mode, format_name)
        )
        for (attr, disposition), prior in zip(_STAT_DISPOSITIONS, before):
            delta = getattr(own_stats, attr) - prior
            if delta:
                _RECORDS.inc(delta, labels=(disposition,))


def _parse_any(
    format_name: str,
    document: "bytes | str",
    *,
    strict: bool,
    stats: ParseStats | None,
    verify: str = "fast",
) -> tuple[list[NetLogEvent], str]:
    """Dispatch one materialised document to its format's parse body."""
    from .codec import FORMAT_BINARY

    if format_name == FORMAT_BINARY:
        from .binary import iter_events_binary

        events = list(
            iter_events_binary(
                document, strict=strict, stats=stats, verify=verify
            )
        )
        return events, "strict" if strict else "lenient"
    return _parse_text(document, strict=strict, stats=stats)


def _parse_text(
    text: str, *, strict: bool, stats: ParseStats | None
) -> tuple[list[NetLogEvent], str]:
    """The single JSON parse/salvage body; returns ``(events, mode)``.

    ``mode`` is ``strict``/``lenient`` for a well-formed JSON document
    and ``salvage`` when the text was not even valid JSON and the
    streaming walker recovered the intact prefix.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        if strict:
            raise NetLogParseError(f"invalid JSON: {exc}") from exc
        return _salvage(text, stats), "salvage"
    return (
        _parse_document(document, strict=strict, stats=stats),
        "strict" if strict else "lenient",
    )


def _salvage(text: str, stats: ParseStats | None) -> list[NetLogEvent]:
    """Recover the intact event prefix of a damaged document."""
    import io

    from .streaming import iter_events_streaming

    return list(
        iter_events_streaming(io.StringIO(text), strict=False, stats=stats)
    )


def iter_events(
    document: dict, *, strict: bool = True, stats: ParseStats | None = None
) -> Iterator[NetLogEvent]:
    """Yield events from an already-decoded NetLog document.

    Checksummed documents are verified record by record: a record whose
    CRC32 does not match its content is dropped (strict mode raises
    :class:`NetLogIntegrityError` instead), and the hash chain plus the
    ``integrity`` trailer are checked across the whole array.
    """
    if not isinstance(document, dict):
        raise NetLogParseError("NetLog document must be a JSON object")
    constants = document.get("constants") or {}
    event_names = constants.get("logEventTypes") or {}
    raw_events = document.get("events")
    if not isinstance(raw_events, list):
        raise NetLogParseError("NetLog document missing 'events' array")
    verifier = ChainVerifier()
    for record in raw_events:
        if isinstance(record, dict):
            if not verifier.verify(record, strict=strict, stats=stats):
                continue
        else:
            # Non-dict slot: nothing to hash — a gap in the chain.
            verifier.mark_gap(stats)
        event = parse_record(
            record, event_names=event_names, strict=strict, stats=stats
        )
        if event is not None:
            yield event
    verifier.check_trailer(
        document.get("integrity"), strict=strict, stats=stats
    )


def _parse_document(
    document: dict, *, strict: bool, stats: ParseStats | None = None
) -> list[NetLogEvent]:
    # The batch API is a ListSink over the streaming record walk — one
    # parse implementation, two delivery shapes.
    from .pipeline import ListSink, feed

    return feed(iter_events(document, strict=strict, stats=stats), ListSink())
