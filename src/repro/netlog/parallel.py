"""Multiprocess parse pool for archived NetLog documents.

``repro fsck`` and ``repro analyze`` are re-analysis workloads: many
independent documents, each parsed (and, for fsck, canonically
re-verified) in full.  The work is embarrassingly parallel and CPU-bound
in the parser, so a small process pool scales it across cores — the
paper's 11 TB re-parse is exactly this shape.

Workers are module-level functions over path strings (picklable under
the ``spawn`` start method, like the crawl fabric's shard workers), and
every public entry point preserves input order and falls back to a
plain in-process loop for ``jobs <= 1`` — so a parallel run and a
serial run of the same audit produce identical reports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .parser import NetLogParseError, ParseStats

#: Hard cap on pool size — parse workers are memory-light but there is
#: no benefit past the physical core count.
MAX_JOBS = 32


def resolve_jobs(jobs: int | None, task_count: int | None = None) -> int:
    """Normalise a ``--jobs`` value to an effective worker count.

    ``None``/``1`` mean serial; ``0`` and negative values mean "use the
    machine" (cpu count).  The result never exceeds ``task_count`` — a
    pool larger than the work list is pure spawn overhead.
    """
    if jobs is None:
        resolved = 1
    elif jobs <= 0:
        resolved = os.cpu_count() or 1
    else:
        resolved = jobs
    resolved = min(resolved, MAX_JOBS)
    if task_count is not None:
        resolved = min(resolved, max(task_count, 1))
    return max(resolved, 1)


def verify_document(path: str | Path) -> ParseStats:
    """Salvage-parse + fully verify one archived document by path.

    The standalone form of :meth:`NetLogArchive.verify` — importable by
    pool workers without materialising an archive object.
    """
    import io

    from .codec import FORMAT_BINARY, sniff_format
    from .streaming import iter_events_streaming

    stats = ParseStats()
    raw = Path(path).read_bytes()
    if sniff_format(raw) == FORMAT_BINARY:
        from .binary import iter_events_binary

        for _ in iter_events_binary(
            raw, strict=False, stats=stats, verify="full"
        ):
            pass
        return stats
    text = raw.decode("utf-8", errors="replace")
    for _ in iter_events_streaming(
        io.StringIO(text), strict=False, stats=stats
    ):
        pass
    return stats


def _verify_one(path_str: str) -> ParseStats:
    return verify_document(path_str)


@dataclass(slots=True)
class DocumentSummary:
    """One document's analysis result, small enough to ship from a worker."""

    path: str
    stats: ParseStats
    total_flows: int = 0
    local_requests: int = 0
    behavior: str | None = None
    error: str | None = None


def _analyze_one(path_str: str) -> DocumentSummary:
    """Parse one document and run local-traffic detection over it."""
    from ..core.classifier import BehaviorClassifier
    from ..core.detector import LocalTrafficDetector
    from .streaming import iter_events_streaming

    stats = ParseStats()
    sink = LocalTrafficDetector().sink()
    try:
        with open(path_str, "rb") as fp:
            for event in iter_events_streaming(
                fp, strict=False, stats=stats, require_events=True
            ):
                sink.accept(event)
    except OSError as exc:
        return DocumentSummary(
            path=path_str, stats=stats, error=f"cannot read: {exc}"
        )
    except NetLogParseError as exc:
        return DocumentSummary(
            path=path_str, stats=stats, error=f"not a NetLog document: {exc}"
        )
    detection = sink.finish()
    behavior = None
    if detection.has_local_activity:
        behavior = (
            BehaviorClassifier().classify(detection.requests).behavior.value
        )
    return DocumentSummary(
        path=path_str,
        stats=stats,
        total_flows=detection.total_flows,
        local_requests=len(detection.requests),
        behavior=behavior,
    )


def _pool_map(worker, items: Sequence[str], jobs: int) -> list:
    """Order-preserving map over a spawn-based process pool."""
    if jobs <= 1 or len(items) <= 1:
        return [worker(item) for item in items]
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=jobs, mp_context=context
    ) as executor:
        return list(executor.map(worker, items))


def verify_paths(
    paths: Iterable[str | Path], *, jobs: int | None = None
) -> list[tuple[Path, ParseStats]]:
    """Fully verify many archived documents, optionally in parallel.

    Returns ``(path, stats)`` pairs in input order regardless of worker
    count, so fsck reports are byte-stable under ``--jobs N``.
    """
    ordered = [str(path) for path in paths]
    effective = resolve_jobs(jobs, len(ordered))
    results = _pool_map(_verify_one, ordered, effective)
    return [(Path(path), stats) for path, stats in zip(ordered, results)]


def analyze_paths(
    paths: Iterable[str | Path], *, jobs: int | None = None
) -> list[DocumentSummary]:
    """Parse + detect over many documents, optionally in parallel."""
    ordered = [str(path) for path in paths]
    effective = resolve_jobs(jobs, len(ordered))
    return _pool_map(_analyze_one, ordered, effective)
