"""Compact binary NetLog record encoding (``nlbin-v1``).

A length-prefixed binary sibling of the JSON document format in
:mod:`repro.netlog.writer`.  The JSON form is self-describing and greppable
but costs a ``json.loads`` per record on every re-analysis; measurement
corpora are scanned far more often than they are captured, so this format
optimises the read side: fixed-offset framing that a scanner can walk with
``struct.unpack_from`` over a single ``memoryview`` (no per-record JSON
decode, no intermediate dict), with only the free-form ``params`` payload
kept as embedded JSON bytes.

Document layout::

    magic   8 bytes  b"\\x89NLB1\\r\\n\\x00"  (PNG-style: the high bit
                     catches 7-bit strippers, CRLF catches newline
                     translation, NUL catches text-mode truncation)
    frames  tag (1 byte) | payload length (u32 LE) | payload CRC32 (u32 LE)
            | payload

    'H'  header  — UTF-8 JSON: format tag, timeTickOffset, the same
                   constants name tables the JSON writer embeds, and the
                   document's extra keys (e.g. ``visitMeta``)
    'E'  event   — fixed prelude ``<IdHIBBB`` (record index, time, type,
                   source id, source type, phase, flags), an optional
                   ``<II`` crc/chain pair, then raw params JSON bytes
    'T'  trailer — UTF-8 JSON: event count (and, when checksummed, the
                   crc32-chain-v1 algorithm tag and final chain value)

Integrity is two-layered:

* every frame carries a CRC32 over its own payload bytes — verified on
  the fast path at C speed, so in-place corruption is caught without
  re-canonicalising the record;
* checksummed records additionally store the *same* ``crc``/``chain``
  values the JSON writer computes — CRC32 over the record's canonical
  JSON form and the ``crc32-chain-v1`` rolling chain — so a document can
  be transcoded between formats without touching its checksum chain, and
  ``repro fsck`` audits both formats against one contract
  (:func:`verify_full` re-derives the canonical forms exactly like the
  JSON parser's :class:`~repro.netlog.parser.ChainVerifier`).

Salvage semantics mirror the JSON parsers: with ``strict=False`` a
truncated, NUL-padded, torn or bit-flipped document yields every event in
its intact prefix, and the damage is accounted in
:class:`~repro.netlog.parser.ParseStats` (``first_divergence`` pins the
first record where a checksummed document diverged from what its writer
emitted).
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from typing import IO, Iterable, Iterator

from .constants import EventPhase, EventType, SourceType
from .events import NetLogEvent, NetLogSource
from .parser import (
    ChainVerifier,
    NetLogIntegrityError,
    NetLogParseError,
    NetLogTruncationError,
    ParseStats,
)
from .writer import (
    CHAIN_SEED,
    CHECKSUM_ALGORITHM,
    build_constants,
    canonical_record_bytes,
    event_to_record,
)

#: Format identifier, embedded in every header frame.
BINARY_FORMAT = "nlbin-v1"

#: Document magic. First byte is non-ASCII so no binary document can be
#: mistaken for JSON (which must start with ``{`` after whitespace).
MAGIC = b"\x89NLB1\r\n\x00"

#: Frame tags.
TAG_HEADER = 0x48  # 'H'
TAG_EVENT = 0x45  # 'E'
TAG_TRAILER = 0x54  # 'T'

#: Event-frame flag bits.
FLAG_PARAMS = 0x01  # params JSON bytes follow the fixed fields
FLAG_INTEGRITY = 0x02  # a crc/chain pair follows the prelude
FLAG_INT_TIME = 0x04  # ``time`` was an int in the source record

#: ``tag | payload length | payload crc32``.
_FRAME_HEAD = struct.Struct("<BII")
#: ``index | time | type | source id | source type | phase | flags``.
_PRELUDE = struct.Struct("<IdHIBBB")
#: ``crc | chain`` — the crc32-chain-v1 pair, identical to the JSON fields.
_INTEGRITY = struct.Struct("<II")

#: Upper bound on one frame's payload: a length field beyond this is
#: framing damage (bit flip in the length), not a real record.
MAX_FRAME_BYTES = 64 * 1024 * 1024

# Precompiled decode dispatch: one dict/tuple lookup per field instead of
# an enum-constructor try/except per record.  Unknown event-type codes
# miss the table and take the forward-compatibility skip path.
_EVENT_TYPE_OF: dict[int, EventType] = {int(e): e for e in EventType}
_SOURCE_TYPE_OF: dict[int, SourceType] = {int(s): s for s in SourceType}
_PHASE_OF: dict[int, EventPhase] = {int(p): p for p in EventPhase}

_dumps = json.dumps
_loads = json.loads
_crc32 = zlib.crc32

#: Prebuilt C-level JSON scanner for params payloads: skips the
#: ``detect_encoding``/whitespace wrappers ``json.loads`` runs per call,
#: which dominate when the payload is a short params object.
_scan_json = json.JSONDecoder().scan_once


def _decode_params(payload: memoryview, offset: int) -> dict:
    """Decode the params JSON slice of an event payload.

    ``str(view, "utf-8")`` decodes straight from the memoryview (one
    copy, not two) and handing the C scanner a ``str`` avoids the
    byte-level sniffing ``json.loads`` would repeat per record.  Raises
    ``ValueError`` on damage (the caller maps it to the malformed-record
    disposition).
    """
    text = str(payload[offset:], "utf-8")
    try:
        params, _ = _scan_json(text, 0)
    except StopIteration:
        raise ValueError("empty params payload") from None
    if not isinstance(params, dict):
        raise ValueError("event params must be an object")
    return params


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _frame(tag: int, payload: bytes) -> bytes:
    return _FRAME_HEAD.pack(tag, len(payload), _crc32(payload)) + payload


def write_binary_head(
    fp: IO[bytes],
    *,
    time_origin_ms: float = 0.0,
    extra: dict | None = None,
    constants: dict | None = None,
) -> None:
    """Open a binary NetLog document: magic plus the header frame.

    The header carries the same self-describing content as the JSON
    document head — the constants name tables and any extra top-level
    keys — so transcoding back to JSON reproduces the head byte for
    byte.  ``constants`` overrides the native tables (the transcoder
    passes a foreign document's own block through unchanged).
    """
    head: dict = {"format": BINARY_FORMAT}
    if extra is not None:
        head["extra"] = extra
    head["timeTickOffset"] = time_origin_ms
    head["constants"] = (
        constants if constants is not None else build_constants(time_origin_ms)
    )
    fp.write(MAGIC)
    fp.write(_frame(TAG_HEADER, _dumps(head).encode("utf-8")))


def write_binary_tail(
    fp: IO[bytes],
    *,
    checksums: bool = False,
    count: int = 0,
    chain: int = CHAIN_SEED,
) -> None:
    """Close a binary document with its trailer frame."""
    trailer: dict = {"events": count}
    if checksums:
        trailer = {
            "algorithm": CHECKSUM_ALGORITHM,
            "events": count,
            "chain": chain,
        }
    fp.write(_frame(TAG_TRAILER, _dumps(trailer).encode("utf-8")))


class BinaryRecordWriter:
    """Incrementally serialises one document's event frames.

    The binary sibling of :class:`~repro.netlog.writer.RecordWriter`:
    tracks the running count and rolling hash chain so the caller can
    close the document with :func:`write_binary_tail`.  ``write_record``
    additionally accepts raw JSON-shaped record dicts (with stored
    crc/chain values) so the transcoder can move checksummed documents
    between formats without re-deriving their integrity metadata.
    """

    __slots__ = ("fp", "checksums", "count", "chain")

    def __init__(self, fp: IO[bytes], *, checksums: bool = False) -> None:
        self.fp = fp
        self.checksums = checksums
        self.count = 0
        self.chain = CHAIN_SEED

    def write(self, event: NetLogEvent) -> None:
        """Serialise one event, deriving integrity fields if checksummed."""
        flags = 0
        integrity = b""
        if self.checksums:
            payload = canonical_record_bytes(event_to_record(event))
            crc = _crc32(payload)
            self.chain = _crc32(payload, self.chain)
            integrity = _INTEGRITY.pack(crc, self.chain)
            flags |= FLAG_INTEGRITY
        params_bytes = b""
        if event.params:
            flags |= FLAG_PARAMS
            params_bytes = _dumps(
                event.params, separators=(",", ":")
            ).encode("utf-8")
        body = (
            _PRELUDE.pack(
                self.count,
                float(event.time),
                int(event.type),
                event.source.id,
                int(event.source.type),
                int(event.phase),
                flags,
            )
            + integrity
            + params_bytes
        )
        self.fp.write(_frame(TAG_EVENT, body))
        self.count += 1

    def write_record(self, record: dict) -> None:
        """Serialise one JSON-shaped record dict, preserving stored
        crc/chain values and the int-ness of ``time`` (both matter for
        canonical-form equality when the document is verified or
        transcoded back)."""
        time_value = record["time"]
        source = record["source"]
        params = record.get("params")
        crc = record.get("crc")
        chain = record.get("chain")
        flags = 0
        if isinstance(time_value, int) and not isinstance(time_value, bool):
            flags |= FLAG_INT_TIME
        integrity = b""
        if crc is not None and chain is not None:
            integrity = _INTEGRITY.pack(int(crc), int(chain))
            flags |= FLAG_INTEGRITY
            self.chain = int(chain)
        params_bytes = b""
        if params:
            flags |= FLAG_PARAMS
            params_bytes = _dumps(params, separators=(",", ":")).encode(
                "utf-8"
            )
        body = (
            _PRELUDE.pack(
                self.count,
                float(time_value),
                int(record["type"]),
                int(source["id"]),
                int(source.get("type", 0)),
                int(record.get("phase", 0)),
                flags,
            )
            + integrity
            + params_bytes
        )
        self.fp.write(_frame(TAG_EVENT, body))
        self.count += 1


class BinaryNetLogBuffer:
    """`EventSink` that serialises events to binary frames as they arrive.

    The drop-in binary counterpart of
    :class:`~repro.netlog.writer.NetLogBuffer`: same streaming-capture
    role, same ``body``/``count``/``chain``/``checksums`` surface, with a
    ``bytes`` body the archive wraps into a document via
    :func:`write_binary_head`/:func:`write_binary_tail`.
    """

    __slots__ = ("_io", "_writer")

    format = "binary"

    def __init__(self, *, checksums: bool = True) -> None:
        self._io = io.BytesIO()
        self._writer = BinaryRecordWriter(self._io, checksums=checksums)

    def accept(self, event: NetLogEvent) -> None:
        self._writer.write(event)

    def finish(self) -> "BinaryNetLogBuffer":
        return self

    @property
    def body(self) -> bytes:
        """The serialised event frames (no magic, header, or trailer)."""
        return self._io.getvalue()

    @property
    def count(self) -> int:
        return self._writer.count

    @property
    def chain(self) -> int:
        return self._writer.chain

    @property
    def checksums(self) -> bool:
        return self._writer.checksums


def dump_binary(
    events: Iterable[NetLogEvent],
    fp: IO[bytes],
    *,
    time_origin_ms: float = 0.0,
    checksums: bool = False,
    extra: dict | None = None,
) -> int:
    """Write a complete binary NetLog document; returns the event count.

    The binary counterpart of :func:`repro.netlog.writer.dump` — same
    streaming constant-memory property, same ``checksums`` semantics
    (identical crc/chain values over the same canonical forms).
    """
    write_binary_head(fp, time_origin_ms=time_origin_ms, extra=extra)
    writer = BinaryRecordWriter(fp, checksums=checksums)
    for event in events:
        writer.write(event)
    write_binary_tail(
        fp, checksums=checksums, count=writer.count, chain=writer.chain
    )
    return writer.count


def dumps_binary(
    events: Iterable[NetLogEvent],
    *,
    time_origin_ms: float = 0.0,
    checksums: bool = False,
    extra: dict | None = None,
) -> bytes:
    """Serialise a binary NetLog document to bytes."""
    buffer = io.BytesIO()
    dump_binary(
        events,
        buffer,
        time_origin_ms=time_origin_ms,
        checksums=checksums,
        extra=extra,
    )
    return buffer.getvalue()


# ---------------------------------------------------------------------------
# Frame scanning
# ---------------------------------------------------------------------------


class _Framing(Exception):
    """Internal: the byte stream stopped being a frame sequence."""

    def __init__(self, detail: str, *, partial_record: bool = False) -> None:
        super().__init__(detail)
        self.detail = detail
        #: Whether the damage point fell inside an event frame (a
        #: mid-record cut drops a partial record; a cut between frames
        #: loses nothing but the trailer's accounting).
        self.partial_record = partial_record


def _iter_frames_buffer(
    view: memoryview,
) -> Iterator[tuple[int, memoryview]]:
    """Yield ``(tag, payload)`` frames from one in-memory document.

    Zero-copy: payloads are ``memoryview`` slices of the source buffer.
    Raises :class:`_Framing` at the first point the byte stream stops
    making sense (truncation, NUL padding, a flipped length field).
    """
    size = len(view)
    offset = len(MAGIC)
    head = _FRAME_HEAD
    head_size = head.size
    while offset < size:
        tag = view[offset]
        if tag == 0:
            # NUL padding: a torn write flushed a sparse tail.  Nothing
            # after this point is trustworthy (mirrors the JSON
            # scanner's sticky-EOF NUL handling).
            raise _Framing("NUL padding where a frame was expected")
        if offset + head_size > size:
            raise _Framing(
                "document ends inside a frame header", partial_record=True
            )
        tag, length, frame_crc = head.unpack_from(view, offset)
        if tag not in (TAG_HEADER, TAG_EVENT, TAG_TRAILER):
            raise _Framing(f"unknown frame tag 0x{tag:02x}")
        if length > MAX_FRAME_BYTES:
            raise _Framing(
                f"implausible frame length {length} (framing lost)"
            )
        start = offset + head_size
        end = start + length
        if end > size:
            raise _Framing(
                "document ends inside a frame payload",
                partial_record=tag == TAG_EVENT,
            )
        payload = view[start:end]
        if frame_crc != _crc32(payload):
            yield -tag, payload  # negative tag: frame failed its own CRC
        else:
            yield tag, payload
        offset = end


def _iter_frames_file(fp: IO[bytes]) -> Iterator[tuple[int, memoryview]]:
    """Yield ``(tag, payload)`` frames from a binary file object.

    Bounded memory: exactly one frame is resident at a time, so
    arbitrarily large documents stream.  Damage semantics match the
    buffer scanner.
    """
    head = _FRAME_HEAD
    head_size = head.size
    while True:
        header = fp.read(head_size)
        if not header:
            return
        if header[0] == 0:
            raise _Framing("NUL padding where a frame was expected")
        if len(header) < head_size:
            raise _Framing(
                "document ends inside a frame header", partial_record=True
            )
        tag, length, frame_crc = head.unpack_from(header)
        if tag not in (TAG_HEADER, TAG_EVENT, TAG_TRAILER):
            raise _Framing(f"unknown frame tag 0x{tag:02x}")
        if length > MAX_FRAME_BYTES:
            raise _Framing(
                f"implausible frame length {length} (framing lost)"
            )
        payload = fp.read(length)
        if len(payload) < length:
            raise _Framing(
                "document ends inside a frame payload",
                partial_record=tag == TAG_EVENT,
            )
        view = memoryview(payload)
        if frame_crc != _crc32(payload):
            yield -tag, view
        else:
            yield tag, view


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _record_from_payload(payload: memoryview) -> dict:
    """Reconstruct the JSON-shaped record dict for one event payload.

    Key order matches :func:`~repro.netlog.writer.event_to_record` plus
    the integrity fields in writer order, so a transcoded JSON document
    is byte-identical to one the JSON writer would emit.  ``FLAG_INT_TIME``
    restores the int-ness of ``time`` (canonical forms distinguish
    ``7`` from ``7.0``).
    """
    index, time_value, type_code, source_id, source_type, phase, flags = (
        _PRELUDE.unpack_from(payload, 0)
    )
    del index
    offset = _PRELUDE.size
    crc = chain = None
    if flags & FLAG_INTEGRITY:
        crc, chain = _INTEGRITY.unpack_from(payload, offset)
        offset += _INTEGRITY.size
    record: dict = {
        "time": int(time_value) if flags & FLAG_INT_TIME else time_value,
        "type": type_code,
        "source": {"id": source_id, "type": source_type},
        "phase": phase,
    }
    if flags & FLAG_PARAMS:
        record["params"] = _loads(bytes(payload[offset:]))
    if crc is not None:
        record["crc"] = crc
        record["chain"] = chain
    return record


class _FastVerifier:
    """Cheap integrity accounting for the zero-copy decode path.

    Frame CRCs (checked by the scanner at C speed) already prove each
    record's bytes are what the writer emitted; this verifier adds the
    cross-record checks — record-index continuity (records lost,
    reordered, or spliced) and the trailer's count/final-chain — without
    re-deriving canonical JSON forms.  ``repro fsck`` uses
    :func:`verify_full` (the shared :class:`ChainVerifier` contract)
    instead when it wants the canonical-form proof.
    """

    __slots__ = ("expected", "seen", "seen_checksums", "last_chain", "synced")

    def __init__(self) -> None:
        self.expected = 0
        self.seen = 0  # record frames consumed, resync-independent
        self.seen_checksums = False
        self.last_chain: int | None = None
        self.synced = True

    def check_index(
        self,
        index: int,
        *,
        strict: bool,
        stats: ParseStats | None,
    ) -> bool:
        """Index continuity; False means the record must be dropped."""
        self.seen += 1
        if index == self.expected:
            self.expected = index + 1
            return True
        if strict:
            raise NetLogIntegrityError(
                f"record index {index} where {self.expected} was expected "
                "(records lost or reordered)"
            )
        if stats is not None:
            stats.chain_breaks += 1
            if stats.first_divergence is None:
                stats.first_divergence = min(index, self.expected)
        self.expected = index + 1
        self.synced = False
        return False

    def mark_damage(self, stats: ParseStats | None) -> None:
        """A record that never decoded still occupies its index slot."""
        self.seen += 1
        if (
            self.seen_checksums
            and stats is not None
            and stats.first_divergence is None
        ):
            stats.first_divergence = self.expected
        self.expected += 1
        self.synced = False

    def check_trailer(
        self,
        trailer: dict,
        *,
        strict: bool,
        stats: ParseStats | None,
    ) -> None:
        expected_events = trailer.get("events")
        expected_chain = trailer.get("chain")
        # The count compares against record frames actually seen, not
        # the post-resync index, so a spliced-out record trips both the
        # index gap and the trailer count — mirroring the JSON parsers.
        count_bad = (
            isinstance(expected_events, int)
            and expected_events != self.seen
        )
        chain_bad = (
            self.synced
            and self.seen_checksums
            and isinstance(expected_chain, int)
            and self.last_chain is not None
            and expected_chain != self.last_chain
        )
        if count_bad or chain_bad:
            detail = (
                f"integrity trailer mismatch: trailer covers "
                f"{expected_events} records ending at chain "
                f"{expected_chain}, parse saw {self.seen}"
            )
            if strict:
                raise NetLogIntegrityError(detail)
            if stats is not None:
                stats.chain_breaks += 1
                if stats.first_divergence is None:
                    stats.first_divergence = self.expected


def iter_events_binary(
    source: bytes | memoryview | IO[bytes],
    *,
    strict: bool = False,
    stats: ParseStats | None = None,
    verify: str = "fast",
) -> Iterator[NetLogEvent]:
    """Yield events from a binary NetLog document.

    ``source`` may be the document bytes (zero-copy scan over one
    ``memoryview``) or a binary file object (one frame resident at a
    time).  ``verify`` selects the integrity regime:

    * ``"fast"`` (default) — frame CRCs plus index/trailer continuity;
      catches every accidental-damage shape without re-canonicalising.
    * ``"full"`` — additionally re-derives each checksummed record's
      canonical JSON form and walks the crc32-chain-v1 chain through the
      shared :class:`ChainVerifier`, exactly as the JSON parsers do.

    Salvage semantics (``strict=False``) mirror the JSON parsers: the
    intact prefix is yielded and the damage is accounted in ``stats``.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        view = memoryview(source)
        if bytes(view[: len(MAGIC)]) != MAGIC:
            head = bytes(view[: len(MAGIC)])
            if head == MAGIC[: len(head)]:
                # Empty, or cut inside the magic itself: a truncated
                # binary document, not a foreign format.
                if strict:
                    raise NetLogTruncationError(
                        "document ends inside the format magic"
                        if head
                        else "empty NetLog document"
                    )
                if stats is not None:
                    stats.truncated = True
                return
            raise NetLogParseError("not a binary NetLog document (bad magic)")
        if verify == "full":
            yield from _iter_decoded(
                _iter_frames_buffer(view),
                strict=strict,
                stats=stats,
                verify=verify,
            )
        else:
            yield from _iter_events_fused(view, strict=strict, stats=stats)
        return
    magic = source.read(len(MAGIC))
    if magic != MAGIC:
        if magic == MAGIC[: len(magic)]:
            if strict:
                raise NetLogTruncationError(
                    "document ends inside the format magic"
                    if magic
                    else "empty NetLog document"
                )
            if stats is not None:
                stats.truncated = True
            return
        raise NetLogParseError("not a binary NetLog document (bad magic)")
    yield from _iter_decoded(
        _iter_frames_file(source), strict=strict, stats=stats, verify=verify
    )


def _iter_decoded(
    frames: Iterator[tuple[int, memoryview]],
    *,
    strict: bool,
    stats: ParseStats | None,
    verify: str,
) -> Iterator[NetLogEvent]:
    full = verify == "full"
    fast = _FastVerifier()
    chain_verifier = ChainVerifier() if full else None
    prelude = _PRELUDE
    prelude_size = prelude.size
    integrity_size = _INTEGRITY.size
    event_type_of = _EVENT_TYPE_OF
    source_type_of = _SOURCE_TYPE_OF
    phase_of = _PHASE_OF
    saw_trailer = False
    try:
        for tag, payload in frames:
            if tag == TAG_EVENT:
                (
                    index,
                    time_value,
                    type_code,
                    source_id,
                    source_type,
                    phase,
                    flags,
                ) = prelude.unpack_from(payload, 0)
                checksummed = bool(flags & FLAG_INTEGRITY)
                if checksummed:
                    fast.seen_checksums = True
                if full:
                    record = _record_from_payload(payload)
                    if not chain_verifier.verify(
                        record, strict=strict, stats=stats
                    ):
                        fast.check_index(index, strict=False, stats=None)
                        continue
                    fast.check_index(index, strict=False, stats=None)
                else:
                    if checksummed:
                        fast.last_chain = _INTEGRITY.unpack_from(
                            payload, prelude_size
                        )[1]
                    if not fast.check_index(index, strict=strict, stats=stats):
                        continue
                    if stats is not None and checksummed:
                        stats.verified += 1
                event_type = event_type_of.get(type_code)
                if event_type is None:
                    # Forward compatibility: same skip-and-count contract
                    # as the JSON parsers for foreign vocabularies.
                    if strict:
                        raise NetLogParseError(
                            f"unknown event type: {type_code!r}"
                        )
                    if stats is not None:
                        stats.dropped_unknown_type += 1
                    continue
                source_kind = source_type_of.get(source_type)
                if source_kind is None:
                    if strict:
                        raise NetLogParseError(
                            f"malformed source type: {source_type!r}"
                        )
                    if stats is not None:
                        stats.dropped_malformed += 1
                    continue
                offset = prelude_size
                if checksummed:
                    offset += integrity_size
                if flags & FLAG_PARAMS:
                    try:
                        params = _decode_params(payload, offset)
                    except ValueError as exc:
                        if strict:
                            raise NetLogParseError(
                                f"malformed params: {exc}"
                            ) from exc
                        if stats is not None:
                            stats.dropped_malformed += 1
                        continue
                else:
                    params = {}
                if stats is not None:
                    stats.parsed += 1
                yield NetLogEvent(
                    time=time_value,
                    type=event_type,
                    source=NetLogSource(id=source_id, type=source_kind),
                    phase=phase_of.get(phase, EventPhase.NONE),
                    params=params,
                )
            elif tag == -TAG_EVENT:
                # The frame's own CRC failed: in-place corruption.  A
                # checksummed document counts it as a checksum failure
                # (the analog of a record whose stored CRC lies); a
                # plain document counts it as a malformed record.
                checksummed = fast.seen_checksums or _frame_checksummed(
                    payload
                )
                if strict:
                    raise NetLogIntegrityError(
                        "frame CRC mismatch (in-place corruption)"
                    )
                if checksummed:
                    fast.seen_checksums = True
                    if stats is not None:
                        stats.checksum_failures += 1
                        if stats.first_divergence is None:
                            stats.first_divergence = fast.expected
                    fast.seen += 1
                    fast.expected += 1
                    fast.synced = False
                else:
                    if stats is not None:
                        stats.dropped_malformed += 1
                    fast.mark_damage(stats)
                if chain_verifier is not None:
                    chain_verifier.mark_gap(None)
            elif tag == TAG_HEADER:
                continue  # self-description only; vocabulary is native
            elif tag == TAG_TRAILER:
                saw_trailer = True
                try:
                    trailer = _loads(bytes(payload))
                except ValueError:
                    trailer = None
                if isinstance(trailer, dict):
                    if full:
                        chain_verifier.check_trailer(
                            trailer, strict=strict, stats=stats
                        )
                    else:
                        fast.check_trailer(
                            trailer, strict=strict, stats=stats
                        )
                break  # nothing meaningful may follow the trailer
            elif tag in (-TAG_HEADER, -TAG_TRAILER):
                if strict:
                    raise NetLogIntegrityError(
                        "frame CRC mismatch (in-place corruption)"
                    )
                # A damaged header loses only self-description; a
                # damaged trailer loses the tail accounting.
                if stats is not None and tag == -TAG_TRAILER:
                    stats.chain_breaks += 1
                    if stats.first_divergence is None:
                        stats.first_divergence = fast.expected
                if tag == -TAG_TRAILER:
                    saw_trailer = True
                    break
    except _Framing as exc:
        if strict:
            raise NetLogTruncationError(exc.detail) from exc
        if stats is not None:
            stats.truncated = True
            if exc.partial_record:
                stats.dropped_malformed += 1
                fast.mark_damage(stats)
        return
    if not saw_trailer:
        # A binary document always closes with a trailer frame; running
        # out of frames without one is clean whole-record truncation.
        if strict:
            raise NetLogTruncationError("document ended before its trailer")
        if stats is not None:
            stats.truncated = True


def _iter_events_fused(
    view: memoryview,
    *,
    strict: bool,
    stats: ParseStats | None,
) -> Iterator[NetLogEvent]:
    """Fused framing + decode over one in-memory document (fast verify).

    The hot path: a single loop walks the buffer with
    ``struct.unpack_from`` — no intermediate frame generator, no
    per-record dict, no per-record ``json.loads`` wrapper — which is
    what buys the binary format its parse-throughput edge.  Semantics
    are identical to the generic frame loop (the salvage suite runs
    against both paths); only the iteration structure differs.
    """
    size = len(view)
    offset = len(MAGIC)
    unpack_head = _FRAME_HEAD.unpack_from
    unpack_prelude = _PRELUDE.unpack_from
    unpack_integrity = _INTEGRITY.unpack_from
    crc32 = _crc32
    event_type_of = _EVENT_TYPE_OF
    source_type_of = _SOURCE_TYPE_OF
    phase_of = _PHASE_OF
    head_size = _FRAME_HEAD.size
    prelude_size = _PRELUDE.size
    integrity_size = _INTEGRITY.size
    none_phase = EventPhase.NONE

    expected = 0  # next record index
    seen = 0  # record frames consumed, resync-independent
    seen_checksums = False
    last_chain: int | None = None
    synced = True
    saw_trailer = False
    damage: str | None = None
    partial_record = False

    while offset < size:
        if view[offset] == 0:
            damage = "NUL padding where a frame was expected"
            break
        if offset + head_size > size:
            damage = "document ends inside a frame header"
            partial_record = True
            break
        tag, length, frame_crc = unpack_head(view, offset)
        if tag not in (TAG_HEADER, TAG_EVENT, TAG_TRAILER):
            damage = f"unknown frame tag 0x{tag:02x}"
            break
        if length > MAX_FRAME_BYTES:
            damage = f"implausible frame length {length} (framing lost)"
            break
        start = offset + head_size
        end = start + length
        if end > size:
            damage = "document ends inside a frame payload"
            partial_record = tag == TAG_EVENT
            break
        payload = view[start:end]
        offset = end
        if frame_crc != crc32(payload):
            if strict:
                raise NetLogIntegrityError(
                    "frame CRC mismatch (in-place corruption)"
                )
            if tag == TAG_EVENT:
                if seen_checksums or _frame_checksummed(payload):
                    seen_checksums = True
                    if stats is not None:
                        stats.checksum_failures += 1
                        if stats.first_divergence is None:
                            stats.first_divergence = expected
                else:
                    if stats is not None:
                        stats.dropped_malformed += 1
                        if (
                            seen_checksums
                            and stats.first_divergence is None
                        ):
                            stats.first_divergence = expected
                seen += 1
                expected += 1
                synced = False
            elif tag == TAG_TRAILER:
                if stats is not None:
                    stats.chain_breaks += 1
                    if stats.first_divergence is None:
                        stats.first_divergence = expected
                saw_trailer = True
                break
            continue
        if tag == TAG_EVENT:
            (
                index,
                time_value,
                type_code,
                source_id,
                source_type,
                phase,
                flags,
            ) = unpack_prelude(payload, 0)
            checksummed = flags & FLAG_INTEGRITY
            seen += 1
            if checksummed:
                seen_checksums = True
                last_chain = unpack_integrity(payload, prelude_size)[1]
            if index != expected:
                if strict:
                    raise NetLogIntegrityError(
                        f"record index {index} where {expected} was "
                        "expected (records lost or reordered)"
                    )
                if stats is not None:
                    stats.chain_breaks += 1
                    if stats.first_divergence is None:
                        stats.first_divergence = min(index, expected)
                expected = index + 1
                synced = False
                continue
            expected = index + 1
            event_type = event_type_of.get(type_code)
            if event_type is None:
                if strict:
                    raise NetLogParseError(
                        f"unknown event type: {type_code!r}"
                    )
                if stats is not None:
                    if checksummed:
                        stats.verified += 1
                    stats.dropped_unknown_type += 1
                continue
            source_kind = source_type_of.get(source_type)
            if source_kind is None:
                if strict:
                    raise NetLogParseError(
                        f"malformed source type: {source_type!r}"
                    )
                if stats is not None:
                    if checksummed:
                        stats.verified += 1
                    stats.dropped_malformed += 1
                continue
            if flags & FLAG_PARAMS:
                body_offset = prelude_size
                if checksummed:
                    body_offset += integrity_size
                try:
                    params = _decode_params(payload, body_offset)
                except ValueError as exc:
                    if strict:
                        raise NetLogParseError(
                            f"malformed params: {exc}"
                        ) from exc
                    if stats is not None:
                        if checksummed:
                            stats.verified += 1
                        stats.dropped_malformed += 1
                    continue
            else:
                params = {}
            if stats is not None:
                stats.parsed += 1
                if checksummed:
                    stats.verified += 1
            yield NetLogEvent(
                time=time_value,
                type=event_type,
                source=NetLogSource(id=source_id, type=source_kind),
                phase=phase_of.get(phase, none_phase),
                params=params,
            )
        elif tag == TAG_TRAILER:
            saw_trailer = True
            try:
                trailer = _loads(bytes(payload))
            except ValueError:
                trailer = None
            if isinstance(trailer, dict):
                expected_events = trailer.get("events")
                expected_chain = trailer.get("chain")
                count_bad = (
                    isinstance(expected_events, int)
                    and expected_events != seen
                )
                chain_bad = (
                    synced
                    and seen_checksums
                    and isinstance(expected_chain, int)
                    and last_chain is not None
                    and expected_chain != last_chain
                )
                if count_bad or chain_bad:
                    if strict:
                        raise NetLogIntegrityError(
                            "integrity trailer mismatch: trailer covers "
                            f"{expected_events} records ending at chain "
                            f"{expected_chain}, parse saw {seen}"
                        )
                    if stats is not None:
                        stats.chain_breaks += 1
                        if stats.first_divergence is None:
                            stats.first_divergence = expected
            break
        # TAG_HEADER: self-description only; vocabulary is native.

    if damage is not None:
        if strict:
            raise NetLogTruncationError(damage)
        if stats is not None:
            stats.truncated = True
            if partial_record:
                stats.dropped_malformed += 1
                if seen_checksums and stats.first_divergence is None:
                    stats.first_divergence = expected
        return
    if not saw_trailer:
        if strict:
            raise NetLogTruncationError("document ended before its trailer")
        if stats is not None:
            stats.truncated = True


def _frame_checksummed(payload: memoryview) -> bool:
    """Best-effort: did a CRC-failed event frame carry integrity fields?"""
    if len(payload) < _PRELUDE.size:
        return False
    return bool(payload[_PRELUDE.size - 1] & FLAG_INTEGRITY)


def load_binary(
    source: bytes | IO[bytes],
    *,
    strict: bool = True,
    stats: ParseStats | None = None,
    verify: str = "fast",
) -> list[NetLogEvent]:
    """Parse a complete binary NetLog document into an event list."""
    return list(
        iter_events_binary(source, strict=strict, stats=stats, verify=verify)
    )


# ---------------------------------------------------------------------------
# Raw record access (transcoding, header/meta inspection)
# ---------------------------------------------------------------------------


def read_binary_header(source: bytes | IO[bytes]) -> dict | None:
    """The decoded header frame of a binary document, damage-tolerant.

    Returns the header dict (``format``, ``timeTickOffset``, ``extra``,
    ``constants``) or None when the document's head is damaged or absent
    — the binary counterpart of
    :meth:`~repro.netlog.archive.NetLogArchive.read_meta`'s tolerance.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        view = memoryview(source)
        if bytes(view[: len(MAGIC)]) != MAGIC:
            return None
        frames = _iter_frames_buffer(view)
    else:
        if source.read(len(MAGIC)) != MAGIC:
            return None
        frames = _iter_frames_file(source)
    try:
        for tag, payload in frames:
            if tag == TAG_HEADER:
                decoded = _loads(bytes(payload))
                return decoded if isinstance(decoded, dict) else None
            return None  # first frame was not an (intact) header
    except (_Framing, ValueError):
        return None
    return None


def read_binary_document(
    source: bytes | IO[bytes],
    *,
    strict: bool = True,
) -> tuple[dict | None, list[dict], dict | None]:
    """Materialise one binary document as ``(header, records, trailer)``.

    The transcoder's whole-document read path: records are raw
    JSON-shaped dicts with stored crc/chain preserved, the header and
    trailer are the decoded frame payloads (None when absent).  With
    ``strict=True`` any damage raises; the lenient mode salvages like
    :func:`iter_binary_records`.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        view = memoryview(source)
        if bytes(view[: len(MAGIC)]) != MAGIC:
            raise NetLogParseError("not a binary NetLog document (bad magic)")
        frames = _iter_frames_buffer(view)
    else:
        if source.read(len(MAGIC)) != MAGIC:
            raise NetLogParseError("not a binary NetLog document (bad magic)")
        frames = _iter_frames_file(source)
    header: dict | None = None
    trailer: dict | None = None
    records: list[dict] = []
    try:
        for tag, payload in frames:
            if tag == TAG_EVENT:
                try:
                    records.append(_record_from_payload(payload))
                except (struct.error, ValueError) as exc:
                    if strict:
                        raise NetLogParseError(
                            f"malformed event frame: {exc}"
                        ) from exc
            elif tag == TAG_HEADER:
                try:
                    decoded = _loads(bytes(payload))
                except ValueError as exc:
                    if strict:
                        raise NetLogParseError(
                            f"malformed header frame: {exc}"
                        ) from exc
                    decoded = None
                if isinstance(decoded, dict):
                    header = decoded
            elif tag == TAG_TRAILER:
                try:
                    decoded = _loads(bytes(payload))
                except ValueError as exc:
                    if strict:
                        raise NetLogParseError(
                            f"malformed trailer frame: {exc}"
                        ) from exc
                    decoded = None
                if isinstance(decoded, dict):
                    trailer = decoded
                break
            else:
                if strict:
                    raise NetLogIntegrityError(
                        "frame CRC mismatch (in-place corruption)"
                    )
    except _Framing as exc:
        if strict:
            raise NetLogTruncationError(exc.detail) from exc
    return header, records, trailer


def iter_binary_records(
    source: bytes | IO[bytes],
    *,
    strict: bool = False,
    stats: ParseStats | None = None,
) -> Iterator[dict]:
    """Yield raw JSON-shaped record dicts (crc/chain preserved).

    The transcoder's record-level read path: no event construction, no
    vocabulary filtering — unknown event types pass through so foreign
    documents convert losslessly.  Damage is handled like the event
    parser (salvage the intact prefix, account the loss).
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        view = memoryview(source)
        if bytes(view[: len(MAGIC)]) != MAGIC:
            raise NetLogParseError("not a binary NetLog document (bad magic)")
        frames = _iter_frames_buffer(view)
    else:
        if source.read(len(MAGIC)) != MAGIC:
            raise NetLogParseError("not a binary NetLog document (bad magic)")
        frames = _iter_frames_file(source)
    try:
        for tag, payload in frames:
            if tag == TAG_EVENT:
                try:
                    yield _record_from_payload(payload)
                except (struct.error, ValueError) as exc:
                    if strict:
                        raise NetLogParseError(
                            f"malformed event frame: {exc}"
                        ) from exc
                    if stats is not None:
                        stats.dropped_malformed += 1
            elif tag == -TAG_EVENT:
                if strict:
                    raise NetLogIntegrityError(
                        "frame CRC mismatch (in-place corruption)"
                    )
                if stats is not None:
                    stats.dropped_malformed += 1
            elif tag == TAG_TRAILER:
                break
    except _Framing as exc:
        if strict:
            raise NetLogTruncationError(exc.detail) from exc
        if stats is not None:
            stats.truncated = True
