"""Lossless transcoding between the JSON and binary NetLog formats.

Both document formats carry the same information — extra head keys
(``visitMeta``), the constants block, the event records with their
stored ``crc``/``chain`` integrity fields, and the integrity trailer —
so a document can be moved between them without re-deriving anything:
stored checksums pass through verbatim (they are defined over canonical
JSON forms, which are format-independent), record order and the int-ness
of ``time`` are preserved, and unknown event types convert as opaque
numeric codes.

For documents produced by this package's own writers the round trip is
*byte*-identical in both directions (``json → binary → json`` and
``binary → json → binary``); foreign JSON documents (real Chrome logs)
round-trip at the record level — their constants block rides along
unchanged, but incidental whitespace does not survive.
"""

from __future__ import annotations

import io
import json
from typing import IO

from .binary import (
    BinaryRecordWriter,
    _frame,  # shared frame assembly; the trailer must pass through verbatim
    TAG_TRAILER,
    read_binary_document,
    write_binary_head,
)
from .codec import FORMAT_BINARY, FORMAT_JSON, coerce_document, get_codec
from .parser import NetLogParseError


def to_binary(source: "bytes | str | IO[str] | IO[bytes]") -> bytes:
    """Transcode any NetLog document to the binary format.

    A binary input is returned unchanged (already the target format); a
    JSON input must be a well-formed document — damaged documents should
    be repaired (``repro fsck``) before conversion, because a transcode
    of a salvaged prefix would silently launder the damage into a
    clean-looking document.
    """
    format_name, document = coerce_document(source)
    if format_name == FORMAT_BINARY:
        return document  # type: ignore[return-value]
    try:
        decoded = json.loads(document)
    except json.JSONDecodeError as exc:
        raise NetLogParseError(f"invalid JSON: {exc}") from exc
    if not isinstance(decoded, dict):
        raise NetLogParseError("NetLog document must be a JSON object")
    records = decoded.get("events")
    if not isinstance(records, list):
        raise NetLogParseError("NetLog document missing 'events' array")
    constants = decoded.get("constants")
    if not isinstance(constants, dict):
        constants = None
    time_origin = 0.0
    if constants is not None:
        raw_origin = constants.get("timeTickOffset")
        if isinstance(raw_origin, (int, float)) and not isinstance(
            raw_origin, bool
        ):
            time_origin = raw_origin
    extra = {
        key: value
        for key, value in decoded.items()
        if key not in ("constants", "events", "integrity")
    }
    trailer = decoded.get("integrity")
    out = io.BytesIO()
    write_binary_head(
        out,
        time_origin_ms=time_origin,
        extra=extra or None,
        constants=constants,
    )
    writer = BinaryRecordWriter(out)
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            raise NetLogParseError(
                f"record {index}: event record must be an object"
            )
        try:
            writer.write_record(record)
        except (KeyError, TypeError, ValueError) as exc:
            raise NetLogParseError(
                f"record {index}: not representable in binary form: {exc}"
            ) from exc
    if not isinstance(trailer, dict):
        trailer = {"events": writer.count}
    out.write(
        _frame(TAG_TRAILER, json.dumps(trailer).encode("utf-8"))
    )
    return out.getvalue()


def to_json(source: "bytes | str | IO[str] | IO[bytes]") -> str:
    """Transcode any NetLog document to the JSON format.

    A JSON input is returned unchanged.  The head is rebuilt in the JSON
    writer's exact shape (extras, then ``constants``, then the events
    array) from the binary header's preserved content, so documents our
    own capture path wrote round-trip byte for byte.
    """
    format_name, document = coerce_document(source)
    if format_name == FORMAT_JSON:
        return document  # type: ignore[return-value]
    header, records, trailer = read_binary_document(document, strict=True)
    out = io.StringIO()
    out.write("{")
    extra = (header or {}).get("extra")
    if isinstance(extra, dict):
        for key, value in extra.items():
            out.write(json.dumps(key))
            out.write(": ")
            json.dump(value, out)
            out.write(", ")
    constants = (header or {}).get("constants")
    if not isinstance(constants, dict):
        from .writer import build_constants

        origin = (header or {}).get("timeTickOffset")
        constants = build_constants(
            origin if isinstance(origin, (int, float)) else 0.0
        )
    out.write('"constants": ')
    json.dump(constants, out)
    out.write(', "events": [')
    for index, record in enumerate(records):
        if index:
            out.write(",\n")
        json.dump(record, out)
    out.write("]")
    if trailer is not None and trailer.keys() != {"events"}:
        out.write(', "integrity": ')
        json.dump(trailer, out)
    out.write("}")
    return out.getvalue()


def convert(
    source: "bytes | str | IO[str] | IO[bytes]", to: str
) -> "bytes | str":
    """Transcode a document to the named format (bytes for binary)."""
    codec = get_codec(to)
    if codec.binary:
        return to_binary(source)
    return to_json(source)
