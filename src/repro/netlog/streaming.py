"""Streaming NetLog parser for logs too large to hold in memory.

Real deployments of ``chrome --log-net-log`` produce multi-gigabyte
documents (the paper's study parsed 11 TB of telemetry).  ``json.load``
needs the whole document in memory; this module walks the ``events``
array incrementally, yielding one event at a time with bounded memory.

The scanner is a small hand-rolled JSON tokenizer specialised to the
NetLog layout: a top-level object whose ``events`` key holds an array of
objects.  Individual event objects are still decoded with the stdlib
``json`` module, so value semantics are identical to the whole-document
parser.

Damage tolerance: a NetLog from a killed browser ends mid-stream — no
closing ``]}``, sometimes a half-written record, sometimes a NUL-padded
tail (page-cache flush of a sparse file).  With ``strict=False`` the
walker yields every event up to the damage point and stops, recording
``truncated`` (and a dropped partial record, if any) in the optional
:class:`~repro.netlog.parser.ParseStats` instead of raising.
"""

from __future__ import annotations

import json
from typing import IO, Iterator

from .constants import EventType
from .events import NetLogEvent
from .parser import (
    ChainVerifier,
    NetLogParseError,
    NetLogTruncationError,
    ParseStats,
    parse_record,
)

_CHUNK_SIZE = 64 * 1024


class _Scanner:
    """Incremental reader with pushback over a text stream.

    A NUL byte is treated as (sticky) end of input: real truncated
    NetLogs are often padded with NULs up to a block boundary, and no
    valid JSON contains a raw NUL outside an escape sequence.
    """

    def __init__(self, fp: IO[str]) -> None:
        self._fp = fp
        self._buffer = ""
        self._position = 0
        self._eof = False

    def read_char(self) -> str:
        """Next character, or '' at EOF (or at a NUL — see class doc)."""
        if self._eof:
            return ""
        if self._position >= len(self._buffer):
            self._buffer = self._fp.read(_CHUNK_SIZE)
            self._position = 0
            if not self._buffer:
                self._eof = True
                return ""
        ch = self._buffer[self._position]
        self._position += 1
        if ch == "\x00":
            self._eof = True
            return ""
        return ch

    def push_back(self, ch: str) -> None:
        """Return one just-read character to the stream."""
        if not ch:
            return
        self._buffer = ch + self._buffer[self._position :]
        self._position = 0

    def read_nonspace(self) -> str:
        ch = self.read_char()
        while ch and ch in " \t\r\n":
            ch = self.read_char()
        return ch


def _read_string(scanner: _Scanner) -> str:
    """Read a JSON string body (opening quote already consumed)."""
    parts: list[str] = []
    while True:
        ch = scanner.read_char()
        if not ch:
            raise NetLogTruncationError("unterminated string")
        if ch == "\\":
            escaped = scanner.read_char()
            if not escaped:
                raise NetLogTruncationError("unterminated escape")
            parts.append(ch + escaped)
            continue
        if ch == '"':
            return json.loads('"' + "".join(parts) + '"')
        parts.append(ch)


def _read_balanced_object(scanner: _Scanner) -> str:
    """Read one {...} object as raw text (opening brace consumed)."""
    depth = 1
    parts: list[str] = ["{"]
    in_string = False
    while depth:
        ch = scanner.read_char()
        if not ch:
            raise NetLogTruncationError("unterminated object")
        parts.append(ch)
        if in_string:
            if ch == "\\":
                follow = scanner.read_char()
                if not follow:
                    raise NetLogTruncationError("unterminated escape")
                parts.append(follow)
            elif ch == '"':
                in_string = False
            continue
        if ch == '"':
            in_string = True
        elif ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
    return "".join(parts)


def _skip_value(scanner: _Scanner, first: str) -> None:
    """Skip one JSON value whose first character is ``first``."""
    if first == '"':
        _read_string(scanner)
        return
    if first == "{":
        _read_balanced_object(scanner)
        return
    if first == "[":
        depth = 1
        in_string = False
        while depth:
            ch = scanner.read_char()
            if not ch:
                raise NetLogTruncationError("unterminated array")
            if in_string:
                if ch == "\\":
                    scanner.read_char()
                elif ch == '"':
                    in_string = False
                continue
            if ch == '"':
                in_string = True
            elif ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
        return
    # Scalar: consume until a delimiter.  A comma is the caller's to
    # tolerate, but a closing brace/bracket belongs to the enclosing
    # structure — push it back so `{"key": 1}` still reaches the
    # missing-events check instead of reading as truncated.
    while True:
        ch = scanner.read_char()
        if not ch or ch == ",":
            return
        if ch in "}]":
            scanner.push_back(ch)
            return


def iter_events_streaming(
    fp: "bytes | str | IO[str] | IO[bytes]",
    *,
    strict: bool = False,
    stats: ParseStats | None = None,
    require_events: bool = False,
) -> Iterator[NetLogEvent]:
    """Yield NetLog events from any document source with bounded memory.

    Accepts document text, document bytes, or a file object of either;
    the format is sniffed from the first byte.  Binary (``nlbin-v1``)
    documents take the zero-copy frame scanner in
    :mod:`repro.netlog.binary`; JSON documents take the incremental
    tokenizer below, which reads the top-level object key by key — the
    ``constants`` block is decoded (for the event-type name table), every
    other non-``events`` key is skipped without materialisation, and the
    ``events`` array is walked object by object.

    Unknown event types are skipped when ``strict`` is False (the
    default here, unlike the whole-document parser, because real Chrome
    logs carry hundreds of event types beyond the modelled subset).
    Non-strict mode also tolerates physical damage: on a truncated or
    NUL-padded document the generator yields the intact event prefix,
    marks ``stats.truncated`` and stops instead of raising.

    ``require_events=True`` raises :class:`NetLogParseError` when a
    document *completes* without ever presenting an ``events`` array —
    matching the whole-document parser's rejection of arbitrary JSON
    objects — while still tolerating truncation as above (a cut-off
    document never reaches its closing brace, so the check cannot fire).
    """
    from .codec import FORMAT_BINARY, coerce_stream, sniff_format

    if isinstance(fp, (bytes, bytearray, memoryview)) and (
        sniff_format(fp) == FORMAT_BINARY
    ):
        # In-memory binary documents skip the stream wrapper entirely so
        # the fused zero-copy scanner sees the raw buffer.
        from .binary import iter_events_binary

        yield from iter_events_binary(fp, strict=strict, stats=stats)
        return
    format_name, stream = coerce_stream(fp)
    if format_name == FORMAT_BINARY:
        from .binary import iter_events_binary

        yield from iter_events_binary(stream, strict=strict, stats=stats)
        return
    try:
        yield from _iter_document(
            _Scanner(stream), strict, stats, require_events
        )
    except NetLogTruncationError:
        if strict:
            raise
        if stats is not None:
            stats.truncated = True


def _iter_document(
    scanner: _Scanner,
    strict: bool,
    stats: ParseStats | None,
    require_events: bool = False,
) -> Iterator[NetLogEvent]:
    opener = scanner.read_nonspace()
    if opener != "{":
        if not opener:
            raise NetLogTruncationError("empty NetLog document")
        raise NetLogParseError("NetLog document must be a JSON object")

    event_names: dict[str, int] = {}
    verifier = ChainVerifier()
    saw_events = False
    while True:
        ch = scanner.read_nonspace()
        if ch == "}":
            if require_events and not saw_events:
                raise NetLogParseError(
                    "NetLog document missing 'events' array"
                )
            return
        if ch == ",":
            continue
        if ch != '"':
            if not ch:
                raise NetLogTruncationError("document ended before '}'")
            raise NetLogParseError(f"expected object key, got {ch!r}")
        key = _read_string(scanner)
        colon = scanner.read_nonspace()
        if colon != ":":
            if not colon:
                raise NetLogTruncationError("document ended after object key")
            raise NetLogParseError("expected ':' after object key")
        first = scanner.read_nonspace()
        if not first:
            raise NetLogTruncationError("document ended before a value")
        if key == "constants" and first == "{":
            raw = _read_balanced_object(scanner)
            try:
                constants = json.loads(raw)
            except json.JSONDecodeError as exc:
                if strict:
                    raise NetLogParseError(
                        f"malformed constants block: {exc}"
                    ) from exc
                constants = {}
            event_names = constants.get("logEventTypes") or {}
        elif key == "events" and first == "[":
            saw_events = True
            yield from _iter_array_events(
                scanner, event_names, strict, stats, verifier
            )
        elif key == "integrity" and first == "{":
            raw = _read_balanced_object(scanner)
            try:
                trailer = json.loads(raw)
            except json.JSONDecodeError:
                trailer = None
            verifier.check_trailer(trailer, strict=strict, stats=stats)
        else:
            _skip_value(scanner, first)


def _iter_array_events(
    scanner: _Scanner,
    event_names: dict[str, int],
    strict: bool,
    stats: ParseStats | None,
    verifier: ChainVerifier | None = None,
) -> Iterator[NetLogEvent]:
    if verifier is None:
        verifier = ChainVerifier()
    while True:
        ch = scanner.read_nonspace()
        if ch == "]":
            return
        if ch == ",":
            continue
        if ch != "{":
            if not ch:
                raise NetLogTruncationError("events array unterminated")
            raise NetLogParseError(f"expected event object, got {ch!r}")
        try:
            raw = _read_balanced_object(scanner)
        except NetLogTruncationError:
            # The cut fell inside this record: its prefix is unusable.
            if not strict and stats is not None:
                stats.dropped_malformed += 1
                verifier.mark_gap(stats)
            raise
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            if strict:
                raise NetLogParseError(f"malformed event object: {exc}") from exc
            # Balanced but undecodable (in-place corruption): the stream
            # is still in sync after the closing brace, so keep walking.
            if stats is not None:
                stats.dropped_malformed += 1
            verifier.mark_gap(stats)
            continue
        if not verifier.verify(record, strict=strict, stats=stats):
            continue
        event = parse_record(
            record, event_names=event_names, strict=strict, stats=stats
        )
        if event is not None:
            yield event


def count_event_types(fp: IO[str]) -> dict[EventType, int]:
    """Histogram of event types in a log, computed streamingly."""
    counts: dict[EventType, int] = {}
    for event in iter_events_streaming(fp):
        counts[event.type] = counts.get(event.type, 0) + 1
    return counts
