"""Chrome NetLog substrate: event model, writers, parsers, two formats.

This package reproduces the slice of Chrome's network logging system that
the paper's telemetry pipeline depends on (section 3.1): timestamped events
with a type, a source (flow) identity, and a BEGIN/END phase, serialised as
a self-describing JSON document or as the compact binary ``nlbin-v1``
sibling (see :mod:`repro.netlog.binary`); :mod:`repro.netlog.codec` holds
the format registry and magic-byte sniffing, and
:mod:`repro.netlog.convert` transcodes losslessly between the two.
"""

from .binary import (
    BINARY_FORMAT,
    BinaryNetLogBuffer,
    BinaryRecordWriter,
    dump_binary,
    dumps_binary,
    iter_events_binary,
    load_binary,
    read_binary_header,
)
from .codec import (
    FORMAT_BINARY,
    FORMAT_ENV_VAR,
    FORMAT_JSON,
    NetLogCodec,
    default_format,
    get_codec,
    make_capture_buffer,
    sniff_format,
)
from .convert import convert, to_binary, to_json
from .constants import (
    DEFAULT_PORTS,
    SUPPORTED_SCHEMES,
    EventPhase,
    EventType,
    SourceType,
)
from .archive import NetLogArchive
from .events import NetLogEvent, NetLogSource, SourceIdAllocator, events_for_source
from .pipeline import (
    CountSink,
    EventSink,
    ListSink,
    ReorderBuffer,
    Tee,
    feed,
)
from .parser import (
    ChainVerifier,
    NetLogIntegrityError,
    NetLogParseError,
    NetLogTruncationError,
    ParseStats,
    iter_events,
    load,
    loads,
    parse_record,
)
from .streaming import count_event_types, iter_events_streaming
from .writer import (
    CHAIN_SEED,
    CHECKSUM_ALGORITHM,
    NetLogBuffer,
    RecordWriter,
    build_constants,
    canonical_record_bytes,
    dump,
    dumps,
    event_to_record,
    write_document_head,
    write_document_tail,
)

__all__ = [
    "BINARY_FORMAT",
    "BinaryNetLogBuffer",
    "BinaryRecordWriter",
    "CHAIN_SEED",
    "CHECKSUM_ALGORITHM",
    "FORMAT_BINARY",
    "FORMAT_ENV_VAR",
    "FORMAT_JSON",
    "NetLogCodec",
    "convert",
    "default_format",
    "dump_binary",
    "dumps_binary",
    "get_codec",
    "iter_events_binary",
    "load_binary",
    "make_capture_buffer",
    "read_binary_header",
    "sniff_format",
    "to_binary",
    "to_json",
    "ChainVerifier",
    "NetLogArchive",
    "NetLogIntegrityError",
    "canonical_record_bytes",
    "DEFAULT_PORTS",
    "SUPPORTED_SCHEMES",
    "EventPhase",
    "EventType",
    "SourceType",
    "NetLogEvent",
    "NetLogSource",
    "SourceIdAllocator",
    "events_for_source",
    "NetLogParseError",
    "NetLogTruncationError",
    "ParseStats",
    "CountSink",
    "EventSink",
    "ListSink",
    "NetLogBuffer",
    "RecordWriter",
    "ReorderBuffer",
    "Tee",
    "count_event_types",
    "feed",
    "iter_events",
    "iter_events_streaming",
    "load",
    "loads",
    "parse_record",
    "build_constants",
    "dump",
    "dumps",
    "event_to_record",
    "write_document_head",
    "write_document_tail",
]
