"""Format registry and sniffing for the two NetLog document encodings.

Everything above the record layer (archive, fsck, CLI, serve, fabric)
speaks in terms of a *codec* — a small descriptor for one on-disk
document format — and never branches on format names directly.  Two
codecs exist:

* ``json`` — the self-describing text document from
  :mod:`repro.netlog.writer`; greppable, diff-friendly, the default.
* ``binary`` — the length-prefixed ``nlbin-v1`` encoding from
  :mod:`repro.netlog.binary`; ~the same information at a fraction of the
  scan cost.

Both carry the identical ``crc32-chain-v1`` integrity contract, so the
choice is an operational knob (set per campaign via ``--netlog-format``
or globally via ``REPRO_NETLOG_FORMAT``), not a semantic one.

The module also owns the shared *source coercion* helpers: every parse
entry point (``loads``, ``iter_events_streaming``, archive reads, serve
uploads) accepts ``bytes | str | IO`` and routes on the document's first
byte — binary documents open with the non-ASCII ``nlbin-v1`` magic, JSON
documents with ``{`` — instead of each call site re-inventing str-only
assumptions.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import IO, Callable, Union

FORMAT_JSON = "json"
FORMAT_BINARY = "binary"

#: Environment knob for the capture-side default format.
FORMAT_ENV_VAR = "REPRO_NETLOG_FORMAT"

#: Anything a parse entry point accepts as a NetLog document.
DocumentSource = Union[bytes, bytearray, memoryview, str, IO[str], IO[bytes]]


@dataclass(frozen=True, slots=True)
class NetLogCodec:
    """One on-disk NetLog document encoding.

    ``suffix`` is the archive file suffix; ``binary`` tells callers
    whether documents are bytes (open ``"rb"``) or text;
    ``make_buffer`` builds the streaming capture sink
    (:class:`~repro.netlog.writer.NetLogBuffer` or
    :class:`~repro.netlog.binary.BinaryNetLogBuffer`) whose body the
    archive later wraps into a complete document.
    """

    name: str
    suffix: str
    binary: bool
    make_buffer: Callable[..., object]


def _make_json_buffer(*, checksums: bool = True):
    from .writer import NetLogBuffer

    return NetLogBuffer(checksums=checksums)


def _make_binary_buffer(*, checksums: bool = True):
    from .binary import BinaryNetLogBuffer

    return BinaryNetLogBuffer(checksums=checksums)


JSON_CODEC = NetLogCodec(
    name=FORMAT_JSON,
    suffix=".json",
    binary=False,
    make_buffer=_make_json_buffer,
)

BINARY_CODEC = NetLogCodec(
    name=FORMAT_BINARY,
    suffix=".nlbin",
    binary=True,
    make_buffer=_make_binary_buffer,
)

CODECS: dict[str, NetLogCodec] = {
    JSON_CODEC.name: JSON_CODEC,
    BINARY_CODEC.name: BINARY_CODEC,
}

#: Archive suffixes in read-dispatch order (JSON first: it predates the
#: binary format, so mixed archives skew JSON).
ARCHIVE_SUFFIXES = (JSON_CODEC.suffix, BINARY_CODEC.suffix)

_SUFFIX_TO_CODEC = {codec.suffix: codec for codec in CODECS.values()}


def get_codec(name: str | None) -> NetLogCodec:
    """Resolve a format name (None → environment default) to its codec."""
    if name is None:
        name = default_format()
    try:
        return CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown NetLog format {name!r}"
            f" (expected one of {sorted(CODECS)})"
        ) from None


def codec_for_suffix(suffix: str) -> NetLogCodec | None:
    """The codec that owns an archive file suffix, if any."""
    return _SUFFIX_TO_CODEC.get(suffix)


def default_format() -> str:
    """The capture-side default format (``REPRO_NETLOG_FORMAT`` or json)."""
    name = os.environ.get(FORMAT_ENV_VAR, "").strip().lower()
    if not name:
        return FORMAT_JSON
    if name not in CODECS:
        raise ValueError(
            f"{FORMAT_ENV_VAR}={name!r} is not a NetLog format"
            f" (expected one of {sorted(CODECS)})"
        )
    return name


def make_capture_buffer(format: str | None = None, *, checksums: bool = True):
    """Build the streaming capture sink for a format (None → default)."""
    return get_codec(format).make_buffer(checksums=checksums)


# ---------------------------------------------------------------------------
# Sniffing and source coercion
# ---------------------------------------------------------------------------


def sniff_format(head: bytes | bytearray | memoryview | str) -> str:
    """Classify a document by its first byte.

    Binary documents open with the ``nlbin-v1`` magic (first byte 0x89,
    deliberately outside ASCII); everything else — including damaged or
    empty documents — parses under the JSON salvage rules.
    """
    if isinstance(head, str):
        return FORMAT_JSON
    if len(head) == 0:
        return FORMAT_JSON
    from .binary import MAGIC

    prefix = bytes(head[: len(MAGIC)])
    if prefix == MAGIC[: len(prefix)] and len(prefix) > 0:
        return FORMAT_BINARY
    return FORMAT_JSON


def coerce_document(source: DocumentSource) -> tuple[str, bytes | str]:
    """Materialise any document source and classify its format.

    Returns ``(format, document)`` where ``document`` is ``bytes`` for
    binary documents and ``str`` for JSON (decoded with replacement so a
    torn multibyte sequence degrades to salvageable text rather than an
    exception, matching how archives read damaged documents).
    """
    if isinstance(source, str):
        return FORMAT_JSON, source
    if isinstance(source, (bytes, bytearray, memoryview)):
        data = bytes(source)
    else:
        data = source.read()
        if isinstance(data, str):
            return FORMAT_JSON, data
    if sniff_format(data) == FORMAT_BINARY:
        return FORMAT_BINARY, data
    return FORMAT_JSON, data.decode("utf-8", errors="replace")


def coerce_stream(
    source: DocumentSource,
) -> tuple[str, IO[str] | IO[bytes]]:
    """Wrap any document source as a file object plus its format.

    File objects are sniffed by peeking (seekable streams rewind;
    non-seekable ones are wrapped so no bytes are lost).  JSON always
    comes back as a text stream, binary as a byte stream — the shape the
    two streaming parsers expect.
    """
    if isinstance(source, str):
        return FORMAT_JSON, io.StringIO(source)
    if isinstance(source, (bytes, bytearray, memoryview)):
        data = bytes(source)
        if sniff_format(data) == FORMAT_BINARY:
            return FORMAT_BINARY, io.BytesIO(data)
        return FORMAT_JSON, io.StringIO(data.decode("utf-8", errors="replace"))
    # File object: decide text vs bytes from what it yields.
    probe = source.read(0)
    if isinstance(probe, str):
        return FORMAT_JSON, source
    if source.seekable():
        start = source.tell()
        head = source.read(8)
        source.seek(start)
        remainder = source
    else:
        head = source.read(8)
        remainder = _PrefixedReader(head, source)
    if sniff_format(head) == FORMAT_BINARY:
        return FORMAT_BINARY, remainder
    return FORMAT_JSON, io.TextIOWrapper(
        remainder, encoding="utf-8", errors="replace"
    )


class _PrefixedReader(io.RawIOBase):
    """Replays sniffed head bytes ahead of a non-seekable byte stream."""

    def __init__(self, head: bytes, rest: IO[bytes]) -> None:
        self._head = head
        self._rest = rest

    def readable(self) -> bool:  # pragma: no cover - io protocol
        return True

    def read(self, size: int = -1) -> bytes:
        if self._head:
            if size is None or size < 0:
                data = self._head + self._rest.read()
                self._head = b""
                return data
            if size <= len(self._head):
                data = self._head[:size]
                self._head = self._head[size:]
                return data
            data = self._head
            self._head = b""
            return data + self._rest.read(size - len(data))
        return self._rest.read(size)
