"""NetLog JSON writer.

Serialises an event stream into the JSON document format produced by
``chrome --log-net-log``: a top-level object with a ``constants`` header
(carrying the event/source/phase name tables and the time origin) and an
``events`` array of ``{time, type, source: {id, type}, phase, params}``
records.  Writing the name tables makes the files self-describing, which is
what lets :mod:`repro.netlog.parser` also ingest logs written by other
producers (including real Chrome, modulo its much larger vocabulary).

Checksummed capture (``checksums=True``) adds end-to-end integrity
metadata that the parsers verify and ``repro fsck`` audits:

* every record gains a ``crc`` field — CRC32 over the record's canonical
  JSON form (sorted keys, no whitespace, integrity fields excluded);
* every record gains a ``chain`` field — a rolling hash chain,
  ``chain_n = crc32(canonical_n, chain_{n-1})`` seeded from
  :data:`CHAIN_SEED` — so records cannot be dropped, duplicated or
  reordered without breaking the chain;
* the document gains an ``integrity`` trailer carrying the event count
  and the final chain value, which catches clean whole-record tail
  truncation that record-level checks cannot see.

Both additions are backward compatible: the fields ride inside otherwise
ordinary records and an unknown top-level key, so checksummed documents
parse everywhere plain ones do.
"""

from __future__ import annotations

import io
import json
import zlib
from typing import IO, Iterable

from .constants import (
    EVENT_TYPE_NAMES,
    PHASE_NAMES,
    SOURCE_TYPE_NAMES,
)
from .events import NetLogEvent

FORMAT_VERSION = 1

#: Identifier of the checksum scheme, written into the integrity trailer.
CHECKSUM_ALGORITHM = "crc32-chain-v1"

#: Initial value of the rolling hash chain (a fixed, versioned seed so a
#: chain value is never accidentally valid against a different scheme).
CHAIN_SEED = zlib.crc32(b"repro-netlog-chain-v1")

#: Record fields that carry integrity metadata (excluded from hashing).
INTEGRITY_FIELDS = ("crc", "chain")


def canonical_record_bytes(record: dict) -> bytes:
    """The canonical byte form of a record that checksums are computed over.

    Key order and whitespace are normalised so the writer and the verifier
    agree regardless of how the record was produced; the integrity fields
    themselves are excluded (a checksum cannot cover itself).
    """
    stripped = {
        key: value
        for key, value in record.items()
        if key not in INTEGRITY_FIELDS
    }
    return json.dumps(stripped, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def event_to_record(event: NetLogEvent) -> dict:
    """Convert one event to its JSON-serialisable record."""
    record: dict = {
        "time": event.time,
        "type": int(event.type),
        "source": {"id": event.source.id, "type": int(event.source.type)},
        "phase": int(event.phase),
    }
    if event.params:
        record["params"] = event.params
    return record


def build_constants(time_origin_ms: float = 0.0) -> dict:
    """The ``constants`` header block for a log."""
    return {
        "logFormatVersion": FORMAT_VERSION,
        "timeTickOffset": time_origin_ms,
        "logEventTypes": {name: value for value, name in EVENT_TYPE_NAMES.items()},
        "logSourceType": {name: value for value, name in SOURCE_TYPE_NAMES.items()},
        "logEventPhase": {name: value for value, name in PHASE_NAMES.items()},
    }


def write_document_head(
    fp: IO[str],
    *,
    time_origin_ms: float = 0.0,
    extra: dict | None = None,
) -> None:
    """Open a NetLog document: extra keys, ``constants``, ``"events": [``.

    ``extra`` adds top-level keys (e.g. a visit-metadata block) ahead of
    the ``constants`` header; both parsers skip keys they do not model.
    """
    fp.write("{")
    if extra:
        for key, value in extra.items():
            fp.write(json.dumps(key))
            fp.write(": ")
            json.dump(value, fp)
            fp.write(", ")
    fp.write('"constants": ')
    json.dump(build_constants(time_origin_ms), fp)
    fp.write(', "events": [')


def write_document_tail(
    fp: IO[str], *, checksums: bool = False, count: int = 0, chain: int = CHAIN_SEED
) -> None:
    """Close the ``events`` array and, when checksummed, add the trailer."""
    fp.write("]")
    if checksums:
        fp.write(', "integrity": ')
        json.dump(
            {
                "algorithm": CHECKSUM_ALGORITHM,
                "events": count,
                "chain": chain,
            },
            fp,
        )
    fp.write("}")


class RecordWriter:
    """Incrementally serialises the body of one ``events`` array.

    The single place event records are turned into bytes: :func:`dump`
    drives one over a whole iterable, and :class:`NetLogBuffer` (the
    streaming-capture sink) writes records as the browser emits them.
    Tracks the running count and rolling hash chain so the caller can
    close the document with :func:`write_document_tail`.
    """

    __slots__ = ("fp", "checksums", "count", "chain")

    def __init__(self, fp: IO[str], *, checksums: bool = False) -> None:
        self.fp = fp
        self.checksums = checksums
        self.count = 0
        self.chain = CHAIN_SEED

    def write(self, event: NetLogEvent) -> None:
        record = event_to_record(event)
        if self.checksums:
            payload = canonical_record_bytes(record)
            record["crc"] = zlib.crc32(payload)
            self.chain = zlib.crc32(payload, self.chain)
            record["chain"] = self.chain
        if self.count:
            self.fp.write(",\n")
        json.dump(record, self.fp)
        self.count += 1


class NetLogBuffer:
    """`EventSink` that serialises events to record text as they arrive.

    The streaming replacement for buffering raw event objects on a crawl
    record until archive time: each event is rendered to its final JSON
    record immediately and the event object dropped, so a visit holds one
    compact text body instead of a Python object graph.  The buffered
    body is document-agnostic — the archive prepends the (late-bound)
    ``visitMeta`` head and appends the integrity trailer when the visit's
    final metadata is known, producing bytes identical to a one-shot
    :func:`dumps` of the same events.

    ``finish`` returns the buffer itself; read ``body``/``count``/
    ``chain`` or hand it to :meth:`~repro.netlog.archive.NetLogArchive.
    write_buffered`.
    """

    __slots__ = ("_io", "_writer")

    format = "json"

    def __init__(self, *, checksums: bool = True) -> None:
        self._io = io.StringIO()
        self._writer = RecordWriter(self._io, checksums=checksums)

    def accept(self, event: NetLogEvent) -> None:
        self._writer.write(event)

    def finish(self) -> "NetLogBuffer":
        return self

    @property
    def body(self) -> str:
        """The serialised ``events`` array body (no brackets)."""
        return self._io.getvalue()

    @property
    def count(self) -> int:
        return self._writer.count

    @property
    def chain(self) -> int:
        return self._writer.chain

    @property
    def checksums(self) -> bool:
        return self._writer.checksums


def dump(
    events: Iterable[NetLogEvent],
    fp: IO[str],
    *,
    time_origin_ms: float = 0.0,
    checksums: bool = False,
    extra: dict | None = None,
) -> int:
    """Write a complete NetLog document to ``fp``; returns event count.

    Events are streamed rather than materialised, so arbitrarily long logs
    can be written in constant memory — the property that makes NetLog
    usable for the paper's multi-terabyte crawls.

    ``checksums=True`` emits per-record CRC32s, the rolling hash chain
    and the ``integrity`` trailer (see the module docstring).  ``extra``
    adds top-level keys (e.g. a visit-metadata block) ahead of the
    ``constants`` header; both parsers skip keys they do not model.
    """
    write_document_head(fp, time_origin_ms=time_origin_ms, extra=extra)
    writer = RecordWriter(fp, checksums=checksums)
    for event in events:
        writer.write(event)
    write_document_tail(
        fp, checksums=checksums, count=writer.count, chain=writer.chain
    )
    return writer.count


def dumps(
    events: Iterable[NetLogEvent],
    *,
    time_origin_ms: float = 0.0,
    checksums: bool = False,
    extra: dict | None = None,
) -> str:
    """Serialise a NetLog document to a string."""
    buffer = io.StringIO()
    dump(
        events,
        buffer,
        time_origin_ms=time_origin_ms,
        checksums=checksums,
        extra=extra,
    )
    return buffer.getvalue()
