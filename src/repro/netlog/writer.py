"""NetLog JSON writer.

Serialises an event stream into the JSON document format produced by
``chrome --log-net-log``: a top-level object with a ``constants`` header
(carrying the event/source/phase name tables and the time origin) and an
``events`` array of ``{time, type, source: {id, type}, phase, params}``
records.  Writing the name tables makes the files self-describing, which is
what lets :mod:`repro.netlog.parser` also ingest logs written by other
producers (including real Chrome, modulo its much larger vocabulary).
"""

from __future__ import annotations

import io
import json
from typing import IO, Iterable

from .constants import (
    EVENT_TYPE_NAMES,
    PHASE_NAMES,
    SOURCE_TYPE_NAMES,
)
from .events import NetLogEvent

FORMAT_VERSION = 1


def event_to_record(event: NetLogEvent) -> dict:
    """Convert one event to its JSON-serialisable record."""
    record: dict = {
        "time": event.time,
        "type": int(event.type),
        "source": {"id": event.source.id, "type": int(event.source.type)},
        "phase": int(event.phase),
    }
    if event.params:
        record["params"] = event.params
    return record


def build_constants(time_origin_ms: float = 0.0) -> dict:
    """The ``constants`` header block for a log."""
    return {
        "logFormatVersion": FORMAT_VERSION,
        "timeTickOffset": time_origin_ms,
        "logEventTypes": {name: value for value, name in EVENT_TYPE_NAMES.items()},
        "logSourceType": {name: value for value, name in SOURCE_TYPE_NAMES.items()},
        "logEventPhase": {name: value for value, name in PHASE_NAMES.items()},
    }


def dump(
    events: Iterable[NetLogEvent],
    fp: IO[str],
    *,
    time_origin_ms: float = 0.0,
) -> int:
    """Write a complete NetLog document to ``fp``; returns event count.

    Events are streamed rather than materialised, so arbitrarily long logs
    can be written in constant memory — the property that makes NetLog
    usable for the paper's multi-terabyte crawls.
    """
    fp.write('{"constants": ')
    json.dump(build_constants(time_origin_ms), fp)
    fp.write(', "events": [')
    count = 0
    for event in events:
        if count:
            fp.write(",\n")
        json.dump(event_to_record(event), fp)
        count += 1
    fp.write("]}")
    return count


def dumps(events: Iterable[NetLogEvent], *, time_origin_ms: float = 0.0) -> str:
    """Serialise a NetLog document to a string."""
    buffer = io.StringIO()
    dump(events, buffer, time_origin_ms=time_origin_ms)
    return buffer.getvalue()
