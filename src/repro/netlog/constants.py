"""Constants mirroring Chrome's NetLog event vocabulary.

Chrome's network logging system ("NetLog") records every event on the
browser's network stack as a JSON object carrying an integer event ``type``,
a ``source`` (the entity that generated the event, identified by a serially
assigned id plus a source type), a ``phase`` (``BEGIN``/``END``/``NONE``) and
a timestamp.  The paper (section 3.1) keys its analysis off exactly these
four fields, so we reproduce the relevant subset of Chrome v84's vocabulary
here.  The integer values follow Chrome's ``net/log/net_log_event_type_list.h``
ordering loosely; what matters for interoperability is the *name* table that
Chrome embeds in the log's ``constants`` header, which our writer emits and
our parser consults.
"""

from __future__ import annotations

import enum


class EventPhase(enum.IntEnum):
    """Phase of a network event, as defined by Chrome's NetLog."""

    NONE = 0
    BEGIN = 1
    END = 2


class SourceType(enum.IntEnum):
    """The kind of entity that generated an event.

    Chrome assigns every logical network operation a *source* with a serial
    id and one of these types.  The paper filters browser-internal traffic
    (e.g. DNS probes Chrome makes for its own purposes) by source type; we
    keep the distinction for the same reason.
    """

    NONE = 0
    URL_REQUEST = 1
    SOCKET = 2
    HOST_RESOLVER_IMPL_JOB = 3
    HTTP_STREAM_JOB = 4
    WEB_SOCKET = 5
    CONNECT_JOB = 6
    # A simulated RTCPeerConnection: one ICE gathering session per
    # WebRTC-bearing page, owning candidate and STUN-check events.
    PEER_CONNECTION = 7
    # Chrome-internal sources that do not originate from web content.  The
    # detector must ignore these (section 3.1: "the Chrome browser itself
    # also generates network traffic, which we filter out based on the
    # network event source").
    BROWSER_INTERNAL = 100


class EventType(enum.IntEnum):
    """Network event types relevant to request monitoring."""

    REQUEST_ALIVE = 1
    URL_REQUEST_START_JOB = 2
    URL_REQUEST_REDIRECTED = 3
    HTTP_TRANSACTION_SEND_REQUEST = 10
    HTTP_TRANSACTION_READ_HEADERS = 11
    HOST_RESOLVER_IMPL_REQUEST = 20
    TCP_CONNECT = 30
    TCP_CONNECT_ATTEMPT = 31
    SSL_CONNECT = 32
    SOCKET_ERROR = 33
    WEB_SOCKET_SEND_HANDSHAKE_REQUEST = 40
    WEB_SOCKET_READ_HANDSHAKE_RESPONSE = 41
    # Emitted once per page navigation by our simulated browser; real Chrome
    # conveys the same information through URL_REQUEST events on the main
    # frame.  Kept distinct so analyses can anchor "page fetched" timestamps.
    PAGE_LOAD_COMMITTED = 90
    CANCELLED = 91
    # WebRTC / ICE channel (100-range).  Real Chrome logs ICE through
    # webrtc_event_log rather than NetLog; the simulation folds the subset
    # the leak analysis needs into the same checksummed stream so one
    # archive carries the whole visit.
    ICE_GATHERING = 100
    ICE_CANDIDATE_GATHERED = 101
    STUN_BINDING_REQUEST = 102
    STUN_BINDING_RESPONSE = 103
    MDNS_CANDIDATE_REGISTERED = 104


#: Name tables, in the shape Chrome embeds under the log's ``constants`` key.
EVENT_TYPE_NAMES: dict[int, str] = {e.value: e.name for e in EventType}
SOURCE_TYPE_NAMES: dict[int, str] = {s.value: s.name for s in SourceType}
PHASE_NAMES: dict[int, str] = {p.value: p.name for p in EventPhase}

EVENT_TYPES_BY_NAME: dict[str, EventType] = {e.name: e for e in EventType}
SOURCE_TYPES_BY_NAME: dict[str, SourceType] = {s.name: s for s in SourceType}


#: Schemes a URL request may carry, as they appear in NetLog params.
SUPPORTED_SCHEMES = ("http", "https", "ws", "wss")

#: Default ports per scheme, used when a URL omits an explicit port.
DEFAULT_PORTS: dict[str, int] = {"http": 80, "https": 443, "ws": 80, "wss": 443}
